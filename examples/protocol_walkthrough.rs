//! Protocol walkthrough (paper Figures 1 & 2): drive the directory state
//! machine directly and watch a remote read shrink from a 4-message
//! invalidate/writeback transaction to a 2-message Idle fetch once the
//! writer self-invalidates.
//!
//! ```sh
//! cargo run --release --example protocol_walkthrough
//! ```

use ltp::core::{BlockId, NodeId};
use ltp::dsm::{Directory, Message, MsgKind};

fn show(step_name: &str, sends: &[Message]) {
    println!("{step_name}:");
    if sends.is_empty() {
        println!("    (no messages)");
    }
    for m in sends {
        println!("    {} -> {}: {:?}", m.src, m.dst, m.kind);
    }
}

fn main() {
    let home = NodeId::new(0);
    let writer = NodeId::new(3);
    let reader = NodeId::new(1);
    let block = BlockId::new(42);

    // --- Conventional path (Figure 1, left) --------------------------
    println!("== conventional DSM: read to a dirty remote block ==");
    let mut dir = Directory::new(home);
    let s = dir.process(Message::new(writer, home, block, MsgKind::GetX));
    show("P3 writes (GetX)", &s.sends);
    let s = dir.process(Message::new(reader, home, block, MsgKind::GetS));
    show(
        "P1 reads (GetS) — must invalidate the writer first",
        &s.sends,
    );
    let s = dir.process(Message::new(
        writer,
        home,
        block,
        MsgKind::InvAck {
            had_copy: true,
            dirty_token: Some(1),
        },
    ));
    show(
        "P3's writeback arrives — now the reply can go out",
        &s.sends,
    );
    println!("    => 4 network messages on P1's critical path\n");

    // --- Self-invalidating path (Figure 1, right) --------------------
    println!("== with self-invalidation: the writer relinquished early ==");
    let mut dir = Directory::new(home);
    dir.process(Message::new(writer, home, block, MsgKind::GetX));
    let s = dir.process(Message::new(
        writer,
        home,
        block,
        MsgKind::SelfInvDirty { token: 1 },
    ));
    show("P3 self-invalidates at its predicted last touch", &s.sends);
    assert!(dir.is_idle(block));
    let s = dir.process(Message::new(reader, home, block, MsgKind::GetS));
    show("P1 reads (GetS) — block already Idle at home", &s.sends);
    println!("    => 2 messages; the VerifyCorrect confirms P3's speculation\n");

    // --- Premature speculation (§4 verification) ---------------------
    println!("== premature self-invalidation is caught by the verify mask ==");
    let mut dir = Directory::new(home);
    dir.process(Message::new(writer, home, block, MsgKind::GetX));
    dir.process(Message::new(
        writer,
        home,
        block,
        MsgKind::SelfInvDirty { token: 1 },
    ));
    let s = dir.process(Message::new(writer, home, block, MsgKind::GetX));
    show("P3 comes back before anyone else — premature", &s.sends);
    println!("    => the piggybacked verdict resets the predictor's confidence");
}
