//! Migratory work-pool scenario (the raytrace pattern): a lock-protected
//! pool counter hands jobs to processors; job data migrates from processor
//! to processor. Shows why DSI's versioning refuses migratory candidates
//! while trace prediction handles them — and why neither predicts the lock.
//!
//! ```sh
//! cargo run --release --example migratory_workpool
//! ```

use ltp::core::PolicyRegistry;
use ltp::system::SweepSpec;
use ltp::workloads::Benchmark;

fn main() {
    let registry = PolicyRegistry::with_builtins();
    let reports = SweepSpec::new()
        .benchmark(Benchmark::Raytrace)
        .policy_specs(&registry, &["base", "dsi", "last-pc", "ltp"])
        .expect("specs resolve")
        .collect();
    let base = reports[0].metrics.clone();

    println!("migratory work pool (the raytrace kernel), 32 nodes\n");
    println!(
        "{:<8} {:>12} {:>9} {:>10} {:>9} {:>9}",
        "policy", "exec(cyc)", "pred%", "mispred%", "timely%", "speedup"
    );
    for r in &reports {
        let m = &r.metrics;
        println!(
            "{:<8} {:>12} {:>8.1}% {:>9.1}% {:>8.1}% {:>9.3}",
            r.policy,
            m.exec_cycles,
            m.predicted_pct(),
            m.mispredicted_pct(),
            m.timeliness_pct(),
            m.speedup_vs(&base),
        );
    }

    println!();
    println!("the migratory pool counter and job blocks ARE predictable from");
    println!("their traces (read, read, write — then gone), so LTP and Last-PC");
    println!("cover them; DSI's versioning excludes migratory blocks outright.");
    println!("the contended lock spins a different number of times per visit,");
    println!("so its traces never stabilize — and timeliness is poor because");
    println!("the next contender is already spinning when the holder lets go.");
}
