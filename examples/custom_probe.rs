//! Registering a custom simulation probe from *outside* the ltp crates and
//! sweeping with it.
//!
//! This is the probe-side twin of `custom_policy.rs`: the observer below
//! implements [`Probe`], its factory implements [`ProbeFactory`], and
//! nothing in `ltp-system` knows it exists. It is registered under the spec
//! name `sharing`, resolved through a [`ProbeRegistry`] like any built-in,
//! attached to a parallel [`SweepSpec`], and its output arrives as a
//! self-describing section of every [`RunReport`] — no report, JSON, or CLI
//! code was touched to ship a new metric.
//!
//! ```sh
//! cargo run --release --example custom_probe
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use ltp::core::{JsonObject, PolicyRegistry};
use ltp::system::{
    MetricsSection, Probe, ProbeCtx, ProbeFactory, ProbeRegistry, RunInfo, SimEvent, SweepSpec,
};
use ltp::workloads::Benchmark;

/// Measures *sharing pressure*: how many distinct nodes ever touched each
/// block (via misses), and how often invalidation rounds fan out. The flat
/// core metrics only show totals; this probe shows the shape.
#[derive(Debug, Default)]
struct SharingProbe {
    /// block -> bitmask-ish set of nodes that missed on it (small machines).
    touched_by: HashMap<u64, u64>,
    invalidations: u64,
    inv_rounds: u64,
    last_round_block: Option<u64>,
}

impl Probe for SharingProbe {
    fn on_event(&mut self, _ctx: &ProbeCtx, event: &SimEvent) {
        match *event {
            SimEvent::CacheMiss { node, block, .. } => {
                *self.touched_by.entry(block.index()).or_default() |= 1u64 << (node.index() % 64);
            }
            SimEvent::InvalidationSent { block, .. } => {
                self.invalidations += 1;
                // Consecutive sends for one block belong to one round.
                if self.last_round_block != Some(block.index()) {
                    self.inv_rounds += 1;
                    self.last_round_block = Some(block.index());
                }
            }
            _ => self.last_round_block = None,
        }
    }

    fn finish(self: Box<Self>) -> Option<MetricsSection> {
        let mut widths = [0u64; 5]; // 1, 2, 3-4, 5-8, >8 sharers
        for mask in self.touched_by.values() {
            let n = mask.count_ones();
            let slot = match n {
                0 | 1 => 0,
                2 => 1,
                3..=4 => 2,
                5..=8 => 3,
                _ => 4,
            };
            widths[slot] += 1;
        }
        let fanout = if self.inv_rounds == 0 {
            0.0
        } else {
            self.invalidations as f64 / self.inv_rounds as f64
        };
        Some(MetricsSection::new(
            "sharing",
            JsonObject::new()
                .field("blocks", self.touched_by.len() as u64)
                .field("sharers_1", widths[0])
                .field("sharers_2", widths[1])
                .field("sharers_3_4", widths[2])
                .field("sharers_5_8", widths[3])
                .field("sharers_9_plus", widths[4])
                .field("inv_rounds", self.inv_rounds)
                .field("mean_inv_fanout", fanout)
                .build(),
        ))
    }
}

/// The factory the sweep builds one fresh probe from per run.
#[derive(Debug)]
struct SharingFactory;

impl ProbeFactory for SharingFactory {
    fn name(&self) -> &str {
        "sharing"
    }

    fn build(&self, _run: &RunInfo) -> Box<dyn Probe> {
        Box::new(SharingProbe::default())
    }
}

fn main() {
    // Open the registry: builtins plus our external probe.
    let mut probes = ProbeRegistry::with_builtins();
    probes
        .register_factory(Arc::new(SharingFactory))
        .expect("name is free");

    let policies = PolicyRegistry::with_builtins();
    let sweep = SweepSpec::new()
        .benchmarks([Benchmark::Em3d, Benchmark::Moldyn, Benchmark::Unstructured])
        .policy_specs(&policies, &["ltp"])
        .expect("builtin spec")
        .quick_geometry(8, 6)
        .probe_spec(&probes, "sharing")
        .expect("custom probe resolves")
        .probe_spec(&probes, "hist:self-inv-lead")
        .expect("builtin probe resolves");

    println!("sweeping {} runs with 2 probes attached…\n", sweep.len());
    let reports = sweep.collect();
    for report in &reports {
        println!(
            "{:<14} pred {:>5.1}%  | sections: {}",
            report.benchmark,
            report.metrics.predicted_pct(),
            report
                .sections
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        for section in &report.sections {
            println!("    {} = {}", section.name, section.data);
        }
        println!();
    }

    let sharing = &reports[0].sections[0];
    assert_eq!(sharing.name, "sharing", "attach order is preserved");
    assert!(
        reports.iter().all(|r| r.sections.len() == 2),
        "every run of the sweep carries both sections"
    );
    println!("every metric above came out of probes; the flat Metrics struct");
    println!("was never touched — that is the point of the observer API.");
}
