//! Registering a custom self-invalidation policy from *outside* the ltp
//! crates and sweeping it against the paper's predictors.
//!
//! This is the point of the open policy API: the policy below implements
//! [`SelfInvalidationPolicy`], its factory implements [`PolicyFactory`], and
//! nothing in `ltp-core` or `ltp-system` knows it exists. It is registered
//! under the spec name `countdown[:n=<touches>]`, resolved like any built-in,
//! and executed through the parallel [`SweepSpec`] driver.
//!
//! ```sh
//! cargo run --release --example custom_policy
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use ltp::core::{
    BlockId, PolicyFactory, PolicyRegistry, PredictorConfig, SelfInvalidationPolicy, Touch,
};
use ltp::system::SweepSpec;
use ltp::workloads::Benchmark;

/// A deliberately naive heuristic: self-invalidate every block after its
/// `n`-th touch since the last fill, no learning at all. Useful as a
/// baseline for how much of LTP's win is *prediction* rather than mere
/// eagerness.
#[derive(Debug)]
struct CountdownPolicy {
    n: u32,
    touches: HashMap<BlockId, u32>,
}

impl SelfInvalidationPolicy for CountdownPolicy {
    fn name(&self) -> &'static str {
        "countdown"
    }

    fn on_touch(&mut self, touch: Touch) -> bool {
        let count = self.touches.entry(touch.block).or_insert(0);
        if touch.fill.is_some() {
            *count = 0;
        }
        *count += 1;
        if *count >= self.n {
            self.touches.remove(&touch.block);
            true
        } else {
            false
        }
    }

    fn on_invalidation(&mut self, block: BlockId) {
        self.touches.remove(&block);
    }
}

/// The factory `SweepSpec` clones per node; registered under `countdown`.
#[derive(Debug)]
struct CountdownFactory {
    n: u32,
}

impl PolicyFactory for CountdownFactory {
    fn name(&self) -> &str {
        "countdown"
    }

    fn spec(&self) -> String {
        format!("countdown:n={}", self.n)
    }

    fn build(&self, _config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
        Box::new(CountdownPolicy {
            n: self.n,
            touches: HashMap::new(),
        })
    }
}

fn main() {
    // Open the registry: builtins plus our external policy, with a spec
    // parameter of its own.
    let mut registry = PolicyRegistry::with_builtins();
    registry
        .register(
            "countdown",
            "self-invalidate after a fixed touch count [n=3]",
            |params| {
                let n = params.take_u64_in("n", 1, 1 << 16)?.unwrap_or(3) as u32;
                Ok(Arc::new(CountdownFactory { n }))
            },
        )
        .expect("name is free");

    // One parallel sweep: the custom policy at three operating points
    // against the baseline DSM and the real predictor.
    let sweep = SweepSpec::new()
        .benchmarks([Benchmark::Em3d, Benchmark::Tomcatv, Benchmark::Moldyn])
        .policy_specs(
            &registry,
            &[
                "base",
                "countdown:n=1",
                "countdown:n=3",
                "countdown:n=8",
                "ltp",
            ],
        )
        .expect("all specs resolve");
    println!(
        "sweeping {} runs (benchmarks × policies) in parallel…\n",
        sweep.len()
    );
    let reports = sweep.collect();

    println!(
        "{:<14} {:<16} {:>12} {:>8} {:>8} {:>9}",
        "benchmark", "policy", "exec(cyc)", "pred%", "mis%", "speedup"
    );
    for benchmark in [Benchmark::Em3d, Benchmark::Tomcatv, Benchmark::Moldyn] {
        let base = reports
            .iter()
            .find(|r| r.benchmark == benchmark.name() && r.policy == "base")
            .expect("base ran");
        for r in reports.iter().filter(|r| r.benchmark == benchmark.name()) {
            let m = &r.metrics;
            println!(
                "{:<14} {:<16} {:>12} {:>8.1} {:>8.1} {:>9.3}",
                r.benchmark,
                r.policy_spec,
                m.exec_cycles,
                m.predicted_pct(),
                m.mispredicted_pct(),
                m.speedup_vs(&base.metrics),
            );
        }
        println!();
    }
    println!("the blind countdown either fires too early (small n: prematures,");
    println!("slowdowns) or too late (large n: no coverage). trace prediction");
    println!("gets the *timing* right — that is the paper's contribution.");
}
