//! Quickstart: train a Last-Touch Predictor by hand, then run a full
//! machine sweep.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ltp::core::{
    BlockId, FillInfo, FillKind, Pc, PerBlockLtp, PolicyRegistry, PredictorConfig,
    SelfInvalidationPolicy, SignatureBits, Touch, VerifyOutcome,
};
use ltp::system::SweepSpec;
use ltp::workloads::Benchmark;

fn main() {
    // ---------------------------------------------------------------
    // Part 1: the predictor in isolation.
    //
    // A block is fetched by a coherence miss, touched by a short
    // instruction trace, and later invalidated when another processor
    // wants it. Feed the predictor two such episodes and it learns the
    // trace signature; on the third it fires at the last touch.
    // ---------------------------------------------------------------
    let mut ltp = PerBlockLtp::new(
        SignatureBits::PER_BLOCK_DEFAULT,
        16,
        PredictorConfig::default(),
    );
    let block = BlockId::new(7);
    let trace = [Pc::new(0x4_01a0), Pc::new(0x4_01b4), Pc::new(0x4_01c8)];

    for episode in 0..3 {
        let mut fired_at = None;
        for (i, &pc) in trace.iter().enumerate() {
            let touch = Touch {
                block,
                pc,
                is_write: i == 2,
                exclusive: i == 2,
                // The first access of each episode is the miss that
                // fetched the block.
                fill: (i == 0).then_some(FillInfo {
                    kind: FillKind::Demand,
                    dir_version: episode,
                    migratory_upgrade: false,
                }),
            };
            if ltp.on_touch(touch) {
                fired_at = Some(i);
                break;
            }
        }
        match fired_at {
            None => {
                // Trace ran to completion: the external invalidation
                // arrives and the predictor learns from it.
                ltp.on_invalidation(block);
                println!("episode {episode}: learning (no prediction yet)");
            }
            Some(i) => {
                println!(
                    "episode {episode}: predicted the last touch at instruction #{i} — \
                     the block self-invalidates hundreds of cycles before the \
                     invalidation would have arrived"
                );
                // The directory later verifies the speculation.
                ltp.on_verification(block, VerifyOutcome::Correct);
            }
        }
    }

    // ---------------------------------------------------------------
    // Part 2: the same predictor inside the full 32-node machine —
    // three policies, swept in parallel by the experiment driver.
    // ---------------------------------------------------------------
    println!();
    println!("running em3d on the 32-node CC-NUMA (Table 1 configuration)…");
    let registry = PolicyRegistry::with_builtins();
    let reports = SweepSpec::new()
        .benchmark(Benchmark::Em3d)
        .policy_specs(&registry, &["base", "dsi", "ltp"])
        .expect("specs resolve")
        .collect();
    for report in &reports {
        let m = &report.metrics;
        println!(
            "  {:<5}  exec {:>9} cycles | predicted {:>5.1}% | mispredicted {:>4.1}% | \
             dir queueing {:>6.0} cycles",
            report.policy,
            m.exec_cycles,
            m.predicted_pct(),
            m.mispredicted_pct(),
            m.dir_queueing.mean_or_zero(),
        );
    }
    println!();
    println!("note how LTP converts almost every invalidation into a timely");
    println!("self-invalidation without DSI's directory-queueing burst.");
}
