//! Stencil scenario (the tomcatv pattern): multiple grid elements share a
//! cache block, so one load instruction touches a block several times —
//! the case that defeats single-PC prediction and, for the global table,
//! makes outer-column traces subtraces of inner-column traces (§5.3).
//!
//! Sweeps the signature width to show the Figure 7 trade-off on this
//! kernel.
//!
//! ```sh
//! cargo run --release --example stencil_sweep
//! ```

use ltp::system::{ExperimentSpec, PolicyKind};
use ltp::workloads::Benchmark;

fn main() {
    println!("tomcatv stencil, 32 nodes: predictor comparison\n");
    println!(
        "{:<22} {:>10} {:>10}",
        "predictor", "pred%", "mispred%"
    );
    let points = [
        ("last-pc (single PC)", PolicyKind::LastPc),
        ("ltp per-block 30b", PolicyKind::LtpPerBlock { bits: 30 }),
        ("ltp per-block 13b", PolicyKind::LtpPerBlock { bits: 13 }),
        ("ltp per-block 11b", PolicyKind::LtpPerBlock { bits: 11 }),
        ("ltp per-block 6b", PolicyKind::LtpPerBlock { bits: 6 }),
        ("ltp global 30b", PolicyKind::LTP_GLOBAL),
        ("dsi", PolicyKind::Dsi),
    ];
    for (name, policy) in points {
        let m = ExperimentSpec::isca00(Benchmark::Tomcatv, policy).run().metrics;
        println!(
            "{:<22} {:>9.1}% {:>9.1}%",
            name,
            m.predicted_pct(),
            m.mispredicted_pct()
        );
    }

    println!();
    println!("last-pc collapses: the same load PC touches each block 4 or 8");
    println!("times, so \"last touch = this PC\" is ambiguous. trace signatures");
    println!("count the touches. the global table mispredicts inner-column");
    println!("blocks whose traces extend the outer-column traces (§5.3), and");
    println!("dsi skips the migratory residual reduction entirely.");
}
