//! Stencil scenario (the tomcatv pattern): multiple grid elements share a
//! cache block, so one load instruction touches a block several times —
//! the case that defeats single-PC prediction and, for the global table,
//! makes outer-column traces subtraces of inner-column traces (§5.3).
//!
//! Sweeps the signature width through one parallel [`SweepSpec`] to show
//! the Figure 7 trade-off on this kernel.
//!
//! ```sh
//! cargo run --release --example stencil_sweep
//! ```

use ltp::core::PolicyRegistry;
use ltp::system::SweepSpec;
use ltp::workloads::Benchmark;

fn main() {
    let registry = PolicyRegistry::with_builtins();
    let specs = [
        "last-pc",
        "ltp:bits=30",
        "ltp:bits=13",
        "ltp:bits=11",
        "ltp:bits=6",
        "ltp-global",
        "dsi",
    ];
    let reports = SweepSpec::new()
        .benchmark(Benchmark::Tomcatv)
        .policy_specs(&registry, &specs)
        .expect("specs resolve")
        .collect();

    println!("tomcatv stencil, 32 nodes: predictor comparison\n");
    println!("{:<30} {:>10} {:>10}", "predictor", "pred%", "mispred%");
    for r in &reports {
        println!(
            "{:<30} {:>9.1}% {:>9.1}%",
            r.policy_spec,
            r.metrics.predicted_pct(),
            r.metrics.mispredicted_pct()
        );
    }

    println!();
    println!("last-pc collapses: the same load PC touches each block 4 or 8");
    println!("times, so \"last touch = this PC\" is ambiguous. trace signatures");
    println!("count the touches. the global table mispredicts inner-column");
    println!("blocks whose traces extend the outer-column traces (§5.3), and");
    println!("dsi skips the migratory residual reduction entirely.");
}
