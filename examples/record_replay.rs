//! Record & replay walkthrough: capture a benchmark's op streams into a
//! `.ltrace` file, inspect it, replay it under several policies — buffered
//! and streamed from disk — and prove every replay bit-identical to the
//! synthetic run.
//!
//! ```sh
//! cargo run --example record_replay
//! ```

use std::sync::Arc;

use ltp::core::PolicyRegistry;
use ltp::system::{ExperimentSpec, SweepSpec};
use ltp::workloads::{Benchmark, StreamingTrace, Trace, WorkloadParams};

fn main() {
    let params = WorkloadParams::quick(8, 10);

    // 1. Capture. Programs are deterministic and policy-independent, so
    //    recording drains the instruction streams directly — no simulation.
    let trace = Trace::record(Benchmark::Unstructured, &params);
    let path = std::env::temp_dir().join("ltp-example-unstructured.ltrace");
    trace.save(&path).expect("trace saves");
    let on_disk = std::fs::metadata(&path).map_or(0, |m| m.len());
    println!(
        "recorded {}: {} nodes, {} ops -> {} ({} bytes, {:.2} B/op)",
        trace.name(),
        trace.nodes(),
        trace.total_ops(),
        path.display(),
        on_disk,
        on_disk as f64 / trace.total_ops().max(1) as f64
    );

    // 2. Inspect: the header carries the recorded geometry; the histogram
    //    summarizes the op mix (what `ltp trace-info` prints).
    let loaded = Arc::new(Trace::load(&path).expect("trace loads"));
    for (kind, count) in loaded.op_histogram() {
        if count > 0 {
            println!("  {kind:<10} {count}");
        }
    }

    // 3. Replay under one policy and verify fidelity against the
    //    synthetic original.
    let direct = ExperimentSpec::builder(Benchmark::Unstructured)
        .policy_spec("ltp")
        .expect("builtin spec")
        .workload(params)
        .build()
        .run();
    let replayed = ExperimentSpec::replay(Arc::clone(&loaded))
        .policy_spec("ltp")
        .expect("builtin spec")
        .build()
        .run();
    assert_eq!(replayed, direct, "replay must be bit-identical");
    println!(
        "replay == synthetic: {} cycles, {:.1}% predicted",
        replayed.metrics.exec_cycles,
        replayed.metrics.predicted_pct()
    );

    // 4. Stream the same file: decode incrementally with a bounded
    //    per-node window (no full-trace materialization) — the path for
    //    traces too large to hold in memory. Same report, bit for bit.
    let streaming = Arc::new(StreamingTrace::open(&path).expect("trace validates"));
    let streamed = ExperimentSpec::replay_streaming(Arc::clone(&streaming))
        .policy_spec("ltp")
        .expect("builtin spec")
        .build()
        .run();
    assert_eq!(streamed, direct, "streamed replay must be bit-identical");
    println!(
        "streamed == buffered (format v{}, {} repeat blocks, window {} ops)",
        streaming.version(),
        streaming.repeat_blocks(),
        streaming.max_window()
    );

    // 5. Sweep the trace like any benchmark: one recorded scenario under
    //    every policy of the paper's evaluation, in parallel.
    let registry = PolicyRegistry::with_builtins();
    let reports = SweepSpec::new()
        .trace(Arc::clone(&loaded))
        .policy_specs(&registry, &["base", "dsi", "last-pc", "ltp"])
        .expect("builtin specs")
        .collect();
    println!();
    println!(
        "{:<14} {:<28} {:>12} {:>8}",
        "workload", "policy", "exec(cyc)", "pred%"
    );
    for r in &reports {
        println!(
            "{:<14} {:<28} {:>12} {:>8.1}",
            r.benchmark,
            r.policy_spec,
            r.metrics.exec_cycles,
            r.metrics.predicted_pct()
        );
    }

    std::fs::remove_file(&path).ok();
}
