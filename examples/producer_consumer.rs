//! Producer/consumer scenario (the em3d pattern): build a custom workload
//! from raw [`Op`]s, run it under every policy, and show where the speedup
//! comes from.
//!
//! This example sits one layer below `ExperimentSpec`: it composes a
//! [`Machine`] directly from programs and registry-built policies, which is
//! the route for workloads that are not part of the Table 2 suite.
//!
//! ```sh
//! cargo run --release --example producer_consumer
//! ```

use ltp::core::{BlockId, Pc, PolicyRegistry, PredictorConfig, SelfInvalidationPolicy};
use ltp::dsm::SystemConfig;
use ltp::sim::{Cycle, StopReason};
use ltp::system::Machine;
use ltp::workloads::{LoopedScript, Op, Program};

/// Builds a ring of producers: node p writes its slice each iteration and
/// nodes p+1, p+2 read it after a barrier.
fn programs(nodes: u16, blocks_per_node: u64, iters: u32) -> Vec<Box<dyn Program>> {
    let n = u64::from(nodes);
    (0..nodes)
        .map(|p| {
            let pu = u64::from(p);
            let mut body = Vec::new();
            for j in 0..blocks_per_node {
                body.push(Op::Write {
                    pc: Pc::new(0x1_13a4),
                    block: BlockId::new(pu * blocks_per_node + j),
                });
                body.push(Op::Think(20));
            }
            body.push(Op::Barrier(0));
            for d in 1..=2u64 {
                let nb = (pu + d) % n;
                for j in 0..blocks_per_node {
                    body.push(Op::Read {
                        pc: Pc::new(0x1_2bd8),
                        block: BlockId::new(nb * blocks_per_node + j),
                    });
                    body.push(Op::Think(20));
                }
            }
            body.push(Op::Barrier(1));
            Box::new(LoopedScript::new(vec![Op::Think(pu * 7)], body, iters)) as Box<dyn Program>
        })
        .collect()
}

fn main() {
    let nodes = 16u16;
    let cfg = SystemConfig::builder()
        .nodes(nodes)
        .build()
        .expect("valid config");
    let registry = PolicyRegistry::with_builtins();
    println!("producer/consumer ring, {nodes} nodes, 8 blocks each, 20 iterations\n");
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "policy", "exec(cyc)", "misses", "pred%", "mispred%", "speedup"
    );

    let mut base_cycles = None;
    for spec in ["base", "dsi", "last-pc", "ltp"] {
        let factory = registry.parse(spec).expect("builtin spec");
        let policies: Vec<Box<dyn SelfInvalidationPolicy>> = (0..nodes)
            .map(|_| factory.build(PredictorConfig::default()))
            .collect();
        let mut machine = Machine::new(cfg.clone(), policies, programs(nodes, 8, 20));
        machine.attach_core_metrics();
        let summary = machine.run(Cycle::new(1_000_000_000));
        assert_ne!(summary.stop, StopReason::HorizonReached, "deadlock");
        let (m, _) = machine.finish();
        let m = m.expect("core metrics attached");
        let base = *base_cycles.get_or_insert(m.exec_cycles);
        println!(
            "{:<8} {:>12} {:>10} {:>9.1}% {:>9.1}% {:>9.3}",
            factory.name(),
            m.exec_cycles,
            m.misses,
            m.predicted_pct(),
            m.mispredicted_pct(),
            base as f64 / m.exec_cycles as f64,
        );
    }

    println!();
    println!("every producer-write round trip shrinks once the readers'");
    println!("copies self-invalidate, and every consumer read finds the");
    println!("writer's data already written back at its home node.");
}
