//! `ltp` — command-line front end for the Last-Touch Prediction
//! reproduction.
//!
//! ```text
//! ltp list                                  # benchmarks and machine
//! ltp list-policies                         # registered policies + grammar
//! ltp run -b em3d -p ltp:bits=13            # one experiment
//! ltp sweep -b em3d,ocean -p base,dsi,ltp   # parallel cross-product sweep
//! ltp compare -b raytrace                   # every built-in on one benchmark
//! ltp suite -p dsi                          # one policy across the suite
//! ltp record -b em3d -o em3d.ltrace         # capture a trace file
//! ltp run --trace em3d.ltrace -p ltp        # replay it as a workload
//! ltp run --trace big.ltrace --stream -p ltp # replay without materializing
//! ltp gen-trace -o fuzz.ltrace --ops 50000  # random valid workload
//! ltp trace-info em3d.ltrace                # inspect/validate a trace file
//! ltp predict -b all                        # offline predictor tournament
//! ltp predict -t em3d.ltrace --report reports/predictors.md
//! ```
//!
//! See `docs/manual.md` for the full manual.

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use ltp::core::{parse_json, JsonValue, PolicyFactory, PolicyRegistry};
use ltp::dsm::DirectoryKind;
use ltp::system::campaign::{generate_reports, Campaign, FigureId, RunStatus};
use ltp::system::predict::{render_json, render_report, PredictSpec, DEFAULT_ZOO};
use ltp::system::{
    explore, ExploreConfig, JsonLinesSink, NullSink, ProbeRegistry, RunReport, SweepSpec,
};
use ltp::workloads::{
    random_trace, Benchmark, StreamingTrace, Trace, WorkloadParams, WorkloadSource,
};

const USAGE: &str = "\
ltp — Last-Touch Prediction reproduction (Lai & Falsafi, ISCA 2000)

USAGE:
    ltp list
    ltp list-policies
    ltp list-probes
    ltp run        -b <benchmark> -p <policy-spec> [options]
    ltp check      [-b <b1,..|all>] [-p <specs>] [options]
    ltp check      --exhaustive [-d <kind,..>] [--ops <N>]
    ltp sweep      -b <b1,b2,..|all> -p <spec1,spec2,..> [options]
    ltp compare    -b <benchmark> [options]
    ltp suite      -p <policy-spec> [options]
    ltp record     -b <benchmark> -o <FILE.ltrace> [options]
    ltp gen-trace  -o <FILE.ltrace> [options]
    ltp trace-info <FILE.ltrace> [FILE..]
    ltp predict    -b <b1,..|all> and/or -t <FILE> [-p <spec1,..>] [options]
    ltp campaign   [SPEC.json] [-b .. -p .. -n .. -d ..] -o <DIR> [--resume] [--dry-run]
    ltp report     <DIR> [--fig all|1|2|6|7|9|t2|t3|t4] [-o <OUTDIR>]

OPTIONS:
    -b, --benchmarks <names>  comma-separated benchmarks, or `all`
    -p, --policies <specs>    comma-separated policy spec strings
                              (grammar: name[:key=value,..]; see list-policies)
    -t, --trace <FILE[,..]>   trace file(s) to replay as workloads
                              (run/sweep/compare; mixable with -b)
        --stream              replay --trace files incrementally from disk
                              (bounded memory; bit-identical reports)
    -o, --output <FILE>       output trace file (record, gen-trace)
        --format <1|2>        trace format version to write   [default: 2]
        --ops <N>             ops per node to generate        [default: 65536]
    -n, --nodes <N[,N..]>     machine size(s)          [default: 32]
    -i, --iters <N>           iteration override       [default: per-benchmark]
    -s, --seed <S>            workload seed            [default: 0x15CA2000]
    -d, --dir <kind[,..]>     directory sharer organization(s)  [default: full]
                              full | coarse:<K> (1 bit per K-node cluster)
                                   | ptr:<I>    (Dir_I_B limited pointers)
                                   | sparse:<E> (bounded entry cache, E entries)
    -j, --jobs <N>            sweep worker threads     [default: all cores; 1 = serial]
        --shards <N|auto>     worker shards per machine        [default: 1]
                              splits each simulated machine across N threads;
                              reports stay bit-identical to --shards 1
                              (`auto` = all available cores)
        --probe <spec>        attach a probe (repeatable; run/sweep/compare/suite/check)
                              e.g. --probe per-node --probe hist:self-inv-lead
                              (grammar: name[:argument]; see list-probes)
        --check               attach the coherence sanitizer to every run
                              (run/sweep/compare/suite; exit 1 on violations)
        --exhaustive          (check only) exhaustively model-check small
                              configs instead of sanitizing benchmark runs
        --record <FILE>       tee the live run's op stream to FILE.ltrace (run only)
        --report <FILE>       write the tournament markdown table to FILE (predict only)
        --resume              (campaign) continue into a non-empty store
        --dry-run             (campaign) print done/pending counts and exit
        --fig <ids>           (report) comma-separated artifacts    [default: all]
        --json                emit RunReports as JSON to stdout
        --json-lines <FILE>   stream per-run JSON lines to FILE
        --debug               print the sweep schedule (estimated ops + source)
        --quiet               suppress the human-readable table

`check` asserts the protocol invariant catalog (docs/manual.md §Protocol
checking): without --exhaustive it replays benchmark runs under the online
sanitizer probe; with --exhaustive it enumerates every message interleaving
of 2–3-node configurations and prints a minimal counterexample on failure.

`predict` replays workloads through the offline logical coherence model —
no cycle simulation — and races predictor specs (default: the full zoo,
including `tage`, `perceptron`, and the ideal `oracle`) for the paper's
accuracy / coverage / timeliness metrics.

`campaign` runs a cross product through a resumable content-addressed
store: every run is keyed by a canonical fingerprint of its full
configuration, completed runs are checkpointed (fsync'd) as they finish,
and a restarted campaign skips everything already in the store — the
final aggregate is byte-identical to an uninterrupted run. `report`
folds a campaign store into the paper's figures and tables (markdown +
JSON) without re-running anything. See docs/manual.md §Campaigns.

Trace files replay at their recorded geometry (-n/-i/-s do not apply).
Every table and figure of the paper is regenerated by `cargo bench`.
Full manual: docs/manual.md";

/// Parsed command-line options.
#[derive(Debug, Clone, Default)]
struct Options {
    benchmarks: Option<String>,
    policies: Option<String>,
    traces: Vec<String>,
    stream: bool,
    output: Option<String>,
    format: Option<u8>,
    ops: Option<u64>,
    positional: Vec<String>,
    nodes: Vec<u16>,
    dirs: Vec<DirectoryKind>,
    iters: Option<u32>,
    seed: Option<u64>,
    jobs: Option<usize>,
    shards: Option<usize>,
    probes: Vec<String>,
    check: bool,
    exhaustive: bool,
    record: Option<String>,
    report: Option<String>,
    resume: bool,
    dry_run: bool,
    figs: Option<String>,
    json: bool,
    json_lines: Option<String>,
    debug: bool,
    quiet: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match arg.as_str() {
            "-b" | "--benchmark" | "--benchmarks" => {
                opts.benchmarks = Some(value("--benchmarks")?);
            }
            "-p" | "--policy" | "--policies" => opts.policies = Some(value("--policies")?),
            "-t" | "--trace" | "--traces" => {
                for path in value("--trace")?.split(',') {
                    let path = path.trim();
                    if !path.is_empty() {
                        opts.traces.push(path.to_string());
                    }
                }
            }
            "--stream" => opts.stream = true,
            "-o" | "--output" => opts.output = Some(value("--output")?),
            "--format" => {
                let v: u8 = value("--format")?
                    .parse()
                    .map_err(|e| format!("--format: {e}"))?;
                if !(1..=2).contains(&v) {
                    return Err(format!("--format: version {v} is not 1 or 2"));
                }
                opts.format = Some(v);
            }
            "--ops" => {
                opts.ops = Some(value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?);
            }
            "-n" | "--nodes" => {
                for n in value("--nodes")?.split(',') {
                    let n: u16 = n.trim().parse().map_err(|e| format!("--nodes: {e}"))?;
                    if n < 2 {
                        return Err(format!(
                            "--nodes: {n} is out of range (machines have at least 2 nodes)"
                        ));
                    }
                    opts.nodes.push(n);
                }
            }
            "-d" | "--dir" | "--dirs" => {
                for d in value("--dir")?.split(',') {
                    let d = d.trim();
                    if d.is_empty() {
                        continue;
                    }
                    opts.dirs
                        .push(d.parse().map_err(|e| format!("--dir: {e}"))?);
                }
            }
            "-i" | "--iters" => {
                opts.iters = Some(
                    value("--iters")?
                        .parse()
                        .map_err(|e| format!("--iters: {e}"))?,
                );
            }
            "-s" | "--seed" => {
                let raw = value("--seed")?;
                let parsed = raw
                    .strip_prefix("0x")
                    .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16));
                opts.seed = Some(parsed.map_err(|e| format!("--seed: {e}"))?);
            }
            "-j" | "--jobs" => {
                opts.jobs = Some(
                    value("--jobs")?
                        .parse()
                        .map_err(|e| format!("--jobs: {e}"))?,
                );
            }
            "--shards" => {
                let raw = value("--shards")?;
                let shards = if raw == "auto" {
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                } else {
                    let n: usize = raw.parse().map_err(|e| format!("--shards: {e}"))?;
                    if n == 0 {
                        return Err("--shards: need at least 1 shard (or `auto`)".to_string());
                    }
                    n
                };
                opts.shards = Some(shards);
            }
            "--probe" | "--probes" => opts.probes.push(value("--probe")?),
            "--check" => opts.check = true,
            "--exhaustive" => opts.exhaustive = true,
            "--record" => opts.record = Some(value("--record")?),
            "--report" => opts.report = Some(value("--report")?),
            "--resume" => opts.resume = true,
            "--dry-run" => opts.dry_run = true,
            "--fig" | "--figs" => opts.figs = Some(value("--fig")?),
            "--json" => opts.json = true,
            "--json-lines" => opts.json_lines = Some(value("--json-lines")?),
            "--debug" => opts.debug = true,
            "--quiet" => opts.quiet = true,
            other if !other.starts_with('-') => opts.positional.push(other.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Resolves `-b` benchmarks plus `--trace` files into workload sources,
/// benchmarks first (in `-b` order), traces after (in `--trace` order).
fn parse_sources(opts: &Options) -> Result<Vec<WorkloadSource>, String> {
    let mut sources: Vec<WorkloadSource> = Vec::new();
    if opts.benchmarks.is_some() {
        sources.extend(
            parse_benchmarks(opts)?
                .into_iter()
                .map(WorkloadSource::from),
        );
    }
    for path in &opts.traces {
        // --stream swaps the fully-decoded loader for the incremental one;
        // reports are bit-identical, only replay memory changes.
        let source = if opts.stream {
            WorkloadSource::from(Arc::new(
                StreamingTrace::open(path).map_err(|e| format!("--trace {path}: {e}"))?,
            ))
        } else {
            WorkloadSource::from(Trace::load(path).map_err(|e| format!("--trace {path}: {e}"))?)
        };
        sources.push(source);
    }
    if sources.is_empty() {
        return Err("no workloads: give --benchmarks and/or --trace".to_string());
    }
    // Traces replay at their recorded geometry. When benchmarks are mixed
    // in, -n applies to them and the traces pin (as documented); with only
    // traces, an explicit conflicting --nodes can only be a mistake —
    // reject it with a clean one-line error instead of silently ignoring
    // the flag.
    if opts.benchmarks.is_none() && !opts.nodes.is_empty() {
        for source in &sources {
            let recorded = source.effective_params(WorkloadParams::default()).nodes;
            if let Some(&bad) = opts.nodes.iter().find(|&&n| n != recorded) {
                return Err(format!(
                    "trace `{}` was recorded on {recorded} nodes; --nodes {bad} does not \
                     apply (traces replay at their recorded geometry — drop --nodes)",
                    source.name()
                ));
            }
        }
    }
    Ok(sources)
}

fn parse_benchmarks(opts: &Options) -> Result<Vec<Benchmark>, String> {
    let raw = opts.benchmarks.as_deref().ok_or("missing --benchmarks")?;
    if raw == "all" {
        return Ok(Benchmark::ALL.to_vec());
    }
    let benchmarks: Vec<Benchmark> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|name| Benchmark::from_name(name).ok_or_else(|| format!("unknown benchmark `{name}`")))
        .collect::<Result<_, _>>()?;
    if benchmarks.is_empty() {
        return Err("--benchmarks names no benchmark".to_string());
    }
    Ok(benchmarks)
}

fn parse_policies(
    registry: &PolicyRegistry,
    opts: &Options,
) -> Result<Vec<Arc<dyn PolicyFactory>>, String> {
    let raw = opts.policies.as_deref().ok_or("missing --policies")?;
    let policies: Vec<Arc<dyn PolicyFactory>> = split_specs(raw)
        .into_iter()
        .map(|spec| registry.parse(&spec).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    if policies.is_empty() {
        return Err("--policies names no policy".to_string());
    }
    Ok(policies)
}

/// Splits a comma-separated policy list while keeping parameter lists
/// intact: a bare `key=value` fragment belongs to the preceding spec
/// (policy names never contain `=`), so
/// `base,ltp-global:bits=30,sets=1024` is two specs, not three.
fn split_specs(raw: &str) -> Vec<String> {
    let mut specs: Vec<String> = Vec::new();
    for fragment in raw.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        match specs.last_mut() {
            Some(last) if fragment.contains('=') && !fragment.contains(':') => {
                last.push(',');
                last.push_str(fragment);
            }
            _ => specs.push(fragment.to_string()),
        }
    }
    specs
}

fn geometries(opts: &Options) -> Vec<WorkloadParams> {
    let nodes = if opts.nodes.is_empty() {
        vec![32]
    } else {
        opts.nodes.clone()
    };
    nodes
        .into_iter()
        .map(|n| WorkloadParams {
            nodes: n,
            seed: opts.seed.unwrap_or(0x15CA_2000),
            iterations: opts.iters,
        })
        .collect()
}

/// Whether `record` names the same file as the (existing) input `trace`
/// path — the `--record` self-overwrite guard. The record file usually does
/// not exist yet, so its parent directory is canonicalized instead.
fn same_output_as_input(record: &str, trace: &str) -> bool {
    let record_path = std::path::Path::new(record);
    let trace_canon = std::fs::canonicalize(trace).ok();
    let record_canon = std::fs::canonicalize(record_path).ok().or_else(|| {
        let dir = match record_path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d,
            _ => std::path::Path::new("."),
        };
        let name = record_path.file_name()?;
        Some(std::fs::canonicalize(dir).ok()?.join(name))
    });
    match (trace_canon, record_canon) {
        (Some(a), Some(b)) => a == b,
        _ => record == trace,
    }
}

fn print_report(report: &RunReport) {
    let m = &report.metrics;
    println!(
        "{:<14} {:<28} dir {:<10} exec {:>10} cycles ({} events)",
        report.benchmark,
        report.policy_spec,
        report.directory,
        m.exec_cycles,
        report.events_handled
    );
    println!(
        "    invalidations: {:>6} predicted ({:.1}%), {:>6} not predicted ({:.1}%), \
         {:>5} premature ({:.1}%)",
        m.predicted,
        m.predicted_pct(),
        m.not_predicted,
        m.not_predicted_pct(),
        m.mispredicted,
        m.mispredicted_pct()
    );
    println!(
        "    timeliness {:.1}% | misses {} | hits {} | messages {} | self-inv sent {}",
        m.timeliness_pct(),
        m.misses,
        m.hits,
        m.messages,
        m.self_invalidations_sent
    );
    println!(
        "    directory: queueing {:.1} cycles, service {:.1} cycles | storage: \
         {:.1} entries/block, {:.1} B/block",
        m.dir_queueing.mean_or_zero(),
        m.dir_service.mean_or_zero(),
        m.storage.entries_per_block(),
        m.storage.overhead_bytes_per_block()
    );
    if m.extra_invalidations > 0 || m.broadcast_overflows > 0 {
        println!(
            "    over-invalidation ({}): {} extra invalidations, {} broadcast overflows",
            report.directory, m.extra_invalidations, m.broadcast_overflows
        );
    }
    if m.dir_evictions > 0 {
        println!(
            "    entry-cache pressure ({}): {} evictions, {} eviction invalidations",
            report.directory, m.dir_evictions, m.eviction_invalidations
        );
    }
    for section in &report.sections {
        println!("    probe {}: {}", section.name, section.data);
    }
}

fn emit_all(reports: &[RunReport], opts: &Options) {
    for report in reports {
        if opts.json {
            println!("{}", report.to_json());
        } else if !opts.quiet {
            print_report(report);
            println!();
        }
    }
}

fn cmd_list() {
    println!("benchmarks (paper Table 2):");
    for b in Benchmark::ALL {
        println!(
            "  {:<14} {} (scaled: {} iterations)",
            b.name(),
            b.paper_input(),
            b.default_iterations()
        );
    }
    println!();
    let cfg = ltp::dsm::SystemConfig::isca00();
    println!(
        "machine (paper Table 1): {} nodes, {}B blocks, memory {}, network {}, \
         round trip ≈{}",
        cfg.nodes(),
        cfg.block_bytes(),
        cfg.mem_access(),
        cfg.net_latency(),
        cfg.remote_round_trip_estimate()
    );
    println!();
    println!("directory organizations (--dir, sweepable; any machine width):");
    println!("  full        exact full-map bit vector (paper Table 1; default)");
    println!("  coarse:<K>  coarse vector, 1 bit per K-node cluster (invalidations");
    println!("              broadcast to marked clusters; over-invalidation shows up");
    println!("              as `extra_invalidations` in reports)");
    println!("  ptr:<I>     Dir_I_B limited pointers, broadcast once >I sharers");
    println!("              (`broadcast_overflows` counts the fallbacks)");
    println!("  sparse:<E>  bounded directory entry cache with E entries per home;");
    println!("              replacing an entry invalidates the victim's holders");
    println!("              (`dir_evictions` / `eviction_invalidations` in reports)");
    println!();
    println!("policies: see `ltp list-policies`");
}

fn cmd_list_policies(registry: &PolicyRegistry) {
    println!("registered policies (spec grammar: name[:key=value,key=value..]):");
    for (name, summary) in registry.entries() {
        println!("  {name:<12} {summary}");
    }
    println!();
    println!("examples:");
    println!("  ltp run -b em3d -p ltp");
    println!("  ltp run -b tomcatv -p ltp:bits=6");
    println!("  ltp sweep -b all -p base,dsi,ltp:bits=13,ltp-global:sets=1024");
    println!();
    println!("external policies: implement ltp_core::PolicyFactory and register it");
    println!("in a PolicyRegistry (see examples/custom_policy.rs).");
}

fn cmd_list_probes(probes: &ProbeRegistry) {
    println!("registered probes (spec grammar: name[:argument]):");
    for (name, summary) in probes.entries() {
        println!("  {name:<12} {summary}");
    }
    println!();
    println!("examples:");
    println!("  ltp run -b em3d -p ltp --probe per-node --probe hist:self-inv-lead");
    println!("  ltp run -b em3d -p ltp --record em3d-live.ltrace");
    println!("  ltp sweep -b all -p base,ltp --probe per-node --json-lines out.jsonl");
    println!();
    println!("probe output lands in the report's `sections` (JSON) / the");
    println!("`probe <name>: ...` lines (tables). external probes: implement");
    println!("ltp_system::Probe + ProbeFactory and register them in a");
    println!("ProbeRegistry (see examples/custom_probe.rs).");
}

/// Builds and executes the sweep shared by `run`, `sweep`, `compare`, and
/// `suite`; returns the reports in run order.
fn execute(
    sources: Vec<WorkloadSource>,
    policies: Vec<Arc<dyn PolicyFactory>>,
    probes: &ProbeRegistry,
    opts: &Options,
) -> Result<Vec<RunReport>, String> {
    let mut sweep = SweepSpec::new();
    for source in sources {
        sweep = sweep.source(source);
    }
    for policy in policies {
        sweep = sweep.policy(policy);
    }
    for g in geometries(opts) {
        sweep = sweep.geometry(g);
    }
    for &d in &opts.dirs {
        sweep = sweep.directory(d);
    }
    for spec in &opts.probes {
        sweep = sweep.probe_spec(probes, spec).map_err(|e| e.to_string())?;
    }
    if opts.check && !opts.probes.iter().any(|s| s.trim().starts_with("check")) {
        sweep = sweep
            .probe_spec(probes, "check")
            .map_err(|e| e.to_string())?;
    }
    if let Some(record) = &opts.record {
        sweep = sweep
            .probe_spec(probes, &format!("record:{record}"))
            .map_err(|e| e.to_string())?;
    }
    // Trace recording — via `--record` or a raw `--probe record:<file>` —
    // tees exactly one run: concurrent runs would race their saves to the
    // one output file, and overwriting the trace being replayed destroys
    // the input mid-read. `sweep.len()` is the single source of truth for
    // the run count.
    let record_outputs: Vec<&str> = opts
        .record
        .iter()
        .map(String::as_str)
        .chain(opts.probes.iter().filter_map(|spec| {
            let (name, arg) = spec.split_once(':')?;
            (name.trim() == "record").then_some(arg.trim())
        }))
        .collect();
    if !record_outputs.is_empty() {
        if sweep.len() != 1 {
            return Err(format!(
                "trace recording captures exactly one run, but this invocation makes {}; \
                 narrow -b/-p/-n/-d to a single combination",
                sweep.len()
            ));
        }
        for record in &record_outputs {
            if let Some(input) = opts.traces.iter().find(|t| same_output_as_input(record, t)) {
                return Err(format!(
                    "recording to {record} would overwrite the trace being replayed \
                     ({input}); choose a different output path"
                ));
            }
        }
    }
    if let Some(jobs) = opts.jobs {
        sweep = sweep.threads(jobs);
    }
    if let Some(shards) = opts.shards {
        sweep = sweep.shards(shards);
    }
    if opts.debug {
        if opts.jobs == Some(1) {
            eprintln!("# -j 1: serial execution, runs proceed in cross-product order");
        } else {
            let runs = sweep.runs();
            for (pos, (seq, estimate)) in SweepSpec::schedule_for(&runs).into_iter().enumerate() {
                let run = &runs[seq];
                let what = format!(
                    "{} / {} / {} nodes / {}",
                    run.source.name(),
                    run.policy.spec(),
                    run.workload.nodes,
                    run.directory
                );
                match estimate {
                    Some(e) => eprintln!(
                        "# schedule[{pos}] = run {seq}: {what} — ~{} ops (from {})",
                        e.ops, e.source
                    ),
                    None => eprintln!(
                        "# schedule[{pos}] = run {seq}: {what} — length unknown, scheduled first"
                    ),
                }
            }
        }
    }
    let started = Instant::now();
    let count = sweep.len();
    let reports = match &opts.json_lines {
        Some(path) => {
            let file = File::create(path).map_err(|e| format!("--json-lines {path}: {e}"))?;
            let mut sink = JsonLinesSink::new(BufWriter::new(file));
            sweep.execute(&mut sink)
        }
        None => sweep.execute(&mut NullSink),
    };
    if !opts.quiet && !opts.json && count > 1 {
        eprintln!("# {count} runs in {:.2}s", started.elapsed().as_secs_f64());
    }
    if opts.check {
        scan_check_sections(&reports)?;
    }
    Ok(reports)
}

/// Reads the sanitizer's `check` section out of every report and fails
/// with the collected evidence when any run saw a violation.
fn scan_check_sections(reports: &[RunReport]) -> Result<(), String> {
    fn field<'v>(value: &'v JsonValue, key: &str) -> Option<&'v JsonValue> {
        match value {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    let mut total = 0u64;
    let mut evidence: Vec<String> = Vec::new();
    for report in reports {
        for section in &report.sections {
            if section.name != "check" && section.name != "check:strict" {
                continue;
            }
            let Some(&JsonValue::U64(violations)) = field(&section.data, "violations") else {
                continue;
            };
            if violations == 0 {
                continue;
            }
            total += violations;
            let what = format!(
                "{} / {} / {} nodes / {}",
                report.benchmark, report.policy_spec, report.workload.nodes, report.directory
            );
            evidence.push(format!("{what}: {violations} violation(s)"));
            if let Some(JsonValue::Array(first)) = field(&section.data, "first") {
                for line in first {
                    if let JsonValue::Str(s) = line {
                        evidence.push(format!("  {s}"));
                    }
                }
            }
        }
    }
    if total == 0 {
        return Ok(());
    }
    Err(format!(
        "coherence check failed: {total} violation(s)\n{}",
        evidence.join("\n")
    ))
}

fn cmd_run(
    registry: &PolicyRegistry,
    probes: &ProbeRegistry,
    opts: &Options,
) -> Result<(), String> {
    let sources = parse_sources(opts)?;
    let policies = parse_policies(registry, opts)?;
    let reports = execute(sources, policies, probes, opts)?;
    emit_all(&reports, opts);
    Ok(())
}

/// `ltp check`: the protocol-correctness front end. Without `--exhaustive`
/// it replays benchmark runs (default: the whole suite under `ltp`) with
/// the online sanitizer attached; with `--exhaustive` it model-checks
/// small configurations over every message interleaving.
fn cmd_check(
    registry: &PolicyRegistry,
    probes: &ProbeRegistry,
    opts: &Options,
) -> Result<(), String> {
    if opts.exhaustive {
        return cmd_check_exhaustive(opts);
    }
    let mut opts = opts.clone();
    opts.check = true;
    if opts.benchmarks.is_none() && opts.traces.is_empty() {
        opts.benchmarks = Some("all".to_string());
    }
    if opts.policies.is_none() {
        opts.policies = Some("ltp".to_string());
    }
    let sources = parse_sources(&opts)?;
    let policies = parse_policies(registry, &opts)?;
    let reports = execute(sources, policies, probes, &opts)?;
    if opts.json {
        emit_all(&reports, &opts);
    } else if !opts.quiet {
        for report in &reports {
            let events = report
                .sections
                .iter()
                .find(|s| s.name.starts_with("check"))
                .and_then(|s| match &s.data {
                    JsonValue::Object(fields) => fields.iter().find_map(|(k, v)| match v {
                        JsonValue::U64(n) if k == "events" => Some(*n),
                        _ => None,
                    }),
                    _ => None,
                })
                .unwrap_or(0);
            println!(
                "  ok  {} / {} / {} nodes / {} — {events} events, 0 violations",
                report.benchmark, report.policy_spec, report.workload.nodes, report.directory
            );
        }
        println!(
            "coherence check passed: {} run(s), 0 violations",
            reports.len()
        );
    }
    Ok(())
}

/// The `--exhaustive` matrix: both acceptance geometries crossed with the
/// requested (default: all four) sharer organizations.
fn cmd_check_exhaustive(opts: &Options) -> Result<(), String> {
    let kinds: Vec<DirectoryKind> = if opts.dirs.is_empty() {
        vec![
            DirectoryKind::Full,
            DirectoryKind::Coarse { cluster: 1 },
            DirectoryKind::LimitedPtr { pointers: 1 },
            DirectoryKind::Sparse { entries: 1 },
        ]
    } else {
        opts.dirs.clone()
    };
    // (nodes, blocks, ops-per-node): exhaustive yet CI-sized. The op budget
    // bounds the search; --ops overrides it for deeper local runs, and
    // -n restricts the matrix to one geometry. The 3-block geometry
    // co-homes blocks 0 and 2 (home = block mod nodes), which is what
    // drives a 1-entry sparse cache through its eviction states.
    let mut geometries: Vec<(u16, u64, u32)> = vec![(2, 1, 3), (3, 2, 1), (2, 3, 1)];
    if !opts.nodes.is_empty() {
        geometries.retain(|(n, _, _)| opts.nodes.contains(n));
        if geometries.is_empty() {
            return Err("-n: no exhaustive geometry matches (available: 2, 3)".to_string());
        }
    }
    let started = Instant::now();
    for kind in &kinds {
        for &(nodes, blocks, default_ops) in &geometries {
            let ops_per_node = opts
                .ops
                .map_or(default_ops, |n| u32::try_from(n).unwrap_or(u32::MAX));
            let config = ExploreConfig {
                nodes,
                blocks,
                ops_per_node,
                directory: *kind,
                max_states: 50_000_000,
            };
            let out = explore(&config);
            if let Some(cx) = out.violation {
                let mut msg = format!(
                    "invariant `{}` violated ({}) in {nodes}-node/{blocks}-block/{kind} \
                     after {} states\ncounterexample ({} steps):",
                    cx.invariant,
                    cx.detail,
                    out.states,
                    cx.trace.len()
                );
                for (i, step) in cx.trace.iter().enumerate() {
                    msg.push_str(&format!("\n  {i:>3}. {step}"));
                }
                return Err(msg);
            }
            if !opts.quiet {
                println!(
                    "  ok  {nodes} nodes / {blocks} block(s) / {ops_per_node} ops / {kind:<9} — \
                     {} states, {} transitions{}",
                    out.states,
                    out.transitions,
                    if out.truncated { " (TRUNCATED)" } else { "" }
                );
            }
            if out.truncated {
                return Err(format!(
                    "state space truncated at {} states; lower --ops",
                    out.states
                ));
            }
        }
    }
    if !opts.quiet {
        println!(
            "exhaustive check passed: {} config(s), 0 violations, {:.2}s",
            kinds.len() * geometries.len(),
            started.elapsed().as_secs_f64()
        );
    }
    Ok(())
}

fn cmd_sweep(
    registry: &PolicyRegistry,
    probes: &ProbeRegistry,
    opts: &Options,
) -> Result<(), String> {
    let sources = parse_sources(opts)?;
    let policies = parse_policies(registry, opts)?;
    let reports = execute(sources, policies, probes, opts)?;
    if opts.json || opts.quiet {
        emit_all(&reports, opts);
        return Ok(());
    }
    // Compact sweep table.
    println!(
        "{:<14} {:<30} {:>6} {:<10} {:>12} {:>8} {:>8} {:>8} {:>9}",
        "benchmark", "policy", "nodes", "dir", "exec(cyc)", "pred%", "mis%", "timely%", "extra-inv"
    );
    for r in &reports {
        let m = &r.metrics;
        println!(
            "{:<14} {:<30} {:>6} {:<10} {:>12} {:>8.1} {:>8.1} {:>8.1} {:>9}",
            r.benchmark,
            r.policy_spec,
            r.workload.nodes,
            r.directory,
            m.exec_cycles,
            m.predicted_pct(),
            m.mispredicted_pct(),
            m.timeliness_pct(),
            m.extra_invalidations
        );
    }
    Ok(())
}

fn cmd_compare(
    registry: &PolicyRegistry,
    probes: &ProbeRegistry,
    opts: &Options,
) -> Result<(), String> {
    let sources = parse_sources(opts)?;
    let policies: Vec<Arc<dyn PolicyFactory>> = ["base", "dsi", "last-pc", "ltp", "ltp-global"]
        .iter()
        .map(|s| registry.parse(s).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let reports = execute(sources, policies, probes, opts)?;
    let base: Vec<&RunReport> = reports.iter().filter(|r| r.policy == "base").collect();
    for report in &reports {
        if opts.json {
            println!("{}", report.to_json());
            continue;
        }
        print_report(report);
        if let Some(b) = base
            .iter()
            .find(|b| b.benchmark == report.benchmark && b.workload == report.workload)
        {
            println!(
                "    speedup over base: {:.3}",
                report.metrics.speedup_vs(&b.metrics)
            );
        }
        println!();
    }
    Ok(())
}

fn cmd_suite(
    registry: &PolicyRegistry,
    probes: &ProbeRegistry,
    opts: &Options,
) -> Result<(), String> {
    let policies = parse_policies(registry, opts)?;
    let sources = Benchmark::ALL
        .into_iter()
        .map(WorkloadSource::from)
        .collect();
    let reports = execute(sources, policies, probes, opts)?;
    emit_all(&reports, opts);
    Ok(())
}

fn cmd_record(opts: &Options) -> Result<(), String> {
    let benchmarks = parse_benchmarks(opts)?;
    let Some(output) = opts.output.as_deref() else {
        return Err("record needs --output <FILE.ltrace>".to_string());
    };
    let [benchmark] = benchmarks[..] else {
        return Err("record captures exactly one benchmark per file".to_string());
    };
    if opts.nodes.len() > 1 {
        return Err("record takes a single --nodes value".to_string());
    }
    if opts.nodes.first().is_some_and(|&n| n < 2) {
        return Err("record needs --nodes of at least 2".to_string());
    }
    let params = WorkloadParams {
        nodes: opts.nodes.first().copied().unwrap_or(32),
        seed: opts.seed.unwrap_or(0x15CA_2000),
        iterations: opts.iters,
    };
    let trace = Trace::record(benchmark, &params);
    save_trace(&trace, output, opts)?;
    if !opts.quiet {
        report_written("recorded", &trace, output);
    }
    Ok(())
}

fn cmd_gen_trace(opts: &Options) -> Result<(), String> {
    let Some(output) = opts.output.as_deref() else {
        return Err("gen-trace needs --output <FILE.ltrace>".to_string());
    };
    if opts.benchmarks.is_some() {
        return Err("gen-trace generates a random workload; drop --benchmarks".to_string());
    }
    if opts.nodes.len() > 1 {
        return Err("gen-trace takes a single --nodes value".to_string());
    }
    let params = WorkloadParams {
        nodes: opts.nodes.first().copied().unwrap_or(32),
        seed: opts.seed.unwrap_or(0x15CA_2000),
        iterations: None,
    };
    let trace = random_trace(&params, opts.ops.unwrap_or(1 << 16));
    save_trace(&trace, output, opts)?;
    if !opts.quiet {
        report_written("generated", &trace, output);
    }
    Ok(())
}

/// Writes a trace honouring `--format` (default: the current version).
fn save_trace(trace: &Trace, output: &str, opts: &Options) -> Result<(), String> {
    let version = opts.format.unwrap_or(ltp::workloads::trace::TRACE_VERSION);
    trace
        .save_version(output, version)
        .map_err(|e| format!("--output {output}: {e}"))
}

fn report_written(verb: &str, trace: &Trace, output: &str) {
    let bytes = std::fs::metadata(output).map_or(0, |m| m.len());
    println!(
        "{verb} {}: {} nodes, {} ops -> {} ({} bytes, {:.2} B/op)",
        trace.name(),
        trace.nodes(),
        trace.total_ops(),
        output,
        bytes,
        bytes as f64 / trace.total_ops().max(1) as f64
    );
}

fn cmd_predict(registry: &PolicyRegistry, opts: &Options) -> Result<(), String> {
    let sources = parse_sources(opts)?;
    if opts.nodes.len() > 1 {
        return Err("predict takes a single --nodes value".to_string());
    }
    // Explicit -p specs race; without them the whole default zoo runs.
    let policies = if opts.policies.is_some() {
        parse_policies(registry, opts)?
    } else {
        DEFAULT_ZOO
            .iter()
            .map(|s| registry.parse(s).map_err(|e| e.to_string()))
            .collect::<Result<_, _>>()?
    };
    let params = WorkloadParams {
        nodes: opts.nodes.first().copied().unwrap_or(32),
        seed: opts.seed.unwrap_or(0x15CA_2000),
        iterations: opts.iters,
    };
    let mut spec = PredictSpec::new().geometry(params);
    for source in sources {
        spec = spec.source(source);
    }
    for policy in policies {
        spec = spec.policy(policy);
    }
    if let Some(jobs) = opts.jobs {
        spec = spec.threads(jobs);
    }
    let jobs = spec.len();
    let started = Instant::now();
    let rows = spec.execute();
    let elapsed = started.elapsed().as_secs_f64();
    if let Some(path) = &opts.report {
        std::fs::write(path, render_report(&spec, &rows))
            .map_err(|e| format!("--report {path}: {e}"))?;
    }
    if opts.json {
        println!("{}", render_json(&rows));
    } else if !opts.quiet {
        print!("{}", render_report(&spec, &rows));
        let total_ops: u64 = rows.iter().map(|r| r.ops).sum();
        eprintln!(
            "# {jobs} jobs, {total_ops} replayed ops in {elapsed:.2}s ({:.0} ops/s offline)",
            total_ops as f64 / elapsed.max(f64::EPSILON)
        );
        if let Some(path) = &opts.report {
            eprintln!("# report written to {path}");
        }
    }
    Ok(())
}

/// Merges a campaign spec file into `opts`. Flags given on the command
/// line win; the file fills in whatever they left unset. The grammar is
/// the flag surface as JSON:
///
/// ```json
/// {
///   "benchmarks": ["em3d", "tomcatv"],
///   "policies": ["base", "dsi", "ltp:bits=13"],
///   "nodes": [8, 16],
///   "dirs": ["full", "coarse:2"],
///   "seed": 365633536,
///   "iterations": 3,
///   "shards": 1,
///   "jobs": 4,
///   "probes": ["per-node"]
/// }
/// ```
fn apply_campaign_spec(path: &str, opts: &mut Options) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let Some(fields) = doc.as_object() else {
        return Err(format!("{path}: campaign spec must be a JSON object"));
    };
    let strings = |value: &JsonValue, key: &str| -> Result<Vec<String>, String> {
        match value {
            JsonValue::Str(s) => Ok(vec![s.clone()]),
            JsonValue::Array(items) => items
                .iter()
                .map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{path}: `{key}` entries must be strings"))
                })
                .collect(),
            _ => Err(format!(
                "{path}: `{key}` must be a string or array of strings"
            )),
        }
    };
    for (key, value) in fields {
        match key.as_str() {
            "benchmarks" => {
                if opts.benchmarks.is_none() {
                    opts.benchmarks = Some(strings(value, key)?.join(","));
                }
            }
            "policies" => {
                if opts.policies.is_none() {
                    opts.policies = Some(strings(value, key)?.join(","));
                }
            }
            "traces" => {
                if opts.traces.is_empty() {
                    opts.traces = strings(value, key)?;
                }
            }
            "nodes" => {
                if opts.nodes.is_empty() {
                    for v in value.as_array().into_iter().flatten() {
                        let n = v
                            .as_u64()
                            .and_then(|n| u16::try_from(n).ok())
                            .filter(|&n| n >= 2)
                            .ok_or_else(|| format!("{path}: bad `nodes` entry {v}"))?;
                        opts.nodes.push(n);
                    }
                }
            }
            "dirs" => {
                if opts.dirs.is_empty() {
                    for d in strings(value, key)? {
                        opts.dirs
                            .push(d.parse().map_err(|e| format!("{path}: dirs: {e}"))?);
                    }
                }
            }
            "probes" => {
                if opts.probes.is_empty() {
                    opts.probes = strings(value, key)?;
                }
            }
            "seed" => {
                if opts.seed.is_none() {
                    opts.seed =
                        Some(value.as_u64().ok_or_else(|| {
                            format!("{path}: `seed` must be an unsigned integer")
                        })?);
                }
            }
            "iterations" => {
                if opts.iters.is_none() {
                    opts.iters = Some(
                        value
                            .as_u64()
                            .and_then(|n| u32::try_from(n).ok())
                            .ok_or_else(|| format!("{path}: bad `iterations`"))?,
                    );
                }
            }
            "shards" => {
                if opts.shards.is_none() {
                    opts.shards = Some(
                        value
                            .as_u64()
                            .and_then(|n| usize::try_from(n).ok())
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| format!("{path}: bad `shards`"))?,
                    );
                }
            }
            "jobs" => {
                if opts.jobs.is_none() {
                    opts.jobs = Some(
                        value
                            .as_u64()
                            .and_then(|n| usize::try_from(n).ok())
                            .ok_or_else(|| format!("{path}: bad `jobs`"))?,
                    );
                }
            }
            other => return Err(format!("{path}: unknown campaign spec key `{other}`")),
        }
    }
    Ok(())
}

/// `ltp campaign`: the resumable checkpointed sweep driver.
fn cmd_campaign(
    registry: &PolicyRegistry,
    probes: &ProbeRegistry,
    opts: &Options,
) -> Result<(), String> {
    let mut opts = opts.clone();
    match opts.positional.len() {
        0 => {}
        1 => {
            let spec = opts.positional[0].clone();
            apply_campaign_spec(&spec, &mut opts)?;
        }
        _ => return Err("campaign takes at most one SPEC.json".to_string()),
    }
    let Some(dir) = opts.output.clone() else {
        return Err("campaign needs --output <DIR> (the store directory)".to_string());
    };
    let sources = parse_sources(&opts)?;
    let policies = parse_policies(registry, &opts)?;
    let mut sweep = SweepSpec::new();
    for source in sources {
        sweep = sweep.source(source);
    }
    for policy in policies {
        sweep = sweep.policy(policy);
    }
    for g in geometries(&opts) {
        sweep = sweep.geometry(g);
    }
    for &d in &opts.dirs {
        sweep = sweep.directory(d);
    }
    for spec in &opts.probes {
        sweep = sweep.probe_spec(probes, spec).map_err(|e| e.to_string())?;
    }
    if let Some(jobs) = opts.jobs {
        sweep = sweep.threads(jobs);
    }
    if let Some(shards) = opts.shards {
        sweep = sweep.shards(shards);
    }

    let campaign = Campaign::new(sweep, &dir);
    let status = campaign.status().map_err(|e| e.to_string())?;
    if opts.dry_run {
        println!(
            "campaign {dir}: {} run(s) total — {} done, {} stuck, {} pending",
            status.total, status.done, status.stuck, status.pending
        );
        return Ok(());
    }
    let stored = status.done + status.stuck;
    if stored > 0 && !opts.resume {
        return Err(format!(
            "store {dir} already holds {stored} completed run(s); pass --resume to \
             continue it (or --dry-run to inspect)"
        ));
    }
    if !opts.quiet {
        println!(
            "campaign {dir}: {} run(s) — {} already stored, {} to execute",
            status.total, stored, status.pending
        );
    }
    let started = Instant::now();
    let quiet = opts.quiet;
    let summary = campaign
        .run_with(&mut |finished| {
            if !quiet {
                let verdict = match finished.status {
                    RunStatus::Done => "done",
                    RunStatus::Stuck => "STUCK",
                };
                println!(
                    "  [{}/{}] {verdict}  run {} ({})",
                    finished.finished, finished.to_execute, finished.seq, finished.hash
                );
            }
        })
        .map_err(|e| e.to_string())?;
    if !opts.quiet {
        println!(
            "campaign complete: {} run(s) — {} executed, {} skipped (already stored), \
             {} stuck — in {:.2}s",
            summary.total,
            summary.executed,
            summary.skipped,
            summary.stuck,
            started.elapsed().as_secs_f64()
        );
        println!(
            "aggregate: {}",
            std::path::Path::new(&dir).join("campaign.jsonl").display()
        );
    }
    Ok(())
}

/// `ltp report`: folds a campaign store into the paper artifacts.
fn cmd_report(opts: &Options) -> Result<(), String> {
    let [dir] = &opts.positional[..] else {
        return Err("report takes exactly one campaign store DIR".to_string());
    };
    let figures: Vec<FigureId> = match opts.figs.as_deref() {
        None | Some("all") => FigureId::ALL.to_vec(),
        Some(raw) => raw
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|s| {
                FigureId::parse(s)
                    .ok_or_else(|| format!("--fig: unknown artifact `{s}` (see usage)"))
            })
            .collect::<Result<_, _>>()?,
    };
    if figures.is_empty() {
        return Err("--fig names no artifact".to_string());
    }
    let out = opts.output.clone().map_or_else(
        || std::path::Path::new(dir).join("reports"),
        std::path::PathBuf::from,
    );
    let artifacts =
        generate_reports(std::path::Path::new(dir), &out, &figures).map_err(|e| e.to_string())?;
    if !opts.quiet {
        for artifact in &artifacts {
            println!(
                "{}  {}",
                artifact.figure.stem(),
                artifact.markdown.display()
            );
        }
        println!(
            "{} artifact(s) written to {}",
            artifacts.len(),
            out.display()
        );
    }
    Ok(())
}

fn cmd_trace_info(opts: &Options) -> Result<(), String> {
    let mut paths: Vec<&str> = opts.positional.iter().map(String::as_str).collect();
    paths.extend(opts.traces.iter().map(String::as_str));
    if paths.is_empty() {
        return Err("trace-info needs at least one trace file".to_string());
    }
    for path in paths {
        // The streaming opener is the validator: one sequential pass checks
        // magic, version, checksum, and the structure of every stream, and
        // yields the per-stream metadata without materializing any ops.
        let info = StreamingTrace::open(path).map_err(|e| format!("{path}: {e}"))?;
        let w = info.workload();
        println!("{path}:");
        println!(
            "  format v{} | workload {} | {} nodes | seed {:#x} | iterations {}",
            info.version(),
            info.name(),
            w.nodes,
            w.seed,
            w.iterations
                .map_or_else(|| "default".to_string(), |i| i.to_string())
        );
        println!(
            "  {} ops in {} bytes ({:.2} B/op encoded)",
            info.total_ops(),
            info.file_bytes(),
            info.file_bytes() as f64 / info.total_ops().max(1) as f64
        );
        let per_node: Vec<u64> = (0..info.nodes()).map(|n| info.stream_ops(n)).collect();
        println!(
            "  ops/node: min {}, max {}",
            per_node.iter().min().unwrap_or(&0),
            per_node.iter().max().unwrap_or(&0)
        );
        // The full per-stream breakdown from the stream headers — skew
        // between nodes is invisible in min/max alone.
        println!(
            "  per node: {}",
            per_node
                .iter()
                .enumerate()
                .map(|(n, ops)| format!("{n}:{ops}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        println!(
            "  repeat blocks: {} | max decode window: {} ops",
            info.repeat_blocks(),
            info.max_window()
        );
        // The histogram and the v1-size comparison need every op — streamed
        // node by node in O(window) memory, never materialized, so
        // trace-info works on files far larger than RAM.
        let info = Arc::new(info);
        let stats = StreamingTrace::scan_stats(&info).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "  vs format v1: {} bytes ({:.2} B/op, {:.2}x this file)",
            stats.v1_bytes,
            stats.v1_bytes as f64 / info.total_ops().max(1) as f64,
            stats.v1_bytes as f64 / info.file_bytes().max(1) as f64
        );
        let breakdown: Vec<String> = stats
            .histogram
            .iter()
            .filter(|(_, count)| *count > 0)
            .map(|(kind, count)| format!("{kind} {count}"))
            .collect();
        println!("  by kind: {}", breakdown.join(", "));
    }
    Ok(())
}

fn main() -> ExitCode {
    let registry = PolicyRegistry::with_builtins();
    let probes = ProbeRegistry::with_builtins();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        println!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = parse_options(rest).and_then(|opts| {
        // Only trace-info (files), campaign (spec file), and report (store
        // dir) take positional arguments; everywhere else a bare word is a
        // mistake (e.g. a trace path missing its --trace).
        if !matches!(command.as_str(), "trace-info" | "campaign" | "report") {
            if let Some(stray) = opts.positional.first() {
                return Err(format!("unexpected argument `{stray}`"));
            }
        }
        // `--record` tees a single live `run`; everywhere else it can only
        // be a mistake.
        if opts.record.is_some() && command != "run" {
            return Err("--record applies to `run` only (it tees one live run)".to_string());
        }
        // `--report` is the tournament table; nothing else writes one.
        if opts.report.is_some() && command != "predict" {
            return Err(
                "--report applies to `predict` only (it writes the tournament table)".to_string(),
            );
        }
        // Probes observe simulations; commands that run none would drop
        // them silently.
        if !opts.probes.is_empty()
            && !matches!(
                command.as_str(),
                "run" | "sweep" | "compare" | "suite" | "check" | "campaign"
            )
        {
            return Err(format!(
                "--probe applies to run/sweep/compare/suite/check/campaign only \
                 (`{command}` runs no simulation)"
            ));
        }
        // `--resume`/`--dry-run` steer the campaign store; `--fig` selects
        // report artifacts.
        if (opts.resume || opts.dry_run) && command != "campaign" {
            return Err("--resume/--dry-run apply to `campaign` only".to_string());
        }
        if opts.figs.is_some() && command != "report" {
            return Err("--fig applies to `report` only".to_string());
        }
        // `--check` attaches the sanitizer to simulations; `--exhaustive`
        // selects the model checker inside `check`.
        if opts.check
            && !matches!(
                command.as_str(),
                "run" | "sweep" | "compare" | "suite" | "check"
            )
        {
            return Err(format!(
                "--check applies to run/sweep/compare/suite (`{command}` runs no simulation)"
            ));
        }
        if opts.exhaustive && command != "check" {
            return Err("--exhaustive applies to `check` only".to_string());
        }
        match command.as_str() {
            "list" => {
                cmd_list();
                Ok(())
            }
            "list-policies" => {
                cmd_list_policies(&registry);
                Ok(())
            }
            "list-probes" => {
                cmd_list_probes(&probes);
                Ok(())
            }
            "run" => cmd_run(&registry, &probes, &opts),
            "check" => cmd_check(&registry, &probes, &opts),
            "sweep" => cmd_sweep(&registry, &probes, &opts),
            "compare" => cmd_compare(&registry, &probes, &opts),
            "suite" => cmd_suite(&registry, &probes, &opts),
            "record" => cmd_record(&opts),
            "gen-trace" => cmd_gen_trace(&opts),
            "trace-info" => cmd_trace_info(&opts),
            "predict" => cmd_predict(&registry, &opts),
            "campaign" => cmd_campaign(&registry, &probes, &opts),
            "report" => cmd_report(&opts),
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                Ok(())
            }
            other => Err(format!("unknown command `{other}`")),
        }
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
