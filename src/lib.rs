//! # `ltp` — Last-Touch Prediction, reproduced
//!
//! A full reproduction of Lai & Falsafi, *"Selective, Accurate, and Timely
//! Self-Invalidation Using Last-Touch Prediction"* (ISCA 2000): the
//! two-level trace-based Last-Touch Predictor, the Dynamic Self-Invalidation
//! and Last-PC baselines, a 32-node CC-NUMA simulator with a full-map
//! write-invalidate directory protocol, and the nine-benchmark evaluation
//! suite that regenerates every table and figure of the paper.
//!
//! This crate is a facade: it re-exports the five member crates so
//! applications can depend on one name.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `ltp-core` | predictors: LTP (per-block & global), Last-PC, DSI, signatures, confidence |
//! | [`dsm`] | `ltp-dsm` | directory protocol, caches, protocol engines, network |
//! | [`sim`] | `ltp-sim` | deterministic discrete-event kernel, RNG, statistics |
//! | [`system`] | `ltp-system` | full-machine composition and the experiment driver |
//! | [`workloads`] | `ltp-workloads` | the nine synthetic Table 2 benchmarks |
//!
//! # Quick start
//!
//! Run the paper's headline experiment — the base-case LTP on `em3d` — and
//! inspect the Figure 6 classification. Policies are named by registry spec
//! strings (see [`ltp_core::registry`] for the grammar):
//!
//! ```
//! use ltp::system::ExperimentSpec;
//! use ltp::workloads::Benchmark;
//!
//! let report = ExperimentSpec::builder(Benchmark::Em3d)
//!     .policy_spec("ltp:bits=13")
//!     .unwrap()
//!     .nodes(8)
//!     .iterations(10)
//!     .build()
//!     .run();
//! let m = &report.metrics;
//! assert!(m.predicted_pct() > 50.0, "em3d is the predictor's best case");
//! println!(
//!     "em3d: {:.1}% predicted, {:.1}% mispredicted, {} cycles",
//!     m.predicted_pct(),
//!     m.mispredicted_pct(),
//!     m.exec_cycles
//! );
//! ```
//!
//! Whole design-space sweeps go through [`ltp::system::SweepSpec`], which
//! runs the cross product benchmark × policy × geometry in parallel and
//! streams per-run reports through a [`ltp::system::ReportSink`]:
//!
//! ```
//! use ltp::core::PolicyRegistry;
//! use ltp::system::SweepSpec;
//! use ltp::workloads::Benchmark;
//!
//! let registry = PolicyRegistry::with_builtins();
//! let reports = SweepSpec::new()
//!     .benchmark(Benchmark::Em3d)
//!     .policy_specs(&registry, &["base", "ltp"])
//!     .unwrap()
//!     .quick_geometry(4, 4)
//!     .collect();
//! assert_eq!(reports.len(), 2);
//! ```
//!
//! The runnable examples under `examples/` walk through the predictor API
//! (`quickstart`), the protocol (`protocol_walkthrough`), custom policy
//! registration (`custom_policy`), and three workload scenarios;
//! `cargo bench` regenerates every table and figure.
//!
//! [`ltp::system::SweepSpec`]: crate::system::SweepSpec
//! [`ltp::system::ReportSink`]: crate::system::ReportSink

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use ltp_core as core;
pub use ltp_dsm as dsm;
pub use ltp_sim as sim;
pub use ltp_system as system;
pub use ltp_workloads as workloads;
