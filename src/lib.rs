//! # `ltp` — Last-Touch Prediction, reproduced
//!
//! A full reproduction of Lai & Falsafi, *"Selective, Accurate, and Timely
//! Self-Invalidation Using Last-Touch Prediction"* (ISCA 2000): the
//! two-level trace-based Last-Touch Predictor, the Dynamic Self-Invalidation
//! and Last-PC baselines, a 32-node CC-NUMA simulator with a full-map
//! write-invalidate directory protocol, and the nine-benchmark evaluation
//! suite that regenerates every table and figure of the paper.
//!
//! This crate is a facade: it re-exports the five member crates so
//! applications can depend on one name.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `ltp-core` | predictors: LTP (per-block & global), Last-PC, DSI, signatures, confidence |
//! | [`dsm`] | `ltp-dsm` | directory protocol, caches, protocol engines, network |
//! | [`sim`] | `ltp-sim` | deterministic discrete-event kernel, RNG, statistics |
//! | [`system`] | `ltp-system` | full-machine composition and the experiment driver |
//! | [`workloads`] | `ltp-workloads` | the nine synthetic Table 2 benchmarks |
//!
//! # Quick start
//!
//! Run the paper's headline experiment — the base-case LTP on `em3d` — and
//! inspect the Figure 6 classification:
//!
//! ```
//! use ltp::system::{ExperimentSpec, PolicyKind};
//! use ltp::workloads::Benchmark;
//!
//! let report = ExperimentSpec::quick(Benchmark::Em3d, PolicyKind::LTP, 8, 10).run();
//! let m = &report.metrics;
//! assert!(m.predicted_pct() > 50.0, "em3d is the predictor's best case");
//! println!(
//!     "em3d: {:.1}% predicted, {:.1}% mispredicted, {} cycles",
//!     m.predicted_pct(),
//!     m.mispredicted_pct(),
//!     m.exec_cycles
//! );
//! ```
//!
//! The runnable examples under `examples/` walk through the predictor API
//! (`quickstart`), the protocol (`protocol_walkthrough`), and three workload
//! scenarios; `cargo bench` regenerates every table and figure (see
//! EXPERIMENTS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ltp_core as core;
pub use ltp_dsm as dsm;
pub use ltp_sim as sim;
pub use ltp_system as system;
pub use ltp_workloads as workloads;
