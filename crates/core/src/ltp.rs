//! The two-level trace-based Last-Touch Predictor (paper §3.2–§3.3, §4).
//!
//! [`TracePredictor`] is generic over a [`SignatureEncoder`] (first level:
//! the per-block *current signature* register) and a [`LastTouchTable`]
//! (second level: previously-observed last-touch signatures). The paper's
//! three predictor variants are all instances:
//!
//! * [`PerBlockLtp`] — truncated-addition signatures, per-block tables
//!   (the "base case" design, Figure 4 top);
//! * [`GlobalLtp`] — truncated-addition signatures, one global table
//!   (Figure 4 bottom);
//! * [`crate::last_pc::LastPc`] — degenerate encoder that remembers only the
//!   most recent PC, per-block tables (the strawman of §5.1).
//!
//! # Learning and prediction
//!
//! A *trace* starts at a demand coherence miss (current signature :=
//! faulting PC) and is extended by every subsequent touch (signature :=
//! `fold(signature, pc)`). After each touch the predictor probes the
//! last-touch table:
//!
//! * confident match → **fire**: ask the cache controller to self-invalidate
//!   the block; the directory later reports [`VerifyOutcome::Correct`]
//!   (strengthen) or [`VerifyOutcome::Premature`] (reset/weaken).
//! * weak match → remember the match and keep going; matches are resolved
//!   when the trace completes.
//!
//! When an external invalidation ends a trace, the final signature is
//! learned: inserted fresh, strengthened if it matched exactly at the last
//! touch, or *weakened* when it had also matched earlier in the same trace —
//! such a signature can only ever fire early (the subtrace-aliasing hazard
//! of §3.1), so the confidence counter pins it down. Signatures that matched
//! mid-trace but were not the final signature are likewise weakened.

use std::collections::hash_map::Entry;
use std::collections::{HashSet, VecDeque};

use crate::fast_hash::FxHashMap;

use crate::encode::{Signature, SignatureEncoder, TruncatedAdd};
use crate::policy::{FillKind, SelfInvalidationPolicy, Touch, VerifyOutcome};
use crate::table::{GlobalTable, LastTouchTable, PerBlockTable, Probe, StorageStats};
use crate::types::BlockId;

/// Penalty applied to a signature entry whose prediction was verified
/// premature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrematurePenalty {
    /// Decrement the two-bit counter by one.
    Weaken,
    /// Reset the counter to zero (default): one bad self-invalidation costs
    /// hundreds of cycles, so re-arming should require full retraining.
    #[default]
    Reset,
}

/// Tuning knobs shared by every [`TracePredictor`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Confidence of a freshly inserted signature (0..=3). The default of 2
    /// means one confirmation saturates the counter and arms the entry.
    pub initial_confidence: u8,
    /// Penalty for verified-premature predictions.
    pub premature_penalty: PrematurePenalty,
    /// Whether to self-invalidate read-only (Shared) copies as well as dirty
    /// (Exclusive) ones. The paper does both; `false` is the
    /// `ablation_shared_selfinv` variant.
    pub self_invalidate_shared: bool,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            initial_confidence: 2,
            premature_penalty: PrematurePenalty::Reset,
            self_invalidate_shared: true,
        }
    }
}

/// Per-block in-flight trace state (the first predictor level).
#[derive(Debug, Clone)]
struct TraceState {
    /// Running signature of the touches since the last demand miss.
    sig: Signature,
    /// Signatures that matched the table during this trace without firing;
    /// resolved (weakened / disambiguated) when the trace completes.
    matched: Vec<Signature>,
}

/// A two-level trace-based last-touch predictor (see module docs).
#[derive(Debug)]
pub struct TracePredictor<E, T> {
    encoder: E,
    table: T,
    config: PredictorConfig,
    name: &'static str,
    traces: FxHashMap<BlockId, TraceState>,
    /// FIFO of signatures whose self-invalidations await directory verdicts.
    pending: FxHashMap<BlockId, VecDeque<Signature>>,
    fired_total: u64,
}

impl<E: SignatureEncoder, T: LastTouchTable> TracePredictor<E, T> {
    /// Creates a predictor from its two levels and a configuration.
    pub fn with_parts(encoder: E, table: T, config: PredictorConfig, name: &'static str) -> Self {
        TracePredictor {
            encoder,
            table,
            config,
            name,
            traces: FxHashMap::default(),
            pending: FxHashMap::default(),
            fired_total: 0,
        }
    }

    /// The encoder in use (exposed for reporting).
    pub fn encoder(&self) -> &E {
        &self.encoder
    }

    /// Number of self-invalidations this predictor has requested.
    pub fn fired_total(&self) -> u64 {
        self.fired_total
    }

    /// The current signature for `block`, if a trace is in flight. Exposed
    /// for tests and the protocol-walkthrough example.
    pub fn current_signature(&self, block: BlockId) -> Option<Signature> {
        self.traces.get(&block).map(|t| t.sig)
    }
}

impl<E: SignatureEncoder, T: LastTouchTable> SelfInvalidationPolicy for TracePredictor<E, T> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_touch(&mut self, touch: Touch) -> bool {
        let is_demand_fill = matches!(
            touch.fill,
            Some(f) if f.kind == FillKind::Demand
        );
        let state = if is_demand_fill {
            // A new trace begins at the faulting instruction (§3.2: "an LTP
            // initializes a block's current signature upon a coherence miss
            // with the PC of the faulting instruction").
            let fresh = TraceState {
                sig: self.encoder.start(touch.pc),
                matched: Vec::new(),
            };
            match self.traces.entry(touch.block) {
                Entry::Occupied(mut e) => {
                    *e.get_mut() = fresh;
                    e.into_mut()
                }
                Entry::Vacant(v) => v.insert(fresh),
            }
        } else {
            // Hit or upgrade: the trace continues. A missing state here means
            // the block was cached before this policy attached; start fresh.
            self.traces
                .entry(touch.block)
                .and_modify(|t| t.sig = self.encoder.fold(t.sig, touch.pc))
                .or_insert_with(|| TraceState {
                    sig: self.encoder.start(touch.pc),
                    matched: Vec::new(),
                })
        };

        let sig = state.sig;
        match self.table.probe(touch.block, sig) {
            Probe::Miss => false,
            Probe::MatchConfident => {
                if self.config.self_invalidate_shared || touch.exclusive {
                    // Fire: the trace ends here by choice; the directory's
                    // verification verdict arrives via `on_verification`.
                    self.traces.remove(&touch.block);
                    self.table.note_block(touch.block);
                    self.pending.entry(touch.block).or_default().push_back(sig);
                    self.fired_total += 1;
                    true
                } else {
                    state.matched.push(sig);
                    false
                }
            }
            Probe::MatchWeak => {
                state.matched.push(sig);
                false
            }
        }
    }

    fn on_invalidation(&mut self, block: BlockId) {
        // The block is "actively shared" by the paper's definition (fetched
        // and eventually invalidated), so it counts for storage accounting
        // even if no signature is ever stored.
        self.table.note_block(block);
        let Some(state) = self.traces.remove(&block) else {
            return;
        };
        let final_sig = state.sig;
        // The final signature is ambiguous when it also matched earlier in
        // this same trace: firing on it can only ever be premature.
        let final_matches = state.matched.iter().filter(|&&m| m == final_sig).count();
        let ambiguous = final_matches >= 2;
        // Signatures that matched mid-trace were aliases of a longer trace;
        // weaken each once.
        let mut weakened = HashSet::new();
        for m in state.matched {
            if m != final_sig && weakened.insert(m) {
                self.table.weaken(block, m);
            }
        }
        self.table.learn(block, final_sig, ambiguous);
    }

    fn on_verification(&mut self, block: BlockId, outcome: VerifyOutcome) {
        let Some(sig) = self.pending.get_mut(&block).and_then(VecDeque::pop_front) else {
            debug_assert!(false, "verification without a pending prediction");
            return;
        };
        match outcome {
            VerifyOutcome::Correct => self.table.strengthen(block, sig),
            VerifyOutcome::Premature => match self.config.premature_penalty {
                PrematurePenalty::Weaken => self.table.weaken(block, sig),
                PrematurePenalty::Reset => self.table.reset(block, sig),
            },
        }
    }

    fn storage(&self) -> StorageStats {
        self.table.storage()
    }
}

/// The paper's base-case predictor: truncated-addition signatures with a
/// per-block last-touch table (PAp-like).
pub type PerBlockLtp = TracePredictor<TruncatedAdd, PerBlockTable>;

/// The storage-reduced variant: truncated-addition signatures with one
/// global, set-associative last-touch table (PAg-like).
pub type GlobalLtp = TracePredictor<TruncatedAdd, GlobalTable>;

impl PerBlockLtp {
    /// Creates the base-case per-block LTP.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltp_core::{PerBlockLtp, PredictorConfig, SignatureBits, SelfInvalidationPolicy};
    ///
    /// let ltp = PerBlockLtp::new(SignatureBits::PER_BLOCK_DEFAULT, 16, PredictorConfig::default());
    /// assert_eq!(ltp.name(), "ltp");
    /// ```
    pub fn new(
        bits: crate::encode::SignatureBits,
        capacity_per_block: usize,
        config: PredictorConfig,
    ) -> Self {
        TracePredictor::with_parts(
            TruncatedAdd::new(bits),
            PerBlockTable::new(bits, capacity_per_block, config.initial_confidence),
            config,
            "ltp",
        )
    }
}

impl GlobalLtp {
    /// Creates the global-table LTP.
    pub fn new(
        bits: crate::encode::SignatureBits,
        sets: usize,
        ways: usize,
        config: PredictorConfig,
    ) -> Self {
        TracePredictor::with_parts(
            TruncatedAdd::new(bits),
            GlobalTable::new(bits, sets, ways, config.initial_confidence),
            config,
            "ltp-global",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::SignatureBits;
    use crate::policy::FillInfo;
    use crate::types::Pc;

    fn ltp() -> PerBlockLtp {
        PerBlockLtp::new(SignatureBits::BASE, 16, PredictorConfig::default())
    }

    fn fill_touch(block: u64, pc: u32) -> Touch {
        Touch {
            block: BlockId::new(block),
            pc: Pc::new(pc),
            is_write: false,
            exclusive: false,
            fill: Some(FillInfo {
                kind: FillKind::Demand,
                dir_version: 0,
                migratory_upgrade: false,
            }),
        }
    }

    fn hit_touch(block: u64, pc: u32) -> Touch {
        Touch {
            block: BlockId::new(block),
            pc: Pc::new(pc),
            is_write: false,
            exclusive: false,
            fill: None,
        }
    }

    /// Runs one complete trace (miss + hits) followed by an external
    /// invalidation; returns the index (0-based) of the touch at which the
    /// predictor fired, if any.
    fn run_trace(p: &mut PerBlockLtp, block: u64, pcs: &[u32]) -> Option<usize> {
        let mut fired_at = None;
        for (i, &pc) in pcs.iter().enumerate() {
            let touch = if i == 0 {
                fill_touch(block, pc)
            } else {
                hit_touch(block, pc)
            };
            if p.on_touch(touch) {
                fired_at = Some(i);
                break;
            }
        }
        if fired_at.is_none() {
            p.on_invalidation(BlockId::new(block));
        }
        fired_at
    }

    #[test]
    fn learns_simple_trace_and_fires_third_time() {
        // Figure 3(a): miss at PCi, touches at PCj, PCk, then invalidation.
        let mut p = ltp();
        let trace = [0x100, 0x104, 0x108];
        assert_eq!(run_trace(&mut p, 1, &trace), None, "training trace");
        assert_eq!(run_trace(&mut p, 1, &trace), None, "confirming trace");
        // Third time: fires exactly at the last touch (index 2).
        assert_eq!(run_trace(&mut p, 1, &trace), Some(2));
        p.on_verification(BlockId::new(1), VerifyOutcome::Correct);
        assert_eq!(run_trace(&mut p, 1, &trace), Some(2), "stays armed");
        assert_eq!(p.fired_total(), 2);
    }

    #[test]
    fn loop_traces_fire_at_correct_repetition() {
        // Figure 3(c): the same PC touches the block twice (two array
        // elements per cache block). A single PC cannot express "the second
        // occurrence", but the running signature can.
        let mut p = ltp();
        let trace = [0x100, 0x200, 0x200];
        run_trace(&mut p, 2, &trace);
        run_trace(&mut p, 2, &trace);
        // Fires at the *second* PC 0x200, not the first.
        assert_eq!(run_trace(&mut p, 2, &trace), Some(2));
    }

    #[test]
    fn single_touch_trace_fires_on_fill_access() {
        // em3d-style: one touch per sharing phase.
        let mut p = ltp();
        run_trace(&mut p, 3, &[0x500]);
        run_trace(&mut p, 3, &[0x500]);
        assert_eq!(run_trace(&mut p, 3, &[0x500]), Some(0));
    }

    #[test]
    fn premature_fire_resets_confidence() {
        let mut p = ltp();
        let short = [0x100, 0x104];
        let long = [0x100, 0x104, 0x108];
        // Train the short trace until armed.
        run_trace(&mut p, 4, &short);
        run_trace(&mut p, 4, &short);
        // The long trace now fires early at index 1 (subtrace aliasing,
        // Figure 3(d) red/black discussion).
        assert_eq!(run_trace(&mut p, 4, &long), Some(1));
        p.on_verification(BlockId::new(4), VerifyOutcome::Premature);
        // Counter reset: the short trace must retrain from zero. Three
        // further confirmations are needed before it fires again.
        assert_eq!(run_trace(&mut p, 4, &short), None);
        assert_eq!(run_trace(&mut p, 4, &short), None);
        assert_eq!(run_trace(&mut p, 4, &short), None);
        assert_eq!(run_trace(&mut p, 4, &short), Some(1));
    }

    #[test]
    fn ambiguous_final_signature_never_arms() {
        // A trace whose final signature also appears mid-trace (e.g. a PC
        // sequence summing to zero between the two points) must not arm:
        // firing on it is always premature. Craft one with wrap-around: with
        // 6-bit signatures, PCs {4, 64} give sig 4 then (4+64)%64 = 4 again.
        let bits = SignatureBits::new(6).unwrap();
        let mut p = PerBlockLtp::new(bits, 16, PredictorConfig::default());
        let trace = [4, 64];
        for _ in 0..6 {
            assert_eq!(
                run_trace(&mut p, 5, &trace),
                None,
                "sig aliases its own prefix; must stay quiet"
            );
        }
    }

    #[test]
    fn upgrade_does_not_restart_trace() {
        let mut p = ltp();
        let b = BlockId::new(6);
        // Trace: miss-read at 0x10, upgrade-write at 0x20, invalidation.
        let run = |p: &mut PerBlockLtp| {
            p.on_touch(fill_touch(6, 0x10));
            let upgrade = Touch {
                block: b,
                pc: Pc::new(0x20),
                is_write: true,
                exclusive: true,
                fill: Some(FillInfo {
                    kind: FillKind::Upgrade,
                    dir_version: 1,
                    migratory_upgrade: true,
                }),
            };
            p.on_touch(upgrade)
        };
        run(&mut p);
        p.on_invalidation(b);
        run(&mut p);
        p.on_invalidation(b);
        // Third run fires at the upgrade touch — the signature covers the
        // whole {0x10, 0x20} trace, proving the upgrade continued the trace.
        assert!(run(&mut p));
        let enc = TruncatedAdd::new(SignatureBits::BASE);
        assert_eq!(
            p.pending.get(&b).and_then(|q| q.front()).copied(),
            Some(enc.encode_trace(&[Pc::new(0x10), Pc::new(0x20)]))
        );
    }

    #[test]
    fn shared_copy_not_fired_when_configured_exclusive_only() {
        let config = PredictorConfig {
            self_invalidate_shared: false,
            ..PredictorConfig::default()
        };
        let mut p = PerBlockLtp::new(SignatureBits::BASE, 16, config);
        run_trace(&mut p, 7, &[0x100]);
        run_trace(&mut p, 7, &[0x100]);
        // Read-only copy: the confident match is suppressed.
        assert!(!p.on_touch(fill_touch(7, 0x100)));
        p.on_invalidation(BlockId::new(7));
        // Dirty copy: fires.
        let mut t = fill_touch(7, 0x100);
        t.exclusive = true;
        t.is_write = true;
        assert!(p.on_touch(t));
    }

    #[test]
    fn distinct_blocks_have_distinct_tables() {
        let mut p = ltp();
        run_trace(&mut p, 8, &[0x100]);
        run_trace(&mut p, 8, &[0x100]);
        // Block 9 shares the code path but must train independently.
        assert_eq!(run_trace(&mut p, 9, &[0x100]), None);
    }

    #[test]
    fn storage_counts_actively_shared_blocks() {
        let mut p = ltp();
        run_trace(&mut p, 10, &[0x100, 0x104]);
        run_trace(&mut p, 11, &[0x100]);
        let s = p.storage();
        assert_eq!(s.blocks_tracked, 2);
        assert_eq!(s.live_entries, 2);
    }

    #[test]
    fn current_signature_tracks_trace() {
        let mut p = ltp();
        p.on_touch(fill_touch(12, 0x30));
        p.on_touch(hit_touch(12, 0x40));
        let enc = TruncatedAdd::new(SignatureBits::BASE);
        assert_eq!(
            p.current_signature(BlockId::new(12)),
            Some(enc.encode_trace(&[Pc::new(0x30), Pc::new(0x40)]))
        );
        p.on_invalidation(BlockId::new(12));
        assert_eq!(p.current_signature(BlockId::new(12)), None);
    }

    #[test]
    fn global_table_aliases_across_blocks() {
        // Two blocks with the same trace: the second block benefits from the
        // first block's training (and can be misled by it — Figure 8).
        let mut p = GlobalLtp::new(SignatureBits::BASE, 256, 4, PredictorConfig::default());
        let mut run = |block: u64, pcs: &[u32]| -> Option<usize> {
            let mut fired = None;
            for (i, &pc) in pcs.iter().enumerate() {
                let t = if i == 0 {
                    fill_touch(block, pc)
                } else {
                    hit_touch(block, pc)
                };
                if p.on_touch(t) {
                    fired = Some(i);
                    break;
                }
            }
            if fired.is_none() {
                p.on_invalidation(BlockId::new(block));
            }
            fired
        };
        run(20, &[0x700, 0x704]);
        run(20, &[0x700, 0x704]);
        // Block 21 never trained, but the global entry is saturated.
        assert_eq!(run(21, &[0x700, 0x704]), Some(1));
    }

    #[test]
    fn weak_matches_resolved_at_invalidation() {
        // Train a short trace once (counter 2). During a longer trace it
        // matches mid-way; at invalidation it must be weakened (counter 1),
        // so confirming the short trace once more does NOT arm it.
        let mut p = ltp();
        let short = [0x100, 0x104];
        let long = [0x100, 0x104, 0x108];
        run_trace(&mut p, 22, &short); // insert sig(short) at 2
        run_trace(&mut p, 22, &long); // weaken to 1, learn sig(long) at 2
        run_trace(&mut p, 22, &short); // strengthen to 2
        assert_eq!(run_trace(&mut p, 22, &short), None, "still weak");
        assert_eq!(
            run_trace(&mut p, 22, &short),
            Some(1),
            "armed after one more confirmation"
        );
    }
}
