//! The ideal last-touch oracle — the upper bound every real predictor in
//! the zoo is measured against.
//!
//! [`OraclePolicy`] is primed with per-block *ground truth*: for each block,
//! the ordinals (within this node's touch sequence for that block) of the
//! touches that a baseline run proved to be last touches — i.e. the touches
//! after which the block was externally invalidated without this node
//! touching it again. Once primed it fires on exactly those touches, and on
//! no others.
//!
//! Ground truth is schedule-determined, not policy-determined: in the
//! offline logical replay (`ltp-workloads::replay`) the touch stream each
//! node emits does not depend on which predictor runs, so the primed
//! ordinals stay valid when the oracle itself actuates — every fire lands
//! on a true last touch (100% accuracy) and every invalidation opportunity
//! is converted (100% coverage), by construction. `ltp predict` computes
//! the ground truth with a baseline pass when any requested spec reports
//! [`SelfInvalidationPolicy::wants_ground_truth`].
//!
//! Inside the full machine (`ltp run`) nothing primes the oracle, so it
//! degrades to the base system (never fires) — a deliberate signal that the
//! oracle is an offline-evaluation construct, not a buildable predictor.

use crate::fast_hash::FxHashMap;

use crate::policy::{SelfInvalidationPolicy, Touch};
use crate::table::StorageStats;
use crate::types::BlockId;

/// The primed ideal predictor (see the module docs).
#[derive(Debug, Default)]
pub struct OraclePolicy {
    /// Per block: sorted last-touch ordinals and a cursor into them.
    marked: FxHashMap<u64, Marked>,
    /// Per block: touches observed so far (1-based ordinals).
    counts: FxHashMap<u64, u64>,
}

#[derive(Debug, Default)]
struct Marked {
    ordinals: Vec<u64>,
    next: usize,
}

impl OraclePolicy {
    /// An unprimed oracle (never fires until `prime_last_touches`).
    pub fn new() -> Self {
        OraclePolicy::default()
    }
}

impl SelfInvalidationPolicy for OraclePolicy {
    fn name(&self) -> &'static str {
        "oracle"
    }

    fn wants_ground_truth(&self) -> bool {
        true
    }

    fn prime_last_touches(&mut self, last_touches: &[(BlockId, u64)]) {
        for &(block, ordinal) in last_touches {
            self.marked
                .entry(block.index())
                .or_default()
                .ordinals
                .push(ordinal);
        }
        for marked in self.marked.values_mut() {
            marked.ordinals.sort_unstable();
            marked.ordinals.dedup();
            marked.next = 0;
        }
    }

    fn on_touch(&mut self, touch: Touch) -> bool {
        let count = self.counts.entry(touch.block.index()).or_insert(0);
        *count += 1;
        let Some(marked) = self.marked.get_mut(&touch.block.index()) else {
            return false;
        };
        if marked.ordinals.get(marked.next) == Some(&*count) {
            marked.next += 1;
            true
        } else {
            false
        }
    }

    fn storage(&self) -> StorageStats {
        StorageStats {
            blocks_tracked: self.marked.len() as u64,
            live_entries: self.marked.values().map(|m| m.ordinals.len() as u64).sum(),
            signature_bits: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FillInfo, FillKind};
    use crate::types::Pc;

    fn touch(block: u64) -> Touch {
        Touch {
            block: BlockId::new(block),
            pc: Pc::new(0x40),
            is_write: false,
            exclusive: false,
            fill: Some(FillInfo {
                kind: FillKind::Demand,
                dir_version: 0,
                migratory_upgrade: false,
            }),
        }
    }

    #[test]
    fn unprimed_never_fires() {
        let mut o = OraclePolicy::new();
        assert!(o.wants_ground_truth());
        for _ in 0..10 {
            assert!(!o.on_touch(touch(3)));
        }
    }

    #[test]
    fn fires_exactly_on_marked_ordinals() {
        let mut o = OraclePolicy::new();
        // Touches 2 and 5 of block 3 are last touches; block 9 untouched.
        o.prime_last_touches(&[
            (BlockId::new(3), 5),
            (BlockId::new(3), 2),
            (BlockId::new(9), 1),
        ]);
        let fires: Vec<bool> = (0..6).map(|_| o.on_touch(touch(3))).collect();
        assert_eq!(fires, vec![false, true, false, false, true, false]);
        assert_eq!(o.storage().live_entries, 3);
        assert_eq!(o.storage().blocks_tracked, 2);
    }
}
