//! The seam between predictors and the DSM: [`SelfInvalidationPolicy`].
//!
//! Each node of the simulated machine owns one policy object. The node's
//! cache controller reports coherence events (fills, touches, invalidations,
//! synchronization, verification outcomes) and the policy answers with
//! self-invalidation decisions. The base system uses [`NullPolicy`]; the
//! paper's predictors live in [`crate::ltp`], [`crate::last_pc`], and
//! [`crate::dsi`].

use std::fmt;

use crate::table::StorageStats;
use crate::types::{BlockId, Pc};

/// How a block arrived in (or was upgraded within) the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FillKind {
    /// A demand miss brought the block in from the home node. Starts a new
    /// trace for trace-based predictors.
    Demand,
    /// An upgrade (Shared → Exclusive) granted write permission to an
    /// already-cached block. The trace continues: the local copy was never
    /// invalidated.
    Upgrade,
}

/// Directory metadata piggybacked on a fill reply.
///
/// Carries what the DSI versioning protocol needs; trace predictors only look
/// at [`FillKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillInfo {
    /// Demand fill or in-place upgrade.
    pub kind: FillKind,
    /// The block's write-version number at the directory (incremented every
    /// time a new writer is granted exclusive access).
    pub dir_version: u32,
    /// True when this fill is an exclusive request issued while the
    /// requester held the only read-only copy — the migratory pattern whose
    /// candidates DSI deliberately skips (paper §5.1: selecting them causes
    /// frequent premature self-invalidation).
    pub migratory_upgrade: bool,
}

/// One memory access to a cached shared block, as seen by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Touch {
    /// The block touched.
    pub block: BlockId,
    /// The static instruction performing the touch.
    pub pc: Pc,
    /// Store (or atomic read-modify-write) vs load.
    pub is_write: bool,
    /// Whether the local copy holds write permission once this access
    /// completes. Policies configured to self-invalidate only dirty copies
    /// consult this.
    pub exclusive: bool,
    /// Present when this access is the one that missed (the fill reply has
    /// just arrived) or upgraded; `None` for ordinary cache hits.
    pub fill: Option<FillInfo>,
}

/// A synchronization boundary visible to the policy (what DSI hooks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncKind {
    /// A lock acquire completed.
    LockAcquire,
    /// A lock release completed.
    LockRelease,
    /// A global barrier completed.
    Barrier,
}

/// The verified outcome of a speculative self-invalidation (paper §4's
/// directory verification mask).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerifyOutcome {
    /// The sharing phase moved on (read→write or write→read transition at
    /// the directory) without this node re-touching the block: the
    /// self-invalidation was correct.
    Correct,
    /// This node requested the block again before any other processor's
    /// conflicting access: the self-invalidation was premature.
    Premature,
}

/// A per-node speculative self-invalidation policy.
///
/// Implementations must be deterministic functions of the event sequence
/// they observe. All methods have empty defaults except [`Self::name`], so a
/// policy only implements the hooks it uses.
///
/// # Protocol contract
///
/// * `on_touch` is invoked for **every** load/store/RMW a processor performs
///   on a shared block, including the access whose miss just filled the
///   block (`touch.fill = Some(..)`). Returning `true` asks the cache
///   controller to self-invalidate the block (writeback if dirty) right
///   after the access completes.
/// * `on_invalidation` is invoked when an external invalidation removes the
///   block; it is **not** invoked for self-invalidations.
/// * `on_sync` may return blocks to self-invalidate in bulk (DSI's
///   synchronization-triggered flush). Returning blocks not currently cached
///   is allowed; the controller ignores them.
/// * `on_verification` reports the directory's verdict for an earlier
///   self-invalidation of `block`, in FIFO order per block.
pub trait SelfInvalidationPolicy: fmt::Debug + Send {
    /// A short stable name used in reports ("base", "dsi", "last-pc", "ltp").
    fn name(&self) -> &'static str;

    /// Observes one access; returns `true` to self-invalidate the block now.
    fn on_touch(&mut self, touch: Touch) -> bool {
        let _ = touch;
        false
    }

    /// Observes an external invalidation of `block`.
    fn on_invalidation(&mut self, block: BlockId) {
        let _ = block;
    }

    /// Observes a synchronization boundary; returns blocks to self-invalidate.
    fn on_sync(&mut self, kind: SyncKind) -> Vec<BlockId> {
        let _ = kind;
        Vec::new()
    }

    /// Observes the verified outcome of an earlier self-invalidation.
    fn on_verification(&mut self, block: BlockId, outcome: VerifyOutcome) {
        let _ = (block, outcome);
    }

    /// True when the policy needs per-block last-touch ground truth to be
    /// computed and supplied via [`Self::prime_last_touches`] before a run.
    /// Only the offline evaluation path (`ltp predict`) honors this; inside
    /// the full machine an unprimed oracle simply never fires.
    fn wants_ground_truth(&self) -> bool {
        false
    }

    /// Supplies per-block last-touch ground truth: for each block, the
    /// 1-based ordinals (within this node's touch sequence for that block)
    /// of the touches after which the block was invalidated externally in a
    /// baseline run. Ordinals for one block arrive sorted ascending. Default
    /// ignores it; only oracle-style policies implement this.
    fn prime_last_touches(&mut self, last_touches: &[(BlockId, u64)]) {
        let _ = last_touches;
    }

    /// Reports predictor storage for Table 3 (zero for policies without
    /// signature tables).
    fn storage(&self) -> StorageStats {
        StorageStats {
            blocks_tracked: 0,
            live_entries: 0,
            signature_bits: 0,
        }
    }
}

/// The base system: never self-invalidates.
///
/// # Examples
///
/// ```
/// use ltp_core::{BlockId, NullPolicy, Pc, SelfInvalidationPolicy, Touch};
///
/// let mut p = NullPolicy;
/// let t = Touch {
///     block: BlockId::new(0),
///     pc: Pc::new(4),
///     is_write: false,
///     exclusive: false,
///     fill: None,
/// };
/// assert!(!p.on_touch(t));
/// assert_eq!(p.name(), "base");
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullPolicy;

impl SelfInvalidationPolicy for NullPolicy {
    fn name(&self) -> &'static str {
        "base"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_policy_never_fires() {
        let mut p = NullPolicy;
        for i in 0..10 {
            let t = Touch {
                block: BlockId::new(i),
                pc: Pc::new(0x100),
                is_write: i % 2 == 0,
                exclusive: i % 2 == 0,
                fill: Some(FillInfo {
                    kind: FillKind::Demand,
                    dir_version: 0,
                    migratory_upgrade: false,
                }),
            };
            assert!(!p.on_touch(t));
        }
        assert!(p.on_sync(SyncKind::Barrier).is_empty());
        p.on_invalidation(BlockId::new(0));
        p.on_verification(BlockId::new(0), VerifyOutcome::Correct);
        assert_eq!(p.storage().live_entries, 0);
    }
}
