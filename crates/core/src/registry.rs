//! The open policy API: [`PolicyFactory`] and the [`PolicyRegistry`].
//!
//! Historically the experiment driver hard-wired a closed enum of policy
//! kinds; adding a predictor variant meant editing the system crate. The
//! registry inverts that: a policy is *anything* implementing
//! [`PolicyFactory`], and experiments name policies by **spec string**,
//! resolved through a [`PolicyRegistry`] that applications can extend.
//!
//! # Spec-string grammar
//!
//! ```text
//! spec    := name [ ":" params ]
//! name    := one or more of [a-z0-9-]
//! params  := param { "," param }
//! param   := key "=" value
//! key     := one or more of [a-z0-9_-]
//! value   := integer (decimal or 0x-hex) | "true" | "false"
//! ```
//!
//! Whitespace around names, keys, and values is ignored. Every parameter is
//! optional; omitted parameters take the factory's documented default.
//! Unknown policy names, unknown keys, duplicate keys, and malformed values
//! are all reported as typed [`PolicySpecError`]s.
//!
//! # Built-in policies
//!
//! | spec | policy | parameters (default) |
//! |---|---|---|
//! | `base` | no self-invalidation | — |
//! | `dsi` | Dynamic Self-Invalidation | — |
//! | `last-pc` | single-PC strawman | `capacity` (16) |
//! | `ltp` | per-block trace LTP | `bits` (13), `capacity` (16) |
//! | `ltp-global` | global-table trace LTP | `bits` (30), `sets` (256), `ways` (2) |
//! | `ltp-xor` | per-block LTP, XOR-rotate encoder | `bits` (13), `rot` (5), `capacity` (16) |
//! | `oracle` | ideal last-touch oracle (offline upper bound) | — |
//! | `perceptron` | perceptron last-touch predictor | `bits` (8), `hist` (4), `size` (256), `theta` (8) |
//! | `tage` | TAGE-style tagged geometric-history predictor | `tables` (4), `size` (512) |
//!
//! # Examples
//!
//! Resolve a built-in, then register and resolve a custom factory:
//!
//! ```
//! use std::sync::Arc;
//!
//! use ltp_core::{
//!     NullPolicy, PolicyFactory, PolicyRegistry, PredictorConfig, SelfInvalidationPolicy,
//! };
//!
//! let mut registry = PolicyRegistry::with_builtins();
//! let ltp = registry.parse("ltp:bits=11").unwrap();
//! assert_eq!(ltp.name(), "ltp");
//! assert_eq!(ltp.build(PredictorConfig::default()).name(), "ltp");
//!
//! #[derive(Debug)]
//! struct Quiet;
//! impl PolicyFactory for Quiet {
//!     fn name(&self) -> &str {
//!         "quiet"
//!     }
//!     fn build(&self, _config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
//!         Box::new(NullPolicy)
//!     }
//! }
//!
//! registry.register_factory(Arc::new(Quiet)).unwrap();
//! assert!(registry.parse("quiet").is_ok());
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::dsi::DsiPolicy;
use crate::encode::{SignatureBits, XorRotate};
use crate::last_pc::LastPc;
use crate::ltp::{GlobalLtp, PerBlockLtp, PredictorConfig, TracePredictor};
use crate::oracle::OraclePolicy;
use crate::perceptron::{
    PerceptronPredictor, PERCEPTRON_DEFAULT_BITS, PERCEPTRON_DEFAULT_HIST, PERCEPTRON_DEFAULT_SIZE,
    PERCEPTRON_DEFAULT_THETA,
};
use crate::policy::{NullPolicy, SelfInvalidationPolicy};
use crate::table::PerBlockTable;
use crate::tage::{TagePredictor, TAGE_DEFAULT_SIZE, TAGE_DEFAULT_TABLES};

/// Default per-block signature-table capacity (LRU beyond this). Sized above
/// the paper's worst observed demand (dsmc: 7.8 signatures/block).
pub const DEFAULT_PER_BLOCK_CAPACITY: usize = 16;

/// Builds one self-invalidation policy instance per node of a machine.
///
/// A factory is the unit of registration and sweeping: it carries the policy
/// *geometry* (signature width, table organization, …) while the per-run
/// tuning knobs arrive via [`PredictorConfig`] at build time. Factories are
/// shared across the worker threads of a sweep, hence `Send + Sync`.
pub trait PolicyFactory: fmt::Debug + Send + Sync {
    /// The short family name used in report tables and figure legends
    /// (`"base"`, `"dsi"`, `"ltp"`, …).
    fn name(&self) -> &str;

    /// The canonical spec string reconstructing this factory, parameters
    /// included (e.g. `"ltp:bits=13,capacity=16"`). Defaults to
    /// [`Self::name`] for parameterless policies.
    fn spec(&self) -> String {
        self.name().to_string()
    }

    /// Instantiates one policy object for one node.
    fn build(&self, config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy>;
}

/// Error produced while resolving a policy spec string or registering a
/// policy name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicySpecError {
    /// The spec string was empty (or only a parameter list).
    EmptySpec,
    /// No policy of this name is registered.
    UnknownPolicy {
        /// The name that failed to resolve.
        name: String,
        /// Every registered name, for the error message.
        known: Vec<String>,
    },
    /// A parameter was not of the form `key=value`.
    MalformedParam {
        /// The offending fragment.
        param: String,
    },
    /// The same key appeared twice in one spec.
    DuplicateParam {
        /// The duplicated key.
        key: String,
    },
    /// A value failed to parse as the type the factory expects.
    InvalidValue {
        /// The parameter key.
        key: String,
        /// The rejected value.
        value: String,
        /// What the factory wanted (e.g. `"integer in 1..=32"`).
        expected: String,
    },
    /// The policy does not understand this parameter.
    UnknownParam {
        /// The policy being configured.
        policy: String,
        /// The unrecognized key.
        key: String,
    },
    /// `register` was called with a name that is already taken.
    DuplicateName {
        /// The contested name.
        name: String,
    },
}

impl fmt::Display for PolicySpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicySpecError::EmptySpec => write!(f, "empty policy spec"),
            PolicySpecError::UnknownPolicy { name, known } => {
                write!(f, "unknown policy `{name}` (known: {})", known.join(", "))
            }
            PolicySpecError::MalformedParam { param } => {
                write!(f, "malformed parameter `{param}` (expected key=value)")
            }
            PolicySpecError::DuplicateParam { key } => {
                write!(f, "parameter `{key}` given twice")
            }
            PolicySpecError::InvalidValue {
                key,
                value,
                expected,
            } => write!(f, "parameter `{key}={value}`: expected {expected}"),
            PolicySpecError::UnknownParam { policy, key } => {
                write!(f, "policy `{policy}` has no parameter `{key}`")
            }
            PolicySpecError::DuplicateName { name } => {
                write!(f, "a policy named `{name}` is already registered")
            }
        }
    }
}

impl std::error::Error for PolicySpecError {}

/// The parsed `key=value` list of one spec string, handed to a policy
/// constructor.
///
/// Constructors *take* the parameters they understand; whatever is left
/// untaken when the constructor returns is reported as an
/// [`PolicySpecError::UnknownParam`], so typos never pass silently.
#[derive(Debug)]
pub struct SpecParams {
    pairs: BTreeMap<String, String>,
    taken: BTreeSet<String>,
}

impl SpecParams {
    fn parse(params: &str) -> Result<Self, PolicySpecError> {
        let mut pairs = BTreeMap::new();
        for fragment in params.split(',') {
            let fragment = fragment.trim();
            if fragment.is_empty() {
                continue;
            }
            let Some((key, value)) = fragment.split_once('=') else {
                return Err(PolicySpecError::MalformedParam {
                    param: fragment.to_string(),
                });
            };
            let key = key.trim().to_string();
            let value = value.trim().to_string();
            if key.is_empty() || value.is_empty() {
                return Err(PolicySpecError::MalformedParam {
                    param: fragment.to_string(),
                });
            }
            if pairs.insert(key.clone(), value).is_some() {
                return Err(PolicySpecError::DuplicateParam { key });
            }
        }
        Ok(SpecParams {
            pairs,
            taken: BTreeSet::new(),
        })
    }

    /// Takes a raw string parameter.
    pub fn take_str(&mut self, key: &str) -> Option<String> {
        let value = self.pairs.get(key).cloned();
        if value.is_some() {
            self.taken.insert(key.to_string());
        }
        value
    }

    /// Takes an unsigned integer parameter (decimal or `0x`-prefixed hex).
    ///
    /// # Errors
    ///
    /// Returns [`PolicySpecError::InvalidValue`] when present but
    /// unparsable.
    pub fn take_u64(&mut self, key: &str) -> Result<Option<u64>, PolicySpecError> {
        let Some(raw) = self.take_str(key) else {
            return Ok(None);
        };
        let parsed = raw
            .strip_prefix("0x")
            .map_or_else(|| raw.parse(), |hex| u64::from_str_radix(hex, 16));
        match parsed {
            Ok(v) => Ok(Some(v)),
            Err(_) => Err(PolicySpecError::InvalidValue {
                key: key.to_string(),
                value: raw,
                expected: "an unsigned integer".to_string(),
            }),
        }
    }

    /// Takes an integer parameter constrained to `lo..=hi`.
    ///
    /// # Errors
    ///
    /// Returns [`PolicySpecError::InvalidValue`] when present but
    /// unparsable or out of range.
    pub fn take_u64_in(
        &mut self,
        key: &str,
        lo: u64,
        hi: u64,
    ) -> Result<Option<u64>, PolicySpecError> {
        match self.take_u64(key)? {
            Some(v) if (lo..=hi).contains(&v) => Ok(Some(v)),
            Some(v) => Err(PolicySpecError::InvalidValue {
                key: key.to_string(),
                value: v.to_string(),
                expected: format!("an integer in {lo}..={hi}"),
            }),
            None => Ok(None),
        }
    }

    /// Takes a boolean parameter (`true` / `false`).
    ///
    /// # Errors
    ///
    /// Returns [`PolicySpecError::InvalidValue`] when present but neither
    /// `true` nor `false`.
    pub fn take_bool(&mut self, key: &str) -> Result<Option<bool>, PolicySpecError> {
        match self.take_str(key).as_deref() {
            None => Ok(None),
            Some("true") => Ok(Some(true)),
            Some("false") => Ok(Some(false)),
            Some(other) => Err(PolicySpecError::InvalidValue {
                key: key.to_string(),
                value: other.to_string(),
                expected: "`true` or `false`".to_string(),
            }),
        }
    }

    /// The first parameter key the constructor did not take, if any.
    fn first_untaken(&self) -> Option<&str> {
        self.pairs
            .keys()
            .find(|k| !self.taken.contains(*k))
            .map(String::as_str)
    }
}

/// The signature-width parameter shared by every LTP variant.
fn take_bits(
    params: &mut SpecParams,
    default: SignatureBits,
) -> Result<SignatureBits, PolicySpecError> {
    match params.take_u64_in("bits", 1, 32)? {
        Some(v) => Ok(SignatureBits::new(v as u8).expect("range-checked above")),
        None => Ok(default),
    }
}

type Constructor =
    Box<dyn Fn(&mut SpecParams) -> Result<Arc<dyn PolicyFactory>, PolicySpecError> + Send + Sync>;

struct Entry {
    summary: String,
    make: Constructor,
}

/// Maps policy names to factory constructors; the experiment and sweep
/// drivers resolve every policy spec string through one of these.
///
/// [`PolicyRegistry::with_builtins`] pre-registers the six policies of the
/// paper's evaluation plus the predictor zoo (`tage`, `perceptron`,
/// `oracle`); [`PolicyRegistry::register`] and
/// [`PolicyRegistry::register_factory`] open the table to external crates —
/// a new policy is an `impl PolicyFactory`, not a fork of the system crate.
pub struct PolicyRegistry {
    entries: BTreeMap<String, Entry>,
}

impl fmt::Debug for PolicyRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PolicyRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for PolicyRegistry {
    /// Equivalent to [`PolicyRegistry::with_builtins`].
    fn default() -> Self {
        PolicyRegistry::with_builtins()
    }
}

impl PolicyRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        PolicyRegistry {
            entries: BTreeMap::new(),
        }
    }

    /// A registry pre-loaded with the six policies of the paper's
    /// evaluation plus the predictor zoo — `oracle`, `perceptron`, `tage`
    /// (see the module table).
    pub fn with_builtins() -> Self {
        let mut r = PolicyRegistry::empty();
        r.register("base", "no self-invalidation (the baseline DSM)", |_| {
            Ok(Arc::new(BaseFactory))
        })
        .expect("fresh registry");
        r.register("dsi", "Dynamic Self-Invalidation (Lebeck & Wood)", |_| {
            Ok(Arc::new(DsiFactory))
        })
        .expect("fresh registry");
        r.register(
            "last-pc",
            "single-instruction last-touch predictor [capacity=16]",
            |p| {
                let capacity = p.take_u64_in("capacity", 1, 1 << 20)?;
                Ok(Arc::new(LastPcFactory {
                    capacity: capacity.unwrap_or(DEFAULT_PER_BLOCK_CAPACITY as u64) as usize,
                }))
            },
        )
        .expect("fresh registry");
        r.register(
            "ltp",
            "per-block trace LTP, the paper's base case [bits=13,capacity=16]",
            |p| {
                let bits = take_bits(p, SignatureBits::PER_BLOCK_DEFAULT)?;
                let capacity = p.take_u64_in("capacity", 1, 1 << 20)?;
                Ok(Arc::new(PerBlockLtpFactory {
                    bits,
                    capacity: capacity.unwrap_or(DEFAULT_PER_BLOCK_CAPACITY as u64) as usize,
                }))
            },
        )
        .expect("fresh registry");
        r.register(
            "ltp-global",
            "global-table trace LTP (PAg-like) [bits=30,sets=256,ways=2]",
            |p| {
                let bits = take_bits(p, SignatureBits::BASE)?;
                let sets = p.take_u64_in("sets", 1, 1 << 24)?.unwrap_or(256) as usize;
                let ways = p.take_u64_in("ways", 1, 64)?.unwrap_or(2) as usize;
                Ok(Arc::new(GlobalLtpFactory { bits, sets, ways }))
            },
        )
        .expect("fresh registry");
        r.register(
            "ltp-xor",
            "per-block LTP with the XOR-rotate encoder [bits=13,rot=5,capacity=16]",
            |p| {
                let bits = take_bits(p, SignatureBits::PER_BLOCK_DEFAULT)?;
                let rotation = p.take_u64_in("rot", 1, 31)?.unwrap_or(5) as u32;
                let capacity = p.take_u64_in("capacity", 1, 1 << 20)?;
                Ok(Arc::new(XorLtpFactory {
                    bits,
                    rotation,
                    capacity: capacity.unwrap_or(DEFAULT_PER_BLOCK_CAPACITY as u64) as usize,
                }))
            },
        )
        .expect("fresh registry");
        r.register(
            "oracle",
            "ideal last-touch oracle, primed from ground truth (offline upper bound)",
            |_| Ok(Arc::new(OracleFactory)),
        )
        .expect("fresh registry");
        r.register(
            "perceptron",
            "perceptron last-touch predictor [bits=8,hist=4,size=256,theta=8]",
            |p| {
                let bits =
                    p.take_u64_in("bits", 1, 31)?
                        .unwrap_or(u64::from(PERCEPTRON_DEFAULT_BITS)) as u32;
                let hist = p
                    .take_u64_in("hist", 1, 64)?
                    .unwrap_or(PERCEPTRON_DEFAULT_HIST as u64) as usize;
                let size = p
                    .take_u64_in("size", 1, 1 << 20)?
                    .unwrap_or(PERCEPTRON_DEFAULT_SIZE as u64) as usize;
                let theta = p
                    .take_u64_in("theta", 1, 1 << 20)?
                    .unwrap_or(PERCEPTRON_DEFAULT_THETA as u64) as i32;
                Ok(Arc::new(PerceptronFactory {
                    bits,
                    hist,
                    size,
                    theta,
                }))
            },
        )
        .expect("fresh registry");
        r.register(
            "tage",
            "TAGE-style tagged geometric-history last-touch predictor [tables=4,size=512]",
            |p| {
                let tables = p
                    .take_u64_in("tables", 1, 8)?
                    .unwrap_or(TAGE_DEFAULT_TABLES as u64) as usize;
                let size = p
                    .take_u64_in("size", 1, 1 << 20)?
                    .unwrap_or(TAGE_DEFAULT_SIZE as u64) as usize;
                Ok(Arc::new(TageFactory { tables, size }))
            },
        )
        .expect("fresh registry");
        r
    }

    /// Registers a policy constructor under `name`.
    ///
    /// The constructor receives the parsed parameter list and returns a
    /// shareable factory; parameters it does not take are rejected as
    /// unknown.
    ///
    /// # Examples
    ///
    /// A parameterized external policy, registered and resolved by spec
    /// string:
    ///
    /// ```
    /// use std::sync::Arc;
    ///
    /// use ltp_core::{
    ///     NullPolicy, PolicyFactory, PolicyRegistry, PredictorConfig, SelfInvalidationPolicy,
    /// };
    ///
    /// #[derive(Debug)]
    /// struct EveryN(u64);
    /// impl PolicyFactory for EveryN {
    ///     fn name(&self) -> &str {
    ///         "every-n"
    ///     }
    ///     fn spec(&self) -> String {
    ///         format!("every-n:n={}", self.0)
    ///     }
    ///     fn build(&self, _config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
    ///         Box::new(NullPolicy) // a real policy would count touches
    ///     }
    /// }
    ///
    /// let mut registry = PolicyRegistry::with_builtins();
    /// registry
    ///     .register("every-n", "fires every n touches [n=8]", |params| {
    ///         let n = params.take_u64_in("n", 1, 1 << 16)?.unwrap_or(8);
    ///         Ok(Arc::new(EveryN(n)))
    ///     })
    ///     .unwrap();
    /// assert_eq!(registry.parse("every-n:n=4").unwrap().spec(), "every-n:n=4");
    /// assert!(registry.parse("every-n:typo=1").is_err(), "unknown keys are rejected");
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`PolicySpecError::DuplicateName`] if `name` is taken.
    pub fn register(
        &mut self,
        name: &str,
        summary: &str,
        make: impl Fn(&mut SpecParams) -> Result<Arc<dyn PolicyFactory>, PolicySpecError>
            + Send
            + Sync
            + 'static,
    ) -> Result<(), PolicySpecError> {
        if self.entries.contains_key(name) {
            return Err(PolicySpecError::DuplicateName {
                name: name.to_string(),
            });
        }
        self.entries.insert(
            name.to_string(),
            Entry {
                summary: summary.to_string(),
                make: Box::new(make),
            },
        );
        Ok(())
    }

    /// Registers one parameterless factory instance under its own
    /// [`PolicyFactory::name`].
    ///
    /// # Errors
    ///
    /// Returns [`PolicySpecError::DuplicateName`] if the name is taken.
    pub fn register_factory(
        &mut self,
        factory: Arc<dyn PolicyFactory>,
    ) -> Result<(), PolicySpecError> {
        let name = factory.name().to_string();
        let summary = format!("custom factory `{}`", factory.spec());
        self.register(&name, &summary, move |_| Ok(Arc::clone(&factory)))
    }

    /// Resolves a spec string (see the module-level grammar) to a factory.
    ///
    /// # Errors
    ///
    /// Returns a [`PolicySpecError`] describing exactly what was wrong with
    /// the spec.
    pub fn parse(&self, spec: &str) -> Result<Arc<dyn PolicyFactory>, PolicySpecError> {
        let (name, params) = match spec.split_once(':') {
            Some((name, params)) => (name.trim(), params),
            None => (spec.trim(), ""),
        };
        if name.is_empty() {
            return Err(PolicySpecError::EmptySpec);
        }
        let Some(entry) = self.entries.get(name) else {
            return Err(PolicySpecError::UnknownPolicy {
                name: name.to_string(),
                known: self.names().map(str::to_string).collect(),
            });
        };
        let mut params = SpecParams::parse(params)?;
        let factory = (entry.make)(&mut params)?;
        if let Some(key) = params.first_untaken() {
            return Err(PolicySpecError::UnknownParam {
                policy: name.to_string(),
                key: key.to_string(),
            });
        }
        Ok(factory)
    }

    /// All registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// All registered `(name, summary)` pairs, sorted by name.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries
            .iter()
            .map(|(name, e)| (name.as_str(), e.summary.as_str()))
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }
}

// ---- built-in factories ---------------------------------------------------

/// Factory for the base system (no self-invalidation).
#[derive(Debug, Clone, Copy, Default)]
pub struct BaseFactory;

impl PolicyFactory for BaseFactory {
    fn name(&self) -> &str {
        "base"
    }

    fn build(&self, _config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
        Box::new(NullPolicy)
    }
}

/// Factory for Dynamic Self-Invalidation.
#[derive(Debug, Clone, Copy, Default)]
pub struct DsiFactory;

impl PolicyFactory for DsiFactory {
    fn name(&self) -> &str {
        "dsi"
    }

    fn build(&self, _config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
        Box::new(DsiPolicy::new())
    }
}

/// Factory for the single-PC strawman predictor.
#[derive(Debug, Clone, Copy)]
pub struct LastPcFactory {
    /// Per-block signature-table capacity.
    pub capacity: usize,
}

impl Default for LastPcFactory {
    fn default() -> Self {
        LastPcFactory {
            capacity: DEFAULT_PER_BLOCK_CAPACITY,
        }
    }
}

impl PolicyFactory for LastPcFactory {
    fn name(&self) -> &str {
        "last-pc"
    }

    fn spec(&self) -> String {
        format!("last-pc:capacity={}", self.capacity)
    }

    fn build(&self, config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
        Box::new(LastPc::with_config(self.capacity, config))
    }
}

/// Factory for the paper's base-case per-block trace LTP.
#[derive(Debug, Clone, Copy)]
pub struct PerBlockLtpFactory {
    /// Signature width (the paper sweeps 30/13/11/6).
    pub bits: SignatureBits,
    /// Per-block signature-table capacity.
    pub capacity: usize,
}

impl Default for PerBlockLtpFactory {
    fn default() -> Self {
        PerBlockLtpFactory {
            bits: SignatureBits::PER_BLOCK_DEFAULT,
            capacity: DEFAULT_PER_BLOCK_CAPACITY,
        }
    }
}

impl PolicyFactory for PerBlockLtpFactory {
    fn name(&self) -> &str {
        "ltp"
    }

    fn spec(&self) -> String {
        format!("ltp:bits={},capacity={}", self.bits.get(), self.capacity)
    }

    fn build(&self, config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
        Box::new(PerBlockLtp::new(self.bits, self.capacity, config))
    }
}

/// Factory for the storage-reduced global-table LTP.
#[derive(Debug, Clone, Copy)]
pub struct GlobalLtpFactory {
    /// Signature width (30 needed for usable accuracy).
    pub bits: SignatureBits,
    /// Number of sets in the shared table.
    pub sets: usize,
    /// Associativity of the shared table.
    pub ways: usize,
}

impl Default for GlobalLtpFactory {
    /// The paper's global configuration: 30-bit signatures in a small
    /// shared table — the whole point of the PAg organization is storage
    /// reduction, so the default is sized well below the aggregate
    /// per-block capacity and competes for entries.
    fn default() -> Self {
        GlobalLtpFactory {
            bits: SignatureBits::BASE,
            sets: 256,
            ways: 2,
        }
    }
}

impl PolicyFactory for GlobalLtpFactory {
    fn name(&self) -> &str {
        "ltp-global"
    }

    fn spec(&self) -> String {
        format!(
            "ltp-global:bits={},sets={},ways={}",
            self.bits.get(),
            self.sets,
            self.ways
        )
    }

    fn build(&self, config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
        Box::new(GlobalLtp::new(self.bits, self.sets, self.ways, config))
    }
}

/// Factory for the per-block LTP with the order-sensitive XOR-rotate
/// encoder (the `ablation_encoding` variant).
#[derive(Debug, Clone, Copy)]
pub struct XorLtpFactory {
    /// Signature width.
    pub bits: SignatureBits,
    /// Left-rotation applied before each fold.
    pub rotation: u32,
    /// Per-block signature-table capacity.
    pub capacity: usize,
}

impl Default for XorLtpFactory {
    fn default() -> Self {
        XorLtpFactory {
            bits: SignatureBits::PER_BLOCK_DEFAULT,
            rotation: 5,
            capacity: DEFAULT_PER_BLOCK_CAPACITY,
        }
    }
}

impl PolicyFactory for XorLtpFactory {
    fn name(&self) -> &str {
        "ltp-xor"
    }

    fn spec(&self) -> String {
        format!(
            "ltp-xor:bits={},rot={},capacity={}",
            self.bits.get(),
            self.rotation,
            self.capacity
        )
    }

    fn build(&self, config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
        Box::new(TracePredictor::with_parts(
            XorRotate::new(self.bits, self.rotation),
            PerBlockTable::new(self.bits, self.capacity, config.initial_confidence),
            config,
            "ltp-xor",
        ))
    }
}

/// Factory for the ideal last-touch oracle (unprimed until the offline
/// evaluation path supplies ground truth; never fires inside a live
/// machine).
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleFactory;

impl PolicyFactory for OracleFactory {
    fn name(&self) -> &str {
        "oracle"
    }

    fn build(&self, _config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
        Box::new(OraclePolicy::new())
    }
}

/// Factory for the perceptron last-touch predictor.
#[derive(Debug, Clone, Copy)]
pub struct PerceptronFactory {
    /// Weight width in bits (weights clamp at ±(2^(bits−1) − 1)).
    pub bits: u32,
    /// Touch-history depth (feature positions).
    pub hist: usize,
    /// Rows per weight table.
    pub size: usize,
    /// Firing threshold.
    pub theta: i32,
}

impl Default for PerceptronFactory {
    fn default() -> Self {
        PerceptronFactory {
            bits: PERCEPTRON_DEFAULT_BITS,
            hist: PERCEPTRON_DEFAULT_HIST,
            size: PERCEPTRON_DEFAULT_SIZE,
            theta: PERCEPTRON_DEFAULT_THETA,
        }
    }
}

impl PolicyFactory for PerceptronFactory {
    fn name(&self) -> &str {
        "perceptron"
    }

    fn spec(&self) -> String {
        format!(
            "perceptron:bits={},hist={},size={},theta={}",
            self.bits, self.hist, self.size, self.theta
        )
    }

    fn build(&self, config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
        Box::new(PerceptronPredictor::new(
            self.bits, self.hist, self.size, self.theta, config,
        ))
    }
}

/// Factory for the TAGE-style tagged geometric-history predictor.
#[derive(Debug, Clone, Copy)]
pub struct TageFactory {
    /// Number of tagged tables (history lengths 2, 4, 8, …).
    pub tables: usize,
    /// Entries per table.
    pub size: usize,
}

impl Default for TageFactory {
    fn default() -> Self {
        TageFactory {
            tables: TAGE_DEFAULT_TABLES,
            size: TAGE_DEFAULT_SIZE,
        }
    }
}

impl PolicyFactory for TageFactory {
    fn name(&self) -> &str {
        "tage"
    }

    fn spec(&self) -> String {
        format!("tage:tables={},size={}", self.tables, self.size)
    }

    fn build(&self, config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
        Box::new(TagePredictor::new(self.tables, self.size, config))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FillInfo, FillKind, SyncKind, Touch, VerifyOutcome};
    use crate::types::{BlockId, Pc};

    const BUILTIN_SPECS: [&str; 14] = [
        "base",
        "dsi",
        "last-pc",
        "ltp",
        "ltp:bits=6",
        "ltp:bits=30,capacity=4",
        "ltp-global",
        "ltp-global:bits=30,sets=64,ways=4",
        "ltp-xor:rot=7",
        "oracle",
        "perceptron",
        "perceptron:bits=6,hist=3,size=64,theta=4",
        "tage",
        "tage:tables=3,size=64",
    ];

    fn touch(block: u64, pc: u32, fill: bool) -> Touch {
        Touch {
            block: BlockId::new(block),
            pc: Pc::new(pc),
            is_write: false,
            exclusive: false,
            fill: fill.then_some(FillInfo {
                kind: FillKind::Demand,
                dir_version: 0,
                migratory_upgrade: false,
            }),
        }
    }

    /// Drives one policy through a short but complete life cycle: repeated
    /// fill/hit/invalidate episodes over a few blocks, a synchronization
    /// boundary, and verification verdicts for everything that fired — the
    /// full protocol contract of `SelfInvalidationPolicy`.
    fn exercise(policy: &mut dyn SelfInvalidationPolicy) {
        let mut pending: Vec<BlockId> = Vec::new();
        for episode in 0..6u32 {
            for block in 0..3u64 {
                let mut fired = policy.on_touch(touch(block, 0x4000, true));
                for step in 0..3u32 {
                    if fired {
                        break;
                    }
                    fired = policy.on_touch(touch(block, 0x4010 + step * 8, false));
                }
                if fired {
                    pending.push(BlockId::new(block));
                } else {
                    policy.on_invalidation(BlockId::new(block));
                }
            }
            for block in policy.on_sync(if episode % 2 == 0 {
                SyncKind::Barrier
            } else {
                SyncKind::LockRelease
            }) {
                pending.push(block);
            }
            for (i, block) in pending.drain(..).enumerate() {
                policy.on_verification(
                    block,
                    if i % 2 == 0 {
                        VerifyOutcome::Correct
                    } else {
                        VerifyOutcome::Premature
                    },
                );
            }
        }
        let storage = policy.storage();
        assert!(
            storage.live_entries <= storage.blocks_tracked.max(1) * 1024,
            "storage accounting stays sane"
        );
    }

    #[test]
    fn every_builtin_spec_builds_and_survives_a_trace() {
        let registry = PolicyRegistry::with_builtins();
        for spec in BUILTIN_SPECS {
            let factory = registry
                .parse(spec)
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert!(!factory.name().is_empty());
            // The canonical spec must round-trip through the registry.
            let canonical = factory.spec();
            let again = registry
                .parse(&canonical)
                .unwrap_or_else(|e| panic!("canonical `{canonical}`: {e}"));
            assert_eq!(again.spec(), canonical);
            let mut policy = factory.build(PredictorConfig::default());
            assert_eq!(policy.name(), factory.name());
            exercise(policy.as_mut());
        }
    }

    #[test]
    fn builtin_names_are_complete() {
        let registry = PolicyRegistry::with_builtins();
        let names: Vec<&str> = registry.names().collect();
        assert_eq!(
            names,
            [
                "base",
                "dsi",
                "last-pc",
                "ltp",
                "ltp-global",
                "ltp-xor",
                "oracle",
                "perceptron",
                "tage"
            ]
        );
        assert!(registry.contains("ltp"));
        assert!(!registry.contains("ltp2"));
    }

    #[test]
    fn parameters_are_applied() {
        let registry = PolicyRegistry::with_builtins();
        let f = registry.parse("ltp:bits=6,capacity=2").unwrap();
        assert_eq!(f.spec(), "ltp:bits=6,capacity=2");
        let f = registry
            .parse(" ltp-global : bits=13 , sets=0x40 ")
            .unwrap();
        assert_eq!(f.spec(), "ltp-global:bits=13,sets=64,ways=2");
    }

    #[test]
    fn spec_errors_are_precise() {
        let registry = PolicyRegistry::with_builtins();
        assert!(matches!(
            registry.parse(""),
            Err(PolicySpecError::EmptySpec)
        ));
        assert!(matches!(
            registry.parse("ltp2"),
            Err(PolicySpecError::UnknownPolicy { .. })
        ));
        assert!(matches!(
            registry.parse("ltp:bits"),
            Err(PolicySpecError::MalformedParam { .. })
        ));
        assert!(matches!(
            registry.parse("ltp:bits=13,bits=6"),
            Err(PolicySpecError::DuplicateParam { .. })
        ));
        assert!(matches!(
            registry.parse("ltp:bits=99"),
            Err(PolicySpecError::InvalidValue { .. })
        ));
        assert!(matches!(
            registry.parse("ltp:bots=13"),
            Err(PolicySpecError::UnknownParam { .. })
        ));
        assert!(matches!(
            registry.parse("base:bits=13"),
            Err(PolicySpecError::UnknownParam { .. })
        ));
        let err = registry.parse("nope").unwrap_err();
        assert!(err.to_string().contains("ltp-global"), "{err}");
    }

    #[test]
    fn external_registration_is_open() {
        #[derive(Debug)]
        struct EveryN(u32);
        impl PolicyFactory for EveryN {
            fn name(&self) -> &str {
                "every-n"
            }
            fn spec(&self) -> String {
                format!("every-n:n={}", self.0)
            }
            fn build(&self, _config: PredictorConfig) -> Box<dyn SelfInvalidationPolicy> {
                Box::new(NullPolicy)
            }
        }

        let mut registry = PolicyRegistry::with_builtins();
        registry
            .register("every-n", "fires every n touches [n=8]", |p| {
                let n = p.take_u64_in("n", 1, 1 << 16)?.unwrap_or(8) as u32;
                Ok(Arc::new(EveryN(n)))
            })
            .unwrap();
        let f = registry.parse("every-n:n=4").unwrap();
        assert_eq!(f.spec(), "every-n:n=4");
        // Names stay unique.
        assert!(matches!(
            registry.register("ltp", "dup", |_| Ok(Arc::new(BaseFactory))),
            Err(PolicySpecError::DuplicateName { .. })
        ));
        assert!(matches!(
            registry.register_factory(Arc::new(BaseFactory)),
            Err(PolicySpecError::DuplicateName { .. })
        ));
    }
}
