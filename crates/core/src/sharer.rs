//! [`SharerSet`]: a compact, allocation-free set of node identifiers.
//!
//! Directory protocols track "which nodes hold a copy of this block" on
//! every block of the machine, on the hot path of every read, write, and
//! invalidation. A heap-backed set (the seed's `BTreeSet<NodeId>`) costs an
//! allocation per sharing episode and O(n·log n) clone-and-collect on every
//! exclusive request; at the 64–256-node geometries the roadmap targets that
//! bookkeeping starts to dominate directory service.
//!
//! [`SharerSet`] is four inline `u64` bit-words — 32 bytes, `Copy`, no heap,
//! constant-time insert/remove/contains, popcount-based length, and
//! bit-scan iteration in ascending node order (the same order a `BTreeSet`
//! iterates, so full-map directories built on it are bit-identical to the
//! seed behavior).

use std::fmt;

use crate::types::NodeId;

/// Number of bit-words in the inline representation.
const WORDS: usize = 4;

/// A set of [`NodeId`]s with indices below [`SharerSet::CAPACITY`], stored
/// inline as bit-words.
///
/// # Examples
///
/// ```
/// use ltp_core::{NodeId, SharerSet};
///
/// let mut set = SharerSet::new();
/// assert!(set.insert(NodeId::new(3)));
/// assert!(set.insert(NodeId::new(200)));
/// assert!(!set.insert(NodeId::new(3)), "already present");
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(NodeId::new(200)));
/// // Iteration is in ascending node order.
/// let nodes: Vec<u16> = set.iter().map(|n| n.index() as u16).collect();
/// assert_eq!(nodes, vec![3, 200]);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SharerSet {
    words: [u64; WORDS],
}

impl SharerSet {
    /// The largest machine a `SharerSet` can index: node ids `0..256`.
    pub const CAPACITY: u16 = (WORDS * 64) as u16;

    /// The empty set.
    #[inline]
    pub const fn new() -> Self {
        SharerSet { words: [0; WORDS] }
    }

    /// A set holding exactly `node`.
    #[inline]
    pub fn from_node(node: NodeId) -> Self {
        let mut set = SharerSet::new();
        set.insert(node);
        set
    }

    #[inline]
    fn slot(node: NodeId) -> (usize, u64) {
        let index = node.index();
        assert!(
            index < Self::CAPACITY as usize,
            "{node} exceeds SharerSet capacity {}",
            Self::CAPACITY
        );
        (index / 64, 1u64 << (index % 64))
    }

    /// Inserts `node`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= SharerSet::CAPACITY`.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        let (word, bit) = Self::slot(node);
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        fresh
    }

    /// Removes `node`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (word, bit) = Self::slot(node);
        let present = self.words[word] & bit != 0;
        self.words[word] &= !bit;
        present
    }

    /// Whether `node` is in the set.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let (word, bit) = Self::slot(node);
        self.words[word] & bit != 0
    }

    /// Number of nodes in the set (popcount).
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Empties the set.
    #[inline]
    pub fn clear(&mut self) {
        self.words = [0; WORDS];
    }

    /// Iterates the members in ascending node order (bit-scan).
    #[inline]
    pub fn iter(&self) -> SharerIter {
        SharerIter {
            words: self.words,
            word: 0,
        }
    }
}

impl FromIterator<NodeId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = SharerSet::new();
        for node in iter {
            set.insert(node);
        }
        set
    }
}

impl Extend<NodeId> for SharerSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for node in iter {
            self.insert(node);
        }
    }
}

impl IntoIterator for SharerSet {
    type Item = NodeId;
    type IntoIter = SharerIter;

    fn into_iter(self) -> SharerIter {
        self.iter()
    }
}

impl IntoIterator for &SharerSet {
    type Item = NodeId;
    type IntoIter = SharerIter;

    fn into_iter(self) -> SharerIter {
        self.iter()
    }
}

impl fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, node) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{node}")?;
        }
        f.write_str("}")
    }
}

/// Bit-scan iterator over a [`SharerSet`] (ascending node order).
#[derive(Debug, Clone)]
pub struct SharerIter {
    words: [u64; WORDS],
    word: usize,
}

impl Iterator for SharerIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        while self.word < WORDS {
            let w = self.words[self.word];
            if w != 0 {
                let bit = w.trailing_zeros() as usize;
                self.words[self.word] = w & (w - 1);
                return Some(NodeId::new((self.word * 64 + bit) as u16));
            }
            self.word += 1;
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining: usize = self.words[self.word.min(WORDS - 1)..]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SharerIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = SharerSet::new();
        assert!(s.is_empty());
        assert!(s.insert(n(0)));
        assert!(s.insert(n(63)));
        assert!(s.insert(n(64)));
        assert!(s.insert(n(255)));
        assert!(!s.insert(n(64)));
        assert_eq!(s.len(), 4);
        assert!(s.contains(n(63)));
        assert!(!s.contains(n(1)));
        assert!(s.remove(n(63)));
        assert!(!s.remove(n(63)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iteration_is_ascending_like_a_btreeset() {
        use std::collections::BTreeSet;
        let ids = [200u16, 3, 64, 0, 127, 128, 255, 65];
        let set: SharerSet = ids.iter().map(|&i| n(i)).collect();
        let reference: BTreeSet<NodeId> = ids.iter().map(|&i| n(i)).collect();
        let scanned: Vec<NodeId> = set.iter().collect();
        let sorted: Vec<NodeId> = reference.into_iter().collect();
        assert_eq!(scanned, sorted);
        assert_eq!(set.iter().len(), 8);
    }

    #[test]
    fn from_node_and_clear() {
        let mut s = SharerSet::from_node(n(17));
        assert_eq!(s.len(), 1);
        assert!(s.contains(n(17)));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn copy_semantics_make_snapshots_cheap() {
        let mut a = SharerSet::from_node(n(1));
        let snapshot = a;
        a.insert(n(2));
        assert_eq!(snapshot.len(), 1, "snapshot is an independent copy");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn debug_formats_as_a_set() {
        let s: SharerSet = [n(1), n(5)].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{P1, P5}");
    }

    #[test]
    #[should_panic(expected = "exceeds SharerSet capacity")]
    fn out_of_range_nodes_panic() {
        SharerSet::new().insert(n(256));
    }
}
