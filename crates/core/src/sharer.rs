//! [`SharerSet`]: a compact, width-generic set of node identifiers.
//!
//! Directory protocols track "which nodes hold a copy of this block" on
//! every block of the machine, on the hot path of every read, write, and
//! invalidation. A heap-backed set (the seed's `BTreeSet<NodeId>`) costs an
//! allocation per sharing episode and O(n·log n) clone-and-collect on every
//! exclusive request; fixed inline bit-words (the previous four `u64`s)
//! avoid that but hard-cap the machine at 256 nodes — too small for the
//! roadmap's 1024–4096-node scaling study.
//!
//! [`SharerSet`] is a hybrid: sharing episodes with at most
//! [`SharerSet::INLINE`] members (the common case — most blocks have a
//! handful of sharers regardless of machine size) live in a sorted inline
//! array of node ids, allocation-free. The ninth member spills the set into
//! a heap bit-vector sized to the largest inserted id, and a removal that
//! brings the population back to [`SharerSet::INLINE`] shrinks it inline
//! again. Both representations iterate in ascending node order (the same
//! order a `BTreeSet` iterates, so full-map directories built on it are
//! bit-identical to the seed behavior at any width).
//!
//! The representation is canonical — a set is inline if and only if its
//! population is at most [`SharerSet::INLINE`], and a spilled bit-vector
//! carries no trailing zero words — so equality and hashing never depend on
//! the insertion/removal history.

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::types::NodeId;

/// Members held inline (sorted array of node ids) before spilling to a
/// heap bit-vector.
const INLINE: usize = 8;

/// The two storage forms. Canonical invariants maintained by every mutator:
/// `Inline` iff `len <= INLINE`; `ids[..len]` sorted ascending, `ids[len..]`
/// zeroed; `Bits` words carry no trailing zero word and `len` caches the
/// total popcount.
#[derive(Clone)]
enum Repr {
    Inline { len: u8, ids: [u16; INLINE] },
    Bits { len: u32, words: Vec<u64> },
}

/// A set of [`NodeId`]s of any width: inline up to [`SharerSet::INLINE`]
/// members, heap bit-vector beyond.
///
/// # Examples
///
/// ```
/// use ltp_core::{NodeId, SharerSet};
///
/// let mut set = SharerSet::new();
/// assert!(set.insert(NodeId::new(3)));
/// assert!(set.insert(NodeId::new(4000)));
/// assert!(!set.insert(NodeId::new(3)), "already present");
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(NodeId::new(4000)));
/// // Iteration is in ascending node order.
/// let nodes: Vec<u16> = set.iter().map(|n| n.index() as u16).collect();
/// assert_eq!(nodes, vec![3, 4000]);
/// ```
#[derive(Clone)]
pub struct SharerSet {
    repr: Repr,
}

impl Default for SharerSet {
    fn default() -> Self {
        SharerSet::new()
    }
}

impl SharerSet {
    /// Members held inline before the set spills to a heap bit-vector.
    pub const INLINE: usize = INLINE;

    /// The empty set.
    #[inline]
    pub const fn new() -> Self {
        SharerSet {
            repr: Repr::Inline {
                len: 0,
                ids: [0; INLINE],
            },
        }
    }

    /// A set holding exactly `node`.
    #[inline]
    pub fn from_node(node: NodeId) -> Self {
        let mut set = SharerSet::new();
        set.insert(node);
        set
    }

    /// Whether the set currently lives in the spilled (heap bit-vector)
    /// representation. Exposed for storage accounting and representation
    /// tests; protocol code never needs it.
    #[inline]
    pub fn is_spilled(&self) -> bool {
        matches!(self.repr, Repr::Bits { .. })
    }

    /// Inserts `node`; returns whether it was newly inserted.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        let id = node.index() as u16;
        match &mut self.repr {
            Repr::Inline { len, ids } => {
                let n = *len as usize;
                match ids[..n].binary_search(&id) {
                    Ok(_) => false,
                    Err(pos) => {
                        if n < INLINE {
                            ids.copy_within(pos..n, pos + 1);
                            ids[pos] = id;
                            *len += 1;
                        } else {
                            self.spill_with(id);
                        }
                        true
                    }
                }
            }
            Repr::Bits { len, words } => {
                let (word, bit) = (id as usize / 64, 1u64 << (id % 64));
                if word >= words.len() {
                    words.resize(word + 1, 0);
                }
                let fresh = words[word] & bit == 0;
                if fresh {
                    words[word] |= bit;
                    *len += 1;
                }
                fresh
            }
        }
    }

    /// Converts an inline set at full population into the bit-vector form,
    /// adding the not-yet-present `extra` id.
    #[cold]
    fn spill_with(&mut self, extra: u16) {
        let Repr::Inline { len, ids } = &self.repr else {
            unreachable!("spill from inline only");
        };
        let n = *len as usize;
        let max = ids[..n].iter().copied().max().unwrap_or(0).max(extra);
        let mut words = vec![0u64; max as usize / 64 + 1];
        for &id in ids[..n].iter().chain(std::iter::once(&extra)) {
            words[id as usize / 64] |= 1u64 << (id % 64);
        }
        self.repr = Repr::Bits {
            len: n as u32 + 1,
            words,
        };
    }

    /// Collapses a spilled set whose population fits inline back into the
    /// sorted-array form.
    #[cold]
    fn shrink(&mut self) {
        let Repr::Bits { len, words } = &self.repr else {
            unreachable!("shrink from bits only");
        };
        debug_assert!(*len as usize <= INLINE);
        let mut ids = [0u16; INLINE];
        let mut n = 0usize;
        for (w, &bits) in words.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                ids[n] = (w * 64 + bits.trailing_zeros() as usize) as u16;
                bits &= bits - 1;
                n += 1;
            }
        }
        self.repr = Repr::Inline { len: n as u8, ids };
    }

    /// Removes `node`; returns whether it was present.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        let id = node.index() as u16;
        match &mut self.repr {
            Repr::Inline { len, ids } => {
                let n = *len as usize;
                match ids[..n].binary_search(&id) {
                    Ok(pos) => {
                        ids.copy_within(pos + 1..n, pos);
                        ids[n - 1] = 0;
                        *len -= 1;
                        true
                    }
                    Err(_) => false,
                }
            }
            Repr::Bits { len, words } => {
                let (word, bit) = (id as usize / 64, 1u64 << (id % 64));
                if word >= words.len() || words[word] & bit == 0 {
                    return false;
                }
                words[word] &= !bit;
                *len -= 1;
                while words.last() == Some(&0) {
                    words.pop();
                }
                if *len as usize <= INLINE {
                    self.shrink();
                }
                true
            }
        }
    }

    /// Whether `node` is in the set.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let id = node.index() as u16;
        match &self.repr {
            Repr::Inline { len, ids } => ids[..*len as usize].binary_search(&id).is_ok(),
            Repr::Bits { words, .. } => {
                let word = id as usize / 64;
                word < words.len() && words[word] & (1u64 << (id % 64)) != 0
            }
        }
    }

    /// Number of nodes in the set.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Bits { len, .. } => *len as usize,
        }
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the set (dropping any heap storage).
    #[inline]
    pub fn clear(&mut self) {
        self.repr = Repr::Inline {
            len: 0,
            ids: [0; INLINE],
        };
    }

    /// Iterates the members in ascending node order.
    #[inline]
    pub fn iter(&self) -> SharerIter<'_> {
        match &self.repr {
            Repr::Inline { len, ids } => SharerIter {
                ids: &ids[..*len as usize],
                words: &[],
                word: 0,
                cur: 0,
            },
            Repr::Bits { words, .. } => SharerIter {
                ids: &[],
                words,
                word: 0,
                cur: words.first().copied().unwrap_or(0),
            },
        }
    }
}

impl PartialEq for SharerSet {
    fn eq(&self, other: &Self) -> bool {
        // Representations are canonical (inline iff len <= INLINE, no
        // trailing zero words), so mixed-variant comparisons are never equal.
        match (&self.repr, &other.repr) {
            (Repr::Inline { len: a, ids: ai }, Repr::Inline { len: b, ids: bi }) => {
                a == b && ai[..*a as usize] == bi[..*b as usize]
            }
            (Repr::Bits { len: a, words: aw }, Repr::Bits { len: b, words: bw }) => {
                a == b && aw == bw
            }
            _ => false,
        }
    }
}

impl Eq for SharerSet {}

impl Hash for SharerSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.len());
        for node in self {
            state.write_u16(node.index() as u16);
        }
    }
}

impl FromIterator<NodeId> for SharerSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = SharerSet::new();
        for node in iter {
            set.insert(node);
        }
        set
    }
}

impl Extend<NodeId> for SharerSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for node in iter {
            self.insert(node);
        }
    }
}

impl IntoIterator for SharerSet {
    type Item = NodeId;
    type IntoIter = SharerIntoIter;

    fn into_iter(self) -> SharerIntoIter {
        SharerIntoIter { set: self, at: 0 }
    }
}

impl<'a> IntoIterator for &'a SharerSet {
    type Item = NodeId;
    type IntoIter = SharerIter<'a>;

    fn into_iter(self) -> SharerIter<'a> {
        self.iter()
    }
}

impl fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, node) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{node}")?;
        }
        f.write_str("}")
    }
}

/// Borrowing iterator over a [`SharerSet`] (ascending node order). Walks the
/// inline id slice directly, or bit-scans the spilled words.
#[derive(Debug, Clone)]
pub struct SharerIter<'a> {
    ids: &'a [u16],
    words: &'a [u64],
    word: usize,
    cur: u64,
}

impl Iterator for SharerIter<'_> {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        if let Some((&id, rest)) = self.ids.split_first() {
            self.ids = rest;
            return Some(NodeId::new(id));
        }
        loop {
            if self.cur != 0 {
                let bit = self.cur.trailing_zeros() as usize;
                self.cur &= self.cur - 1;
                return Some(NodeId::new((self.word * 64 + bit) as u16));
            }
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.cur = self.words[self.word];
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.ids.len()
            + self.cur.count_ones() as usize
            + self.words[(self.word + 1).min(self.words.len())..]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>();
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SharerIter<'_> {}

/// Owning iterator over a [`SharerSet`] (ascending node order).
#[derive(Debug, Clone)]
pub struct SharerIntoIter {
    set: SharerSet,
    /// Inline: next index into `ids`. Bits: next word to scan (bits already
    /// yielded are cleared in place).
    at: usize,
}

impl Iterator for SharerIntoIter {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        match &mut self.set.repr {
            Repr::Inline { len, ids } => {
                if self.at < *len as usize {
                    let id = ids[self.at];
                    self.at += 1;
                    Some(NodeId::new(id))
                } else {
                    None
                }
            }
            Repr::Bits { words, .. } => {
                while self.at < words.len() {
                    let w = words[self.at];
                    if w != 0 {
                        let bit = w.trailing_zeros() as usize;
                        words[self.at] = w & (w - 1);
                        return Some(NodeId::new((self.at * 64 + bit) as u16));
                    }
                    self.at += 1;
                }
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = match &self.set.repr {
            Repr::Inline { len, .. } => (*len as usize).saturating_sub(self.at),
            Repr::Bits { words, .. } => words[self.at.min(words.len())..]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum(),
        };
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for SharerIntoIter {}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn insert_remove_contains_roundtrip() {
        let mut s = SharerSet::new();
        assert!(s.is_empty());
        assert!(s.insert(n(0)));
        assert!(s.insert(n(63)));
        assert!(s.insert(n(64)));
        assert!(s.insert(n(255)));
        assert!(!s.insert(n(64)));
        assert_eq!(s.len(), 4);
        assert!(s.contains(n(63)));
        assert!(!s.contains(n(1)));
        assert!(s.remove(n(63)));
        assert!(!s.remove(n(63)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iteration_is_ascending_like_a_btreeset() {
        use std::collections::BTreeSet;
        let ids = [200u16, 3, 64, 0, 127, 128, 255, 65];
        let set: SharerSet = ids.iter().map(|&i| n(i)).collect();
        let reference: BTreeSet<NodeId> = ids.iter().map(|&i| n(i)).collect();
        let scanned: Vec<NodeId> = set.iter().collect();
        let sorted: Vec<NodeId> = reference.into_iter().collect();
        assert_eq!(scanned, sorted);
        assert_eq!(set.iter().len(), 8);
    }

    #[test]
    fn from_node_and_clear() {
        let mut s = SharerSet::from_node(n(17));
        assert_eq!(s.len(), 1);
        assert!(s.contains(n(17)));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn clone_semantics_make_snapshots_independent() {
        let mut a = SharerSet::from_node(n(1));
        let snapshot = a.clone();
        a.insert(n(2));
        assert_eq!(snapshot.len(), 1, "snapshot is an independent copy");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn debug_formats_as_a_set() {
        let s: SharerSet = [n(1), n(5)].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{P1, P5}");
    }

    #[test]
    fn width_is_unbounded() {
        let mut s = SharerSet::new();
        assert!(s.insert(n(256)), "the old 256-node ceiling is gone");
        assert!(s.insert(n(4095)));
        assert!(s.insert(n(u16::MAX)));
        assert_eq!(s.len(), 3);
        let scanned: Vec<u16> = s.iter().map(|x| x.index() as u16).collect();
        assert_eq!(scanned, vec![256, 4095, u16::MAX]);
    }

    #[test]
    fn ninth_member_spills_and_removal_shrinks_inline() {
        let mut s = SharerSet::new();
        for i in 0..SharerSet::INLINE as u16 {
            s.insert(n(i * 100));
        }
        assert!(!s.is_spilled(), "eight members fit inline");
        s.insert(n(901));
        assert!(s.is_spilled(), "ninth member spills to the bit-vector");
        assert_eq!(s.len(), 9);
        assert!(s.contains(n(700)));
        s.remove(n(300));
        assert!(!s.is_spilled(), "back at eight members: inline again");
        assert_eq!(s.len(), 8);
        let scanned: Vec<u16> = s.iter().map(|x| x.index() as u16).collect();
        assert_eq!(scanned, vec![0, 100, 200, 400, 500, 600, 700, 901]);
    }

    #[test]
    fn equality_and_hash_ignore_history() {
        use std::collections::hash_map::DefaultHasher;

        fn hash_of(s: &SharerSet) -> u64 {
            let mut h = DefaultHasher::new();
            s.hash(&mut h);
            h.finish()
        }

        // Build {0, 5}: directly, and via a spill-then-shrink detour over
        // high ids.
        let direct: SharerSet = [n(0), n(5)].into_iter().collect();
        let mut detour = SharerSet::new();
        for i in 0..12u16 {
            detour.insert(n(i * 333));
        }
        assert!(detour.is_spilled());
        for i in 1..12u16 {
            detour.remove(n(i * 333));
        }
        detour.insert(n(5));
        assert_eq!(direct, detour);
        assert_eq!(hash_of(&direct), hash_of(&detour));

        // Same exercise fully in the spilled regime: {0..9} built ascending
        // vs reached by removing a high straggler.
        let asc: SharerSet = (0..10).map(n).collect();
        let mut pruned: SharerSet = (0..10).map(n).collect();
        pruned.insert(n(9000));
        pruned.remove(n(9000));
        assert!(asc.is_spilled() && pruned.is_spilled());
        assert_eq!(asc, pruned);
        assert_eq!(hash_of(&asc), hash_of(&pruned));
    }

    #[test]
    fn owning_and_borrowing_iterators_agree() {
        for width in [5usize, 40] {
            let s: SharerSet = (0..width as u16).map(|i| n(i * 7)).collect();
            let borrowed: Vec<NodeId> = (&s).into_iter().collect();
            let owned: Vec<NodeId> = s.clone().into_iter().collect();
            assert_eq!(borrowed, owned);
            assert_eq!(s.clone().into_iter().len(), width);
        }
    }
}
