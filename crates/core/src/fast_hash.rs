//! A fast, deterministic hasher for the predictor hot paths.
//!
//! Every per-touch table in this workspace is keyed by small integers
//! (block addresses, PCs, (node, block) pairs). `std`'s default SipHash is
//! DoS-resistant but costs more than the table work it guards; simulation
//! tables hash attacker-free keys millions of times per run, so the
//! classic Fx multiply-rotate hash (as used by rustc) is the right
//! trade — ~5× cheaper per lookup and, unlike `RandomState`, seed-free,
//! which keeps iteration-order-independent code honest: a map that leaks
//! iteration order into results now does so reproducibly instead of
//! flaking.
//!
//! Use the [`FxHashMap`] / [`FxHashSet`] aliases; they are drop-in for the
//! `std` types.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply-rotate hasher (64-bit state).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }
}

/// Deterministic fast-hash state for [`HashMap`]/[`HashSet`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`] — drop-in for `std::collections::HashMap`.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`] — drop-in for `std::collections::HashSet`.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHashMap::default();
        let mut b = FxHashMap::default();
        for i in 0..1000u64 {
            a.insert(i, i);
            b.insert(i, i);
        }
        // Seed-free hashing: identical insertion order → identical
        // iteration order, across instances and across processes.
        assert!(a.iter().zip(b.iter()).all(|(x, y)| x == y));
    }

    #[test]
    fn distributes_small_integer_keys() {
        // 4096 sequential keys must not collapse onto a few buckets: check
        // the low bits of the hash spread.
        let mut buckets = [0u32; 64];
        for i in 0..4096u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            buckets[(h.finish() % 64) as usize] += 1;
        }
        let max = buckets.iter().max().copied().unwrap();
        assert!(max < 4 * 4096 / 64, "pathological clustering: {max}");
    }
}
