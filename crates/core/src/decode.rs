//! A zero-dependency JSON parser producing [`JsonValue`] trees.
//!
//! The counterpart of the [`crate::encode`] renderer: campaign stores,
//! report folders, and spec files persist documents with the encoder and
//! read them back here. The parser accepts standard JSON (RFC 8259); the
//! number policy mirrors the encoder so that every document the encoder can
//! produce round-trips value-for-value:
//!
//! * integers without sign parse as [`JsonValue::U64`];
//! * negative integers parse as [`JsonValue::I64`];
//! * anything with a fraction or exponent parses as [`JsonValue::F64`]
//!   (Rust's shortest-round-trip `{}` float rendering parses back to the
//!   identical bit pattern).
//!
//! # Examples
//!
//! ```
//! use ltp_core::{parse_json, JsonObject, JsonValue};
//!
//! let doc = JsonObject::new()
//!     .field("name", "em3d")
//!     .field("ops", 12288u64)
//!     .field("ratio", 0.25)
//!     .build();
//! let parsed = parse_json(&doc.render()).unwrap();
//! assert_eq!(parsed, doc, "encoder output round-trips");
//! assert_eq!(parsed.get("ops").and_then(JsonValue::as_u64), Some(12288));
//! ```

use std::fmt;

use crate::encode::JsonValue;

/// A JSON document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`JsonParseError`] locating the first offending byte.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

/// Nesting depth cap: campaign documents are a few levels deep; a bound
/// keeps adversarial inputs from overflowing the parse stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.error(format!("unexpected byte `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following \uXXXX low half
                                // is required.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.error("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.error("lone low surrogate"));
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.error("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)));
                        }
                    }
                }
                0x00..=0x1f => return Err(self.error("raw control character in string")),
                _ => {
                    // Re-borrow the original slice to copy the full UTF-8
                    // sequence this byte starts.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let ch_len = utf8_len(c).ok_or_else(|| self.error("invalid UTF-8"))?;
                    if rest.len() < ch_len {
                        return Err(self.error("truncated UTF-8 sequence"));
                    }
                    let s = std::str::from_utf8(&rest[..ch_len])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = start + ch_len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(JsonValue::I64(v));
            }
        }
        match text.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(JsonValue::F64(v)),
            _ => {
                self.pos = start;
                Err(self.error(format!("invalid number `{text}`")))
            }
        }
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

impl JsonValue {
    /// Looks up a field by key (objects only; first match wins, mirroring
    /// the encoder's no-duplicate discipline).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant widens losslessly enough
    /// for reporting arithmetic).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::U64(v) => Some(*v as f64),
            JsonValue::I64(v) => Some(*v as f64),
            JsonValue::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value's items, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value's fields, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::JsonObject;

    #[test]
    fn scalars_parse() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse_json("42").unwrap(), JsonValue::U64(42));
        assert_eq!(parse_json("-7").unwrap(), JsonValue::I64(-7));
        assert_eq!(parse_json("0.5").unwrap(), JsonValue::F64(0.5));
        assert_eq!(parse_json("1e3").unwrap(), JsonValue::F64(1000.0));
        assert_eq!(
            parse_json("\"hi\\n\\u0041\"").unwrap(),
            JsonValue::Str("hi\nA".to_string())
        );
    }

    #[test]
    fn encoder_output_round_trips_exactly() {
        let doc = JsonObject::new()
            .field("name", "em3d \"quoted\" \\ path\nline")
            .field("ops", u64::MAX)
            .field("delta", -42i64)
            .field("ratio", 0.1 + 0.2)
            .field("none", JsonValue::Null)
            .field(
                "nested",
                JsonObject::new()
                    .field("list", JsonValue::Array(vec![1u64.into(), "x".into()]))
                    .build(),
            )
            .build();
        let text = doc.render();
        let parsed = parse_json(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.render(), text, "render→parse→render is identity");
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse_json("\"\\ud83d\\ude00\"").unwrap(),
            JsonValue::Str("😀".to_string())
        );
        assert!(parse_json("\"\\ud83d\"").is_err(), "lone high surrogate");
        assert!(parse_json("\"\\ude00\"").is_err(), "lone low surrogate");
    }

    #[test]
    fn multibyte_utf8_passes_through() {
        let parsed = parse_json("\"héllo 世界\"").unwrap();
        assert_eq!(parsed, JsonValue::Str("héllo 世界".to_string()));
    }

    #[test]
    fn garbage_is_rejected_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "01x",
            "\"\\q\"",
            "1 2",
            "{\"a\":1,}",
            "[1,]",
            "nan",
            "-",
        ] {
            assert!(parse_json(bad).is_err(), "accepted: {bad:?}");
        }
        let err = parse_json("[1, oops]").unwrap_err();
        assert_eq!(err.offset, 4);
    }

    #[test]
    fn huge_integers_fall_back_in_order() {
        // > u64::MAX but fits i64? No — only negatives reach I64.
        let over = "18446744073709551616"; // u64::MAX + 1
        assert!(matches!(parse_json(over).unwrap(), JsonValue::F64(_)));
        assert_eq!(
            parse_json("-9223372036854775808").unwrap(),
            JsonValue::I64(i64::MIN)
        );
        assert!(matches!(
            parse_json("-9223372036854775809").unwrap(),
            JsonValue::F64(_)
        ));
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let v = parse_json(r#"{"metrics":{"exec_cycles":123,"pct":4.5},"tags":["a"],"ok":true}"#)
            .unwrap();
        let metrics = v.get("metrics").unwrap();
        assert_eq!(
            metrics.get("exec_cycles").and_then(JsonValue::as_u64),
            Some(123)
        );
        assert_eq!(metrics.get("pct").and_then(JsonValue::as_f64), Some(4.5));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            v.get("tags").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("x"), None);
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse_json(&deep).is_err());
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(parse_json(&ok).is_ok());
    }
}
