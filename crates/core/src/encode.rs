//! Trace-signature encodings (paper §3.2, §5.2) and the repository's shared
//! JSON encoder.
//!
//! A *trace* is the sequence of instructions (PCs) touching a block from the
//! coherence miss that fetched it until the invalidation that takes it away.
//! Storing whole traces is prohibitive, so the predictor folds each trace into
//! a fixed-width *signature*. The paper uses **truncated addition** — the
//! running sum of PCs modulo `2^k` — and shows (Figure 7) that 13 bits
//! suffice for per-block tables while global tables need the full 30 bits.
//!
//! The [`SignatureEncoder`] trait admits alternative encodings; the ablation
//! bench compares truncated addition with an XOR-rotate mix.
//!
//! The second half of this module is [`JsonValue`]/[`JsonObject`]: the one
//! dependency-free JSON encoder every report, probe section, and benchmark
//! baseline in the workspace serializes through (this repository carries no
//! external dependencies, so the encoder is hand-rolled — but hand-rolled
//! *once*, here, instead of per consumer).

use std::fmt;
use std::fmt::Write as _;

use crate::types::Pc;

/// Width of a signature in bits. The paper's "Base" configuration is 30 bits
/// (enough to hold one whole PC); Figure 7 sweeps {30, 13, 11, 6}.
///
/// # Examples
///
/// ```
/// use ltp_core::SignatureBits;
///
/// let bits = SignatureBits::new(13)?;
/// assert_eq!(bits.get(), 13);
/// assert_eq!(bits.mask(), (1 << 13) - 1);
/// # Ok::<(), ltp_core::InvalidSignatureBits>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignatureBits(u8);

/// Error returned when constructing a [`SignatureBits`] outside `1..=32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidSignatureBits(pub u8);

impl fmt::Display for InvalidSignatureBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "signature width {} is outside 1..=32 bits", self.0)
    }
}

impl std::error::Error for InvalidSignatureBits {}

impl SignatureBits {
    /// The paper's "Base" width: 30 bits, the minimum holding one full PC.
    pub const BASE: SignatureBits = SignatureBits(30);
    /// The paper's recommended per-block width (Figure 7): 13 bits.
    pub const PER_BLOCK_DEFAULT: SignatureBits = SignatureBits(13);

    /// Creates a width, validating `1 <= bits <= 32`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidSignatureBits`] when outside that range.
    pub fn new(bits: u8) -> Result<Self, InvalidSignatureBits> {
        if (1..=32).contains(&bits) {
            Ok(SignatureBits(bits))
        } else {
            Err(InvalidSignatureBits(bits))
        }
    }

    /// The width in bits.
    #[inline]
    pub const fn get(self) -> u8 {
        self.0
    }

    /// A mask selecting the low `bits` bits.
    #[inline]
    pub const fn mask(self) -> u32 {
        if self.0 >= 32 {
            u32::MAX
        } else {
            (1u32 << self.0) - 1
        }
    }
}

impl fmt::Display for SignatureBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.0)
    }
}

/// A trace signature: the compact encoding of one instruction trace.
///
/// Only the low [`SignatureBits`] bits are meaningful; constructors mask
/// eagerly so equality is width-honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Signature(u32);

impl Signature {
    /// The raw (masked) signature bits.
    #[inline]
    pub const fn bits(self) -> u32 {
        self.0
    }

    /// Creates a signature from raw bits, masked to `width`.
    #[inline]
    pub fn from_bits(bits: u32, width: SignatureBits) -> Self {
        Signature(bits & width.mask())
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sig:{:#x}", self.0)
    }
}

impl fmt::LowerHex for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Folds a trace of PCs into a [`Signature`], one instruction at a time.
///
/// Implementations must be deterministic and must depend only on the sequence
/// of PCs folded so far (the predictor re-creates signatures incrementally as
/// instructions execute).
pub trait SignatureEncoder: fmt::Debug + Send {
    /// The signature of the empty trace.
    fn empty(&self) -> Signature {
        Signature::default()
    }

    /// The signature of a trace that begins at the faulting instruction `pc`
    /// (the paper initializes the current signature with the PC of the
    /// coherence-missing instruction).
    fn start(&self, pc: Pc) -> Signature;

    /// Extends `current` with one more touching instruction.
    fn fold(&self, current: Signature, pc: Pc) -> Signature;

    /// The signature width this encoder produces.
    fn width(&self) -> SignatureBits;

    /// Encodes a whole trace at once (training helpers and tests).
    fn encode_trace(&self, pcs: &[Pc]) -> Signature {
        let mut iter = pcs.iter();
        let Some(&first) = iter.next() else {
            return self.empty();
        };
        iter.fold(self.start(first), |sig, &pc| self.fold(sig, pc))
    }
}

/// The paper's encoder: truncated addition (`sig' = (sig + pc) mod 2^k`).
///
/// §3.2: "truncated addition randomizes the signature bits and enables
/// encoding large traces into a small number of bits."
///
/// # Examples
///
/// ```
/// use ltp_core::{Pc, SignatureBits, SignatureEncoder, TruncatedAdd};
///
/// let enc = TruncatedAdd::new(SignatureBits::new(13)?);
/// let sig = enc.encode_trace(&[Pc::new(0x100), Pc::new(0x104), Pc::new(0x104)]);
/// // Order-insensitive by construction, but length- and multiset-sensitive:
/// assert_ne!(sig, enc.encode_trace(&[Pc::new(0x100), Pc::new(0x104)]));
/// # Ok::<(), ltp_core::InvalidSignatureBits>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TruncatedAdd {
    width: SignatureBits,
}

impl TruncatedAdd {
    /// Creates a truncated-addition encoder of the given width.
    pub fn new(width: SignatureBits) -> Self {
        TruncatedAdd { width }
    }
}

impl Default for TruncatedAdd {
    /// The paper's per-block default: 13-bit truncated addition.
    fn default() -> Self {
        TruncatedAdd::new(SignatureBits::PER_BLOCK_DEFAULT)
    }
}

impl SignatureEncoder for TruncatedAdd {
    fn start(&self, pc: Pc) -> Signature {
        Signature::from_bits(pc.value(), self.width)
    }

    fn fold(&self, current: Signature, pc: Pc) -> Signature {
        Signature::from_bits(current.bits().wrapping_add(pc.value()), self.width)
    }

    fn width(&self) -> SignatureBits {
        self.width
    }
}

/// An order-sensitive alternative encoder: rotate-left-then-XOR.
///
/// Unlike [`TruncatedAdd`], two traces containing the same PCs in different
/// orders encode differently. The `ablation_encoding` bench quantifies
/// whether order sensitivity buys accuracy on the suite (the paper conjectures
/// sophisticated encodings could shrink global tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorRotate {
    width: SignatureBits,
    rotation: u32,
}

impl XorRotate {
    /// Creates an XOR-rotate encoder; `rotation` is the left-rotation applied
    /// before each fold (values coprime to the width mix best).
    pub fn new(width: SignatureBits, rotation: u32) -> Self {
        XorRotate { width, rotation }
    }
}

impl Default for XorRotate {
    fn default() -> Self {
        XorRotate::new(SignatureBits::PER_BLOCK_DEFAULT, 5)
    }
}

impl SignatureEncoder for XorRotate {
    fn start(&self, pc: Pc) -> Signature {
        Signature::from_bits(pc.value(), self.width)
    }

    fn fold(&self, current: Signature, pc: Pc) -> Signature {
        let w = u32::from(self.width.get());
        let r = self.rotation % w;
        let cur = current.bits();
        let rotated = ((cur << r) | (cur >> (w - r.max(1)))) & self.width.mask();
        Signature::from_bits(rotated ^ pc.value(), self.width)
    }

    fn width(&self) -> SignatureBits {
        self.width
    }
}

// ---- JSON ----------------------------------------------------------------

/// An owned JSON document: the interchange tree behind every `RunReport`,
/// probe metrics section, and benchmark baseline in the workspace.
///
/// Objects preserve insertion order (they are field *lists*, not maps), so a
/// document renders byte-identically run after run. Rendering is compact —
/// no whitespace — matching the workspace's JSON-lines conventions.
///
/// # Examples
///
/// ```
/// use ltp_core::{JsonObject, JsonValue};
///
/// let doc = JsonObject::new()
///     .field("name", "em3d")
///     .field("ops", 12288u64)
///     .field("ratio", 0.25)
///     .field("tags", JsonValue::Array(vec!["a".into(), "b".into()]))
///     .build();
/// assert_eq!(
///     doc.render(),
///     r#"{"name":"em3d","ops":12288,"ratio":0.25,"tags":["a","b"]}"#
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number; non-finite values render as `null` (JSON
    /// has no NaN/Inf).
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object as an ordered field list. Keys are rendered in insertion
    /// order and are not deduplicated — callers keep them unique.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write(&mut out);
        out
    }

    /// Appends the value's compact JSON rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                json_escape_into(out, s);
                out.push('"');
            }
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    json_escape_into(out, key);
                    out.push_str("\":");
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::U64(v)
    }
}

impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::U64(u64::from(v))
    }
}

impl From<u16> for JsonValue {
    fn from(v: u16) -> Self {
        JsonValue::U64(u64::from(v))
    }
}

impl From<u8> for JsonValue {
    fn from(v: u8) -> Self {
        JsonValue::U64(u64::from(v))
    }
}

impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::I64(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::F64(v)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

impl From<Vec<JsonValue>> for JsonValue {
    fn from(v: Vec<JsonValue>) -> Self {
        JsonValue::Array(v)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Builder for [`JsonValue::Object`] field lists (see [`JsonValue`]'s
/// example).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    /// Appends one field (builder style).
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<JsonValue>) -> Self {
        self.push(key, value);
        self
    }

    /// Appends one field (in-place style).
    pub fn push(&mut self, key: &str, value: impl Into<JsonValue>) {
        self.fields.push((key.to_string(), value.into()));
    }

    /// Finishes the object.
    pub fn build(self) -> JsonValue {
        JsonValue::Object(self.fields)
    }
}

/// Appends `s` to `out` with JSON string escaping applied (quotes,
/// backslashes, and control characters).
pub fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcs(vals: &[u32]) -> Vec<Pc> {
        vals.iter().copied().map(Pc::new).collect()
    }

    #[test]
    fn signature_bits_validation() {
        assert!(SignatureBits::new(0).is_err());
        assert!(SignatureBits::new(33).is_err());
        assert_eq!(SignatureBits::new(32).unwrap().mask(), u32::MAX);
        assert_eq!(SignatureBits::new(6).unwrap().mask(), 0b11_1111);
        let err = SignatureBits::new(0).unwrap_err();
        assert_eq!(err.to_string(), "signature width 0 is outside 1..=32 bits");
    }

    #[test]
    fn truncated_add_is_running_sum_mod_2k() {
        let enc = TruncatedAdd::new(SignatureBits::new(6).unwrap());
        let sig = enc.encode_trace(&pcs(&[60, 10]));
        assert_eq!(sig.bits(), (60 + 10) % 64);
    }

    #[test]
    fn truncated_add_start_is_faulting_pc() {
        let enc = TruncatedAdd::new(SignatureBits::BASE);
        assert_eq!(enc.start(Pc::new(0x10f4)).bits(), 0x10f4);
    }

    #[test]
    fn empty_trace_encodes_to_empty() {
        let enc = TruncatedAdd::default();
        assert_eq!(enc.encode_trace(&[]), enc.empty());
    }

    #[test]
    fn repeat_counts_distinguish_traces() {
        // The loop example of Figure 3(c): {PCi, PCj, PCj} must differ from
        // {PCi, PCj} so the predictor can count touches.
        let enc = TruncatedAdd::default();
        let twice = enc.encode_trace(&pcs(&[0x100, 0x104, 0x104]));
        let once = enc.encode_trace(&pcs(&[0x100, 0x104]));
        assert_ne!(twice, once);
    }

    #[test]
    fn truncated_add_is_order_insensitive() {
        let enc = TruncatedAdd::default();
        assert_eq!(
            enc.encode_trace(&pcs(&[1, 2, 3])),
            enc.encode_trace(&pcs(&[3, 2, 1]))
        );
    }

    #[test]
    fn xor_rotate_is_order_sensitive() {
        let enc = XorRotate::default();
        assert_ne!(
            enc.encode_trace(&pcs(&[0x21, 0x412, 0x833])),
            enc.encode_trace(&pcs(&[0x833, 0x412, 0x21]))
        );
    }

    #[test]
    fn narrow_widths_alias_wide_traces() {
        // With 6 bits, two different traces can collide (subtrace aliasing is
        // the Figure 7 accuracy cliff); verify a concrete collision exists.
        let enc = TruncatedAdd::new(SignatureBits::new(6).unwrap());
        let a = enc.encode_trace(&pcs(&[64]));
        let b = enc.encode_trace(&pcs(&[128]));
        assert_eq!(a, b, "64 ≡ 128 (mod 64)");
    }

    #[test]
    fn incremental_matches_batch() {
        let enc = TruncatedAdd::new(SignatureBits::new(13).unwrap());
        let trace = pcs(&[0x4000, 0x4010, 0x4010, 0x4020]);
        let mut sig = enc.start(trace[0]);
        for &pc in &trace[1..] {
            sig = enc.fold(sig, pc);
        }
        assert_eq!(sig, enc.encode_trace(&trace));
    }

    #[test]
    fn signatures_mask_on_construction() {
        let w = SignatureBits::new(8).unwrap();
        assert_eq!(Signature::from_bits(0x1FF, w).bits(), 0xFF);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SignatureBits::BASE.to_string(), "30b");
        let s = Signature::from_bits(0xab, SignatureBits::BASE);
        assert_eq!(s.to_string(), "sig:0xab");
        assert_eq!(format!("{s:x}"), "ab");
    }

    #[test]
    fn json_scalars_render_compactly() {
        assert_eq!(JsonValue::Null.render(), "null");
        assert_eq!(JsonValue::Bool(true).render(), "true");
        assert_eq!(JsonValue::U64(u64::MAX).render(), "18446744073709551615");
        assert_eq!(JsonValue::I64(-3).render(), "-3");
        assert_eq!(JsonValue::F64(2.5).render(), "2.5");
        assert_eq!(JsonValue::F64(0.0).render(), "0");
        assert_eq!(JsonValue::F64(f64::NAN).render(), "null");
        assert_eq!(JsonValue::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn json_strings_escape() {
        assert_eq!(
            JsonValue::Str("a\"b\\c\n\t\u{1}".to_string()).render(),
            "\"a\\\"b\\\\c\\n\\t\\u0001\""
        );
    }

    #[test]
    fn json_objects_preserve_field_order() {
        let doc = JsonObject::new()
            .field("z", 1u64)
            .field("a", 2u64)
            .field("nested", JsonObject::new().field("k", "v").build())
            .build();
        assert_eq!(doc.render(), r#"{"z":1,"a":2,"nested":{"k":"v"}}"#);
        assert_eq!(doc.to_string(), doc.render());
    }

    #[test]
    fn json_arrays_render_in_order() {
        let arr = JsonValue::Array(vec![1u64.into(), JsonValue::Null, "x".into()]);
        assert_eq!(arr.render(), r#"[1,null,"x"]"#);
        assert_eq!(JsonValue::Array(Vec::new()).render(), "[]");
        assert_eq!(JsonObject::new().build().render(), "{}");
    }
}
