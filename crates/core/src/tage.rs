//! A TAGE-style last-touch predictor: tagged tables indexed by
//! geometrically growing touch-history lengths.
//!
//! Adapted from Seznec's TAGE branch predictor family to the last-touch
//! problem. `tables=N` direct-mapped tables are indexed by a hash of
//! (block, last Lᵢ touching PCs) with geometric history lengths
//! Lᵢ ∈ {2, 4, 8, …}; each entry carries a partial tag and a
//! [`TwoBitCounter`]. On a touch, the *provider* is the longest-history
//! table whose entry's tag matches; the predictor fires when the provider's
//! counter is saturated. Training is allocation-on-miss: an external
//! invalidation (a missed last touch) strengthens the provider if one
//! matched, otherwise allocates a fresh tagged entry in the weakest slot
//! available — preferring invalid entries, then weak counters, then shorter
//! histories — and deterministically overwrites on total conflict.
//!
//! Tag aliasing is safe by construction: indices are reduced modulo the
//! table size and training/verdict updates re-compare tags before touching
//! an entry, so colliding blocks can at worst steal each other's entries,
//! never corrupt state (`tests/predict_properties.rs` fuzzes this with
//! deliberately tiny tables).
//!
//! Spec string: `tage[:tables=4][,size=512]`.

use crate::fast_hash::FxHashMap;

use crate::confidence::TwoBitCounter;
use crate::ltp::PredictorConfig;
use crate::ltp::PrematurePenalty;
use crate::offline::PendingFifo;
use crate::policy::{FillKind, SelfInvalidationPolicy, Touch, VerifyOutcome};
use crate::table::StorageStats;
use crate::types::{BlockId, Pc};

/// Default number of tagged tables.
pub const TAGE_DEFAULT_TABLES: usize = 4;
/// Default entries per table.
pub const TAGE_DEFAULT_SIZE: usize = 512;
/// Partial-tag width stored per entry.
const TAG_BITS: usize = 16;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    tag: u16,
    ctr: TwoBitCounter,
}

#[derive(Debug)]
struct Table {
    /// History length Lᵢ this table is indexed with.
    len: usize,
    entries: Vec<Entry>,
}

/// One touch's lookup, snapshotted for later training: per-table (row,
/// tag) plus the provider table, if any.
#[derive(Debug, Clone)]
struct Lookup {
    slots: Vec<(usize, u16)>,
    provider: Option<usize>,
}

/// The TAGE-style predictor (see the module docs).
#[derive(Debug)]
pub struct TagePredictor {
    tables: Vec<Table>,
    config: PredictorConfig,
    /// Per-block recent-PC history, newest last, capped at the longest Lᵢ;
    /// reset on demand fills.
    histories: FxHashMap<u64, Vec<Pc>>,
    /// Per block: the lookup of the most recent touch (the training example
    /// an external invalidation rewards).
    last_lookup: FxHashMap<u64, Lookup>,
    /// Fired lookups awaiting directory verdicts, FIFO per block.
    pending: PendingFifo<Lookup>,
}

impl TagePredictor {
    /// Builds a predictor with `tables` tagged tables (1..=8, history
    /// lengths 2, 4, 8, …) of `size` entries each.
    pub fn new(tables: usize, size: usize, config: PredictorConfig) -> Self {
        let tables = tables.clamp(1, 8);
        let size = size.max(1);
        TagePredictor {
            tables: (0..tables)
                .map(|i| Table {
                    len: 2usize << i,
                    entries: vec![Entry::default(); size],
                })
                .collect(),
            config,
            histories: FxHashMap::default(),
            last_lookup: FxHashMap::default(),
            pending: PendingFifo::new(),
        }
    }

    fn max_len(&self) -> usize {
        self.tables.last().map_or(2, |t| t.len)
    }

    /// FNV-1a with a per-purpose seed over (table id, block, the last `len`
    /// history PCs).
    fn hash(seed: u64, table: usize, block: BlockId, history: &[Pc], len: usize) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        mix(table as u64);
        mix(block.index());
        let start = history.len().saturating_sub(len);
        for pc in &history[start..] {
            mix(u64::from(pc.value()));
        }
        h
    }

    fn lookup(&self, block: BlockId, history: &[Pc]) -> Lookup {
        let mut slots = Vec::with_capacity(self.tables.len());
        let mut provider = None;
        for (i, table) in self.tables.iter().enumerate() {
            let row =
                (Self::hash(0, i, block, history, table.len) % table.entries.len() as u64) as usize;
            let tag = (Self::hash(0x9e37_79b9_7f4a_7c15, i, block, history, table.len)
                >> (64 - TAG_BITS)) as u16;
            let entry = table.entries[row];
            if entry.valid && entry.tag == tag {
                provider = Some(i); // tables iterate shortest→longest; keep last
            }
            slots.push((row, tag));
        }
        Lookup { slots, provider }
    }

    /// Allocates `lookup`'s slot in the weakest candidate: invalid entries
    /// first, then weakest counter, then shortest history — fully
    /// deterministic, overwriting on total conflict.
    fn allocate(&mut self, lookup: &Lookup) {
        let mut best: Option<(usize, u8, bool)> = None; // (table, ctr value, valid)
        for (i, &(row, _tag)) in lookup.slots.iter().enumerate() {
            let entry = self.tables[i].entries[row];
            let key = (entry.valid, entry.ctr.value(), i);
            let better = match best {
                None => true,
                Some((bi, bc, bv)) => key < (bv, bc, bi),
            };
            if better {
                best = Some((i, entry.ctr.value(), entry.valid));
            }
        }
        if let Some((i, _, _)) = best {
            let (row, tag) = lookup.slots[i];
            self.tables[i].entries[row] = Entry {
                valid: true,
                tag,
                ctr: TwoBitCounter::new(self.config.initial_confidence),
            };
        }
    }

    /// Applies `f` to the provider's entry if its tag still matches (it may
    /// have been stolen by an aliasing block since the snapshot).
    fn with_provider(&mut self, lookup: &Lookup, f: impl FnOnce(&mut Entry)) {
        let Some(i) = lookup.provider else { return };
        let (row, tag) = lookup.slots[i];
        let entry = &mut self.tables[i].entries[row];
        if entry.valid && entry.tag == tag {
            f(entry);
        }
    }
}

impl SelfInvalidationPolicy for TagePredictor {
    fn name(&self) -> &'static str {
        "tage"
    }

    fn on_touch(&mut self, touch: Touch) -> bool {
        let max_len = self.max_len();
        let history = self.histories.entry(touch.block.index()).or_default();
        if matches!(touch.fill.map(|f| f.kind), Some(FillKind::Demand)) {
            history.clear();
        }
        history.push(touch.pc);
        let keep = history.len().saturating_sub(max_len);
        if keep > 0 {
            history.drain(..keep);
        }
        let history = history.clone();
        let lookup = self.lookup(touch.block, &history);
        let confident = lookup.provider.is_some_and(|i| {
            let (row, _) = lookup.slots[i];
            self.tables[i].entries[row].ctr.is_saturated()
        });
        let fire = confident && (self.config.self_invalidate_shared || touch.exclusive);
        if fire {
            self.histories.remove(&touch.block.index());
            self.last_lookup.remove(&touch.block.index());
            self.pending.push(touch.block, lookup);
        } else {
            self.last_lookup.insert(touch.block.index(), lookup);
        }
        fire
    }

    fn on_invalidation(&mut self, block: BlockId) {
        self.histories.remove(&block.index());
        let Some(lookup) = self.last_lookup.remove(&block.index()) else {
            return;
        };
        if lookup.provider.is_some() {
            self.with_provider(&lookup, |entry| entry.ctr.strengthen());
        } else {
            self.allocate(&lookup);
        }
    }

    fn on_verification(&mut self, block: BlockId, outcome: VerifyOutcome) {
        let Some(lookup) = self.pending.pop(block) else {
            debug_assert!(false, "verification without a pending prediction");
            return;
        };
        let penalty = self.config.premature_penalty;
        match outcome {
            VerifyOutcome::Correct => {
                self.with_provider(&lookup, |entry| entry.ctr.strengthen());
            }
            VerifyOutcome::Premature => {
                self.with_provider(&lookup, |entry| match penalty {
                    PrematurePenalty::Weaken => entry.ctr.weaken(),
                    PrematurePenalty::Reset => entry.ctr = TwoBitCounter::new(0),
                });
            }
        }
    }

    fn storage(&self) -> StorageStats {
        StorageStats {
            blocks_tracked: self.histories.len() as u64,
            live_entries: self
                .tables
                .iter()
                .flat_map(|t| t.entries.iter())
                .filter(|e| e.valid)
                .count() as u64,
            signature_bits: TAG_BITS as u8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(block: u64, pc: u32, demand: bool) -> Touch {
        Touch {
            block: BlockId::new(block),
            pc: Pc::new(pc),
            is_write: true,
            exclusive: true,
            fill: demand.then_some(crate::policy::FillInfo {
                kind: FillKind::Demand,
                dir_version: 0,
                migratory_upgrade: false,
            }),
        }
    }

    #[test]
    fn learns_a_repeated_trace() {
        let mut t = TagePredictor::new(4, 64, PredictorConfig::default());
        let mut fired = false;
        for _ in 0..4 {
            assert!(!t.on_touch(touch(9, 0x100, true)));
            if t.on_touch(touch(9, 0x104, false)) {
                fired = true;
                t.on_verification(BlockId::new(9), VerifyOutcome::Correct);
            } else {
                t.on_invalidation(BlockId::new(9));
            }
        }
        assert!(fired, "two confirmations saturate the allocated counter");
    }

    #[test]
    fn premature_reset_suppresses() {
        let mut t = TagePredictor::new(2, 64, PredictorConfig::default());
        while !t.on_touch(touch(9, 0x100, true)) {
            t.on_invalidation(BlockId::new(9));
        }
        t.on_verification(BlockId::new(9), VerifyOutcome::Premature);
        // Counter reset: the very next identical touch cannot fire.
        assert!(!t.on_touch(touch(9, 0x100, true)));
    }

    #[test]
    fn tiny_tables_alias_without_panicking() {
        let mut t = TagePredictor::new(3, 2, PredictorConfig::default());
        for b in 0..64u64 {
            t.on_touch(touch(b, 0x100 + b as u32, true));
            t.on_invalidation(BlockId::new(b));
        }
        assert!(t.storage().live_entries <= 3 * 2);
    }
}
