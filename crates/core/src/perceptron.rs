//! A perceptron last-touch predictor (Jiménez & Lin-style, adapted from
//! branch prediction to the last-touch problem).
//!
//! Where the paper's [`crate::TracePredictor`] hashes the whole touch trace
//! into one signature and demands an exact match, the perceptron learns a
//! *weighted vote* over the recent touch history: each of the last `hist`
//! PCs that touched the block (plus a per-block bias) indexes a small
//! weight table, the weights are summed, and the block is self-invalidated
//! when the sum clears a threshold. Training is mistake-driven with
//! saturating arithmetic:
//!
//! * an external invalidation means the preceding touch *was* a last touch
//!   the predictor missed (or under-voted) — weights for that touch's
//!   feature vector are incremented, unless the vote already cleared the
//!   threshold;
//! * a verified-premature self-invalidation means the vote fired on a
//!   non-last touch — the fired feature vector's weights are decremented;
//! * weights clamp at ±(2^(bits−1) − 1) — they saturate, never wrap
//!   (`tests/predict_properties.rs` fuzzes this).
//!
//! Spec string: `perceptron[:bits=8][,hist=4][,size=256][,theta=8]`.

use crate::fast_hash::FxHashMap;

use crate::ltp::PredictorConfig;
use crate::offline::PendingFifo;
use crate::policy::{FillKind, SelfInvalidationPolicy, Touch, VerifyOutcome};
use crate::table::StorageStats;
use crate::types::{BlockId, Pc};

/// Default touch-history depth (feature positions).
pub const PERCEPTRON_DEFAULT_HIST: usize = 4;
/// Default rows per weight table.
pub const PERCEPTRON_DEFAULT_SIZE: usize = 256;
/// Default weight width in bits (weights clamp at ±(2^(bits−1) − 1)).
pub const PERCEPTRON_DEFAULT_BITS: u32 = 8;
/// Default firing threshold.
pub const PERCEPTRON_DEFAULT_THETA: i32 = 8;

/// The perceptron last-touch predictor (see the module docs).
#[derive(Debug)]
pub struct PerceptronPredictor {
    hist: usize,
    size: usize,
    theta: i32,
    weight_max: i32,
    config: PredictorConfig,
    /// One weight table per history position, plus a bias table indexed by
    /// block: `weights[position][row]`.
    weights: Vec<Vec<i32>>,
    bias: Vec<i32>,
    /// Per-block recent-PC history, newest last; reset on demand fills.
    histories: FxHashMap<u64, Vec<Pc>>,
    /// Per block: the feature rows and vote of the most recent touch — the
    /// training example an external invalidation rewards.
    last_vote: FxHashMap<u64, (Vec<usize>, i32)>,
    /// Fired feature vectors awaiting directory verdicts, FIFO per block.
    pending: PendingFifo<(Vec<usize>, i32)>,
}

impl PerceptronPredictor {
    /// Builds a predictor with the given geometry. `bits` ∈ 1..=31 is the
    /// weight width; `hist` the history depth; `size` the rows per table;
    /// `theta` the firing threshold.
    pub fn new(bits: u32, hist: usize, size: usize, theta: i32, config: PredictorConfig) -> Self {
        let bits = bits.clamp(1, 31);
        let hist = hist.max(1);
        let size = size.max(1);
        PerceptronPredictor {
            hist,
            size,
            theta,
            weight_max: (1i32 << (bits - 1)) - 1,
            config,
            weights: vec![vec![0; size]; hist],
            bias: vec![0; size],
            histories: FxHashMap::default(),
            last_vote: FxHashMap::default(),
            pending: PendingFifo::new(),
        }
    }

    /// The largest weight magnitude currently stored — bounded by
    /// ±(2^(bits−1) − 1) at all times (fuzzed in `tests/`).
    pub fn max_abs_weight(&self) -> i32 {
        self.weights
            .iter()
            .flatten()
            .chain(self.bias.iter())
            .map(|w| w.abs())
            .max()
            .unwrap_or(0)
    }

    /// FNV-1a over (position, value), folded into a table row.
    fn row(&self, position: u64, value: u64) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in position
            .to_le_bytes()
            .into_iter()
            .chain(value.to_le_bytes())
        {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h % self.size as u64) as usize
    }

    /// Feature rows under the current history: returned rows index
    /// `weights` position-wise (the per-block bias row is computed
    /// separately). Missing history positions hash a sentinel so short
    /// histories still produce a full vector.
    fn features(&self, history: &[Pc]) -> Vec<usize> {
        (0..self.hist)
            .map(|j| {
                let pc = history
                    .len()
                    .checked_sub(j + 1)
                    .map_or(u64::MAX, |i| u64::from(history[i].value()));
                self.row(j as u64, pc)
            })
            .collect()
    }

    fn vote(&self, block: BlockId, rows: &[usize]) -> i32 {
        let bias_row = self.row(u64::MAX, block.index());
        let mut y = self.bias[bias_row];
        for (j, &row) in rows.iter().enumerate() {
            y += self.weights[j][row];
        }
        y
    }

    /// Saturating train: `delta` = ±1 applied to the bias row and every
    /// feature row, clamped to ±weight_max.
    fn train(&mut self, block: BlockId, rows: &[usize], delta: i32) {
        let max = self.weight_max;
        let bias_row = self.row(u64::MAX, block.index());
        let b = &mut self.bias[bias_row];
        *b = (*b + delta).clamp(-max, max);
        for (j, &row) in rows.iter().enumerate() {
            let w = &mut self.weights[j][row];
            *w = (*w + delta).clamp(-max, max);
        }
    }
}

impl SelfInvalidationPolicy for PerceptronPredictor {
    fn name(&self) -> &'static str {
        "perceptron"
    }

    fn on_touch(&mut self, touch: Touch) -> bool {
        let history = self.histories.entry(touch.block.index()).or_default();
        if matches!(touch.fill.map(|f| f.kind), Some(FillKind::Demand)) {
            // A demand fill starts a fresh residency: the old history
            // belongs to a trace that already ended.
            history.clear();
        }
        history.push(touch.pc);
        let keep = history.len().saturating_sub(self.hist);
        if keep > 0 {
            history.drain(..keep);
        }
        let history = history.clone();
        let rows = self.features(&history);
        let y = self.vote(touch.block, &rows);
        self.last_vote
            .insert(touch.block.index(), (rows.clone(), y));
        let fire = y >= self.theta && (self.config.self_invalidate_shared || touch.exclusive);
        if fire {
            self.histories.remove(&touch.block.index());
            self.pending.push(touch.block, (rows, y));
        }
        fire
    }

    fn on_invalidation(&mut self, block: BlockId) {
        self.histories.remove(&block.index());
        // The touch we last voted on turned out to be a last touch. Reward
        // its features if the vote failed to clear the threshold.
        if let Some((rows, y)) = self.last_vote.remove(&block.index()) {
            if y < self.theta {
                self.train(block, &rows, 1);
            }
        }
    }

    fn on_verification(&mut self, block: BlockId, outcome: VerifyOutcome) {
        let Some((rows, _y)) = self.pending.pop(block) else {
            debug_assert!(false, "verification without a pending prediction");
            return;
        };
        if outcome == VerifyOutcome::Premature {
            self.train(block, &rows, -1);
        }
    }

    fn storage(&self) -> StorageStats {
        StorageStats {
            blocks_tracked: self.histories.len() as u64,
            live_entries: self
                .weights
                .iter()
                .flatten()
                .chain(self.bias.iter())
                .filter(|w| **w != 0)
                .count() as u64,
            signature_bits: (self.weight_max as u64 + 1).ilog2() as u8 + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn touch(block: u64, pc: u32, demand: bool) -> Touch {
        Touch {
            block: BlockId::new(block),
            pc: Pc::new(pc),
            is_write: true,
            exclusive: true,
            fill: demand.then_some(crate::policy::FillInfo {
                kind: FillKind::Demand,
                dir_version: 0,
                migratory_upgrade: false,
            }),
        }
    }

    fn p() -> PerceptronPredictor {
        PerceptronPredictor::new(
            PERCEPTRON_DEFAULT_BITS,
            PERCEPTRON_DEFAULT_HIST,
            PERCEPTRON_DEFAULT_SIZE,
            PERCEPTRON_DEFAULT_THETA,
            PredictorConfig::default(),
        )
    }

    #[test]
    fn learns_a_repeated_last_touch() {
        let mut pred = p();
        let mut fired_round = None;
        for round in 0..20 {
            assert!(!pred.on_touch(touch(5, 0x100, true)));
            assert!(!pred.on_touch(touch(5, 0x104, false)));
            let fire = pred.on_touch(touch(5, 0x108, false));
            if fire {
                fired_round = Some(round);
                pred.on_verification(BlockId::new(5), VerifyOutcome::Correct);
            } else {
                pred.on_invalidation(BlockId::new(5));
            }
        }
        let round = fired_round.expect("perceptron learns the pattern");
        assert!(round >= 1, "cannot fire before any training");
    }

    #[test]
    fn premature_verdicts_untrain() {
        let mut pred = p();
        // Train until it fires...
        while !pred.on_touch(touch(5, 0x100, true)) {
            pred.on_invalidation(BlockId::new(5));
        }
        // ...then punish every fire; it must eventually stop firing.
        let mut stopped = false;
        for _ in 0..64 {
            if pred.on_touch(touch(5, 0x100, true)) {
                pred.on_verification(BlockId::new(5), VerifyOutcome::Premature);
            } else {
                stopped = true;
                break;
            }
        }
        assert!(
            stopped,
            "premature penalties must eventually suppress firing"
        );
    }

    #[test]
    fn weights_saturate() {
        let mut pred = PerceptronPredictor::new(3, 2, 8, 1000, PredictorConfig::default());
        // theta too high to ever fire => every invalidation trains +1.
        for _ in 0..1000 {
            pred.on_touch(touch(1, 0x100, true));
            pred.on_invalidation(BlockId::new(1));
        }
        assert_eq!(pred.max_abs_weight(), 3, "3-bit weights clamp at ±3");
    }
}
