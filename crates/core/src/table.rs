//! Last-touch signature tables — the predictor's second level (paper §3.2).
//!
//! Two organizations are evaluated, mirroring the PAp/PAg split of two-level
//! branch predictors:
//!
//! * [`PerBlockTable`] (PAp-like): a private signature list per memory block.
//!   No interference between blocks, highest accuracy, highest storage.
//! * [`GlobalTable`] (PAg-like): one set-associative table shared by every
//!   block. Common sharing patterns collapse into shared entries (storage ↓),
//!   but a complete trace of one block may be a subtrace of another's,
//!   producing cross-block aliasing (accuracy ↓, Figure 8).
//!
//! Both implement [`LastTouchTable`] and report [`StorageStats`] used to
//! regenerate Table 3.

use crate::fast_hash::FxHashMap;
use std::fmt;

use crate::confidence::TwoBitCounter;
use crate::encode::{Signature, SignatureBits};
use crate::types::BlockId;

/// Result of probing a table with the current trace signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// No entry holds this signature.
    Miss,
    /// An entry matched but its confidence counter is not saturated; the
    /// predictor records the match for deferred (invalidation-time)
    /// resolution instead of firing.
    MatchWeak,
    /// An entry matched with a saturated counter: predict a last touch.
    MatchConfident,
}

impl Probe {
    /// Whether the probe found any entry.
    pub fn is_match(self) -> bool {
        !matches!(self, Probe::Miss)
    }
}

/// Storage accounting for Table 3 of the paper.
///
/// `entries` is the average number of live last-touch signatures per
/// actively-shared block; `overhead_bytes` adds the per-block current
/// signature register and the two-bit counter per entry:
///
/// ```text
/// overhead = entries * (sig_bits + 2)/8  +  sig_bits/8
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StorageStats {
    /// Number of blocks that ever allocated predictor state ("actively
    /// shared" blocks: fetched and eventually invalidated at least once).
    pub blocks_tracked: u64,
    /// Total live signature entries across the table.
    pub live_entries: u64,
    /// Signature width used by the table.
    pub signature_bits: u8,
}

impl StorageStats {
    /// Average entries per actively-shared block (Table 3 "ent").
    pub fn entries_per_block(&self) -> f64 {
        if self.blocks_tracked == 0 {
            0.0
        } else {
            self.live_entries as f64 / self.blocks_tracked as f64
        }
    }

    /// Per-block overhead in bytes (Table 3 "ovh"): signature entries with
    /// their two-bit counters, plus the current-signature register.
    pub fn overhead_bytes_per_block(&self) -> f64 {
        let entry_bits = f64::from(self.signature_bits) + 2.0;
        let current_bits = f64::from(self.signature_bits);
        (self.entries_per_block() * entry_bits + current_bits) / 8.0
    }
}

/// The common interface of both table organizations.
///
/// This trait is sealed in spirit: the two organizations in this module are
/// the ones the paper defines, and `ltp-system` treats predictors as opaque
/// policies, so downstream implementations are not expected.
pub trait LastTouchTable: fmt::Debug + Send {
    /// Probes for `sig` as a last-touch signature of `block`.
    fn probe(&mut self, block: BlockId, sig: Signature) -> Probe;

    /// Records that `sig` terminated a trace for `block`.
    ///
    /// Inserts a fresh entry when absent. When present, strengthens it —
    /// unless `ambiguous` is set (the same signature also matched earlier in
    /// the trace, so firing on it can only ever be premature), in which case
    /// the entry is weakened.
    fn learn(&mut self, block: BlockId, sig: Signature, ambiguous: bool);

    /// Strengthens the entry after a verified-correct self-invalidation.
    fn strengthen(&mut self, block: BlockId, sig: Signature);

    /// Weakens the entry (mid-trace alias discovered at invalidation time).
    fn weaken(&mut self, block: BlockId, sig: Signature);

    /// Resets the entry's confidence to zero (verified-premature
    /// self-invalidation under [`PrematurePenalty::Reset`]).
    ///
    /// [`PrematurePenalty::Reset`]: crate::ltp::PrematurePenalty::Reset
    fn reset(&mut self, block: BlockId, sig: Signature);

    /// Marks `block` as actively shared for storage accounting, regardless
    /// of whether a signature is ever stored for it.
    fn note_block(&mut self, block: BlockId);

    /// Current storage accounting.
    fn storage(&self) -> StorageStats;
}

/// One signature entry with its confidence counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    sig: Signature,
    counter: TwoBitCounter,
}

/// A small fully-associative signature list with LRU replacement.
///
/// Index 0 is least recently used; the end is most recently used.
#[derive(Debug, Clone, Default)]
struct SignatureSet {
    entries: Vec<Entry>,
}

impl SignatureSet {
    fn find(&self, sig: Signature) -> Option<usize> {
        self.entries.iter().position(|e| e.sig == sig)
    }

    fn touch_lru(&mut self, idx: usize) {
        let e = self.entries.remove(idx);
        self.entries.push(e);
    }

    fn probe(&mut self, sig: Signature) -> Probe {
        match self.find(sig) {
            None => Probe::Miss,
            Some(idx) => {
                let confident = self.entries[idx].counter.is_saturated();
                self.touch_lru(idx);
                if confident {
                    Probe::MatchConfident
                } else {
                    Probe::MatchWeak
                }
            }
        }
    }

    fn learn(&mut self, sig: Signature, ambiguous: bool, init: TwoBitCounter, capacity: usize) {
        match self.find(sig) {
            Some(idx) => {
                if ambiguous {
                    self.entries[idx].counter.weaken();
                } else {
                    self.entries[idx].counter.strengthen();
                }
                self.touch_lru(idx);
            }
            None => {
                if self.entries.len() >= capacity {
                    // Evict the least recently used entry.
                    self.entries.remove(0);
                }
                self.entries.push(Entry { sig, counter: init });
            }
        }
    }

    fn strengthen(&mut self, sig: Signature) {
        if let Some(idx) = self.find(sig) {
            self.entries[idx].counter.strengthen();
            self.touch_lru(idx);
        }
    }

    fn weaken(&mut self, sig: Signature) {
        if let Some(idx) = self.find(sig) {
            self.entries[idx].counter.weaken();
        }
    }

    fn reset(&mut self, sig: Signature) {
        if let Some(idx) = self.find(sig) {
            self.entries[idx].counter = TwoBitCounter::new(0);
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// PAp-like organization: a private last-touch signature table per block
/// (paper Figure 4, top).
///
/// # Examples
///
/// ```
/// use ltp_core::{BlockId, PerBlockTable, LastTouchTable, Probe, Signature, SignatureBits};
///
/// let bits = SignatureBits::PER_BLOCK_DEFAULT;
/// let mut table = PerBlockTable::new(bits, 16, 2);
/// let block = BlockId::new(7);
/// let sig = Signature::from_bits(0x1a2, bits);
///
/// assert_eq!(table.probe(block, sig), Probe::Miss);
/// table.learn(block, sig, false); // counter = 2 (init)
/// assert_eq!(table.probe(block, sig), Probe::MatchWeak);
/// table.learn(block, sig, false); // counter = 3
/// assert_eq!(table.probe(block, sig), Probe::MatchConfident);
/// ```
#[derive(Debug, Clone)]
pub struct PerBlockTable {
    tables: FxHashMap<BlockId, SignatureSet>,
    bits: SignatureBits,
    capacity: usize,
    init: TwoBitCounter,
}

impl PerBlockTable {
    /// Creates a per-block table.
    ///
    /// * `bits` — signature width (13 is the paper's sweet spot).
    /// * `capacity` — maximum signatures retained per block (LRU beyond it).
    /// * `initial_confidence` — counter value for fresh entries (the default
    ///   predictor uses 2: one confirmation saturates).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(bits: SignatureBits, capacity: usize, initial_confidence: u8) -> Self {
        assert!(capacity > 0, "per-block table capacity must be nonzero");
        PerBlockTable {
            tables: FxHashMap::default(),
            bits,
            capacity,
            init: TwoBitCounter::new(initial_confidence),
        }
    }

    /// Number of signatures currently stored for `block`.
    pub fn entries_for(&self, block: BlockId) -> usize {
        self.tables.get(&block).map_or(0, SignatureSet::len)
    }
}

impl LastTouchTable for PerBlockTable {
    fn probe(&mut self, block: BlockId, sig: Signature) -> Probe {
        self.tables
            .get_mut(&block)
            .map_or(Probe::Miss, |t| t.probe(sig))
    }

    fn learn(&mut self, block: BlockId, sig: Signature, ambiguous: bool) {
        let init = self.init;
        let cap = self.capacity;
        self.tables
            .entry(block)
            .or_default()
            .learn(sig, ambiguous, init, cap);
    }

    fn strengthen(&mut self, block: BlockId, sig: Signature) {
        if let Some(t) = self.tables.get_mut(&block) {
            t.strengthen(sig);
        }
    }

    fn weaken(&mut self, block: BlockId, sig: Signature) {
        if let Some(t) = self.tables.get_mut(&block) {
            t.weaken(sig);
        }
    }

    fn reset(&mut self, block: BlockId, sig: Signature) {
        if let Some(t) = self.tables.get_mut(&block) {
            t.reset(sig);
        }
    }

    fn note_block(&mut self, block: BlockId) {
        self.tables.entry(block).or_default();
    }

    fn storage(&self) -> StorageStats {
        StorageStats {
            blocks_tracked: self.tables.len() as u64,
            live_entries: self.tables.values().map(|t| t.len() as u64).sum(),
            signature_bits: self.bits.get(),
        }
    }
}

/// PAg-like organization: one global, set-associative last-touch signature
/// table shared by all blocks (paper Figure 4, bottom).
///
/// Entries are tagged by signature alone — that is the point (and the flaw):
/// blocks sharing a code path share entries, so storage shrinks, but one
/// block's complete trace aliases another's subtrace (Figure 8).
///
/// # Examples
///
/// ```
/// use ltp_core::{BlockId, GlobalTable, LastTouchTable, Probe, Signature, SignatureBits};
///
/// let bits = SignatureBits::BASE; // global tables need the full 30 bits
/// let mut table = GlobalTable::new(bits, 1024, 4, 2);
/// let sig = Signature::from_bits(0xbeef, bits);
///
/// table.learn(BlockId::new(1), sig, false);
/// table.learn(BlockId::new(1), sig, false);
/// // Block 2 never learned anything, yet the shared entry matches:
/// assert_eq!(table.probe(BlockId::new(2), sig), Probe::MatchConfident);
/// ```
#[derive(Debug, Clone)]
pub struct GlobalTable {
    sets: Vec<SignatureSet>,
    bits: SignatureBits,
    ways: usize,
    init: TwoBitCounter,
    blocks_tracked: std::collections::HashSet<BlockId>,
}

impl GlobalTable {
    /// Creates a global table with `sets` sets of `ways` entries.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(bits: SignatureBits, sets: usize, ways: usize, initial_confidence: u8) -> Self {
        assert!(sets > 0, "global table needs at least one set");
        assert!(ways > 0, "global table needs at least one way");
        GlobalTable {
            sets: vec![SignatureSet::default(); sets],
            bits,
            ways,
            init: TwoBitCounter::new(initial_confidence),
            blocks_tracked: std::collections::HashSet::new(),
        }
    }

    fn set_for(&mut self, sig: Signature) -> &mut SignatureSet {
        let idx = (sig.bits() as usize) % self.sets.len();
        &mut self.sets[idx]
    }
}

impl LastTouchTable for GlobalTable {
    fn probe(&mut self, _block: BlockId, sig: Signature) -> Probe {
        self.set_for(sig).probe(sig)
    }

    fn learn(&mut self, block: BlockId, sig: Signature, ambiguous: bool) {
        self.blocks_tracked.insert(block);
        let init = self.init;
        let ways = self.ways;
        self.set_for(sig).learn(sig, ambiguous, init, ways);
    }

    fn strengthen(&mut self, _block: BlockId, sig: Signature) {
        self.set_for(sig).strengthen(sig);
    }

    fn weaken(&mut self, _block: BlockId, sig: Signature) {
        self.set_for(sig).weaken(sig);
    }

    fn reset(&mut self, _block: BlockId, sig: Signature) {
        self.set_for(sig).reset(sig);
    }

    fn note_block(&mut self, block: BlockId) {
        self.blocks_tracked.insert(block);
    }

    fn storage(&self) -> StorageStats {
        StorageStats {
            blocks_tracked: self.blocks_tracked.len() as u64,
            live_entries: self.sets.iter().map(|s| s.len() as u64).sum(),
            signature_bits: self.bits.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(v: u32) -> Signature {
        Signature::from_bits(v, SignatureBits::BASE)
    }

    fn block(i: u64) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn per_block_miss_then_learn_then_confident() {
        let mut t = PerBlockTable::new(SignatureBits::BASE, 8, 2);
        assert_eq!(t.probe(block(0), sig(5)), Probe::Miss);
        t.learn(block(0), sig(5), false);
        assert_eq!(t.probe(block(0), sig(5)), Probe::MatchWeak);
        t.learn(block(0), sig(5), false);
        assert_eq!(t.probe(block(0), sig(5)), Probe::MatchConfident);
    }

    #[test]
    fn per_block_tables_are_isolated() {
        let mut t = PerBlockTable::new(SignatureBits::BASE, 8, 3);
        t.learn(block(0), sig(5), false);
        assert_eq!(t.probe(block(1), sig(5)), Probe::Miss);
    }

    #[test]
    fn ambiguous_learn_weakens() {
        let mut t = PerBlockTable::new(SignatureBits::BASE, 8, 3);
        t.learn(block(0), sig(5), false); // insert at 3
        assert_eq!(t.probe(block(0), sig(5)), Probe::MatchConfident);
        t.learn(block(0), sig(5), true); // ambiguous → weaken
        assert_eq!(t.probe(block(0), sig(5)), Probe::MatchWeak);
    }

    #[test]
    fn reset_silences_entry() {
        let mut t = PerBlockTable::new(SignatureBits::BASE, 8, 3);
        t.learn(block(0), sig(5), false);
        t.reset(block(0), sig(5));
        assert_eq!(t.probe(block(0), sig(5)), Probe::MatchWeak);
        // Needs three confirmations again.
        t.learn(block(0), sig(5), false);
        t.learn(block(0), sig(5), false);
        assert_eq!(t.probe(block(0), sig(5)), Probe::MatchWeak);
        t.learn(block(0), sig(5), false);
        assert_eq!(t.probe(block(0), sig(5)), Probe::MatchConfident);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut t = PerBlockTable::new(SignatureBits::BASE, 2, 2);
        t.learn(block(0), sig(1), false);
        t.learn(block(0), sig(2), false);
        // Touch sig(1) so sig(2) becomes LRU.
        assert_eq!(t.probe(block(0), sig(1)), Probe::MatchWeak);
        t.learn(block(0), sig(3), false); // evicts sig(2)
        assert_eq!(t.probe(block(0), sig(2)), Probe::Miss);
        assert_eq!(t.probe(block(0), sig(1)), Probe::MatchWeak);
        assert_eq!(t.probe(block(0), sig(3)), Probe::MatchWeak);
        assert_eq!(t.entries_for(block(0)), 2);
    }

    #[test]
    fn weaken_and_strengthen_on_missing_entry_are_noops() {
        let mut t = PerBlockTable::new(SignatureBits::BASE, 4, 2);
        t.weaken(block(0), sig(9));
        t.strengthen(block(0), sig(9));
        t.reset(block(0), sig(9));
        assert_eq!(t.probe(block(0), sig(9)), Probe::Miss);
    }

    #[test]
    fn per_block_storage_counts() {
        let mut t = PerBlockTable::new(SignatureBits::new(13).unwrap(), 8, 2);
        t.note_block(block(0));
        t.learn(block(1), sig(1), false);
        t.learn(block(1), sig(2), false);
        t.learn(block(2), sig(1), false);
        let s = t.storage();
        assert_eq!(s.blocks_tracked, 3);
        assert_eq!(s.live_entries, 3);
        assert!((s.entries_per_block() - 1.0).abs() < 1e-9);
        // 1.0 * 15 bits + 13 bits = 28 bits = 3.5 bytes.
        assert!((s.overhead_bytes_per_block() - 3.5).abs() < 1e-9);
    }

    #[test]
    fn global_table_shares_entries_across_blocks() {
        let mut t = GlobalTable::new(SignatureBits::BASE, 64, 4, 2);
        t.learn(block(1), sig(42), false);
        t.learn(block(2), sig(42), false); // strengthens the shared entry
        assert_eq!(t.probe(block(3), sig(42)), Probe::MatchConfident);
        let s = t.storage();
        assert_eq!(s.blocks_tracked, 2);
        assert_eq!(s.live_entries, 1);
    }

    #[test]
    fn global_table_set_conflict_eviction() {
        // One set, one way: every new signature evicts the previous one.
        let mut t = GlobalTable::new(SignatureBits::BASE, 1, 1, 2);
        t.learn(block(0), sig(1), false);
        t.learn(block(0), sig(2), false);
        assert_eq!(t.probe(block(0), sig(1)), Probe::Miss);
        assert_eq!(t.probe(block(0), sig(2)), Probe::MatchWeak);
    }

    #[test]
    fn global_storage_overhead_formula() {
        let mut t = GlobalTable::new(SignatureBits::BASE, 64, 4, 2);
        t.learn(block(1), sig(7), false);
        t.note_block(block(2));
        let s = t.storage();
        assert_eq!(s.blocks_tracked, 2);
        assert_eq!(s.live_entries, 1);
        // 0.5 entries/block * 32 bits + 30 bits = 46 bits = 5.75 bytes.
        assert!((s.overhead_bytes_per_block() - 5.75).abs() < 1e-9);
    }

    #[test]
    fn probe_is_match_helper() {
        assert!(!Probe::Miss.is_match());
        assert!(Probe::MatchWeak.is_match());
        assert!(Probe::MatchConfident.is_match());
    }

    #[test]
    #[should_panic(expected = "capacity must be nonzero")]
    fn per_block_zero_capacity_panics() {
        PerBlockTable::new(SignatureBits::BASE, 0, 2);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn global_zero_sets_panics() {
        GlobalTable::new(SignatureBits::BASE, 0, 1, 2);
    }
}
