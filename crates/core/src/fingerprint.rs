//! Stable content fingerprints for experiment specs and campaign stores.
//!
//! A [`Fingerprint`] is a 128-bit FNV-1a hash with a fixed, documented byte
//! discipline: the same canonical description always produces the same
//! fingerprint, across processes, platforms, and releases of this crate
//! (the algorithm is part of the campaign-store on-disk format and must
//! never change silently — bump the store format version instead).
//!
//! This is *not* [`crate::fast_hash`]: Fx hashes are an in-memory
//! performance tool with no stability contract, while fingerprints are
//! persisted on disk as resume keys. Collision resistance at 128 bits is
//! ample for campaign-scale catalogs (billions of runs stay far below the
//! birthday bound); fingerprints are content keys, not cryptographic
//! commitments.
//!
//! # Examples
//!
//! ```
//! use ltp_core::Fingerprint;
//!
//! let a = Fingerprint::of_str("bench:em3d|nodes:32");
//! let b = Fingerprint::of_str("bench:em3d|nodes:32");
//! let c = Fingerprint::of_str("bench:em3d|nodes:64");
//! assert_eq!(a, b, "fingerprints are pure functions of content");
//! assert_ne!(a, c);
//!
//! let hex = a.to_string();
//! assert_eq!(hex.len(), 32);
//! assert_eq!(hex.parse::<Fingerprint>().unwrap(), a, "hex round-trips");
//! ```

use std::fmt;
use std::str::FromStr;

/// FNV-1a 128-bit offset basis.
const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
/// FNV-1a 128-bit prime.
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A stable 128-bit content hash (FNV-1a over a canonical byte string).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(u128);

impl Fingerprint {
    /// Fingerprints one byte string.
    pub fn of(bytes: &[u8]) -> Self {
        let mut h = FingerprintHasher::new();
        h.update(bytes);
        h.finish()
    }

    /// Fingerprints one UTF-8 string.
    pub fn of_str(s: &str) -> Self {
        Fingerprint::of(s.as_bytes())
    }

    /// The raw 128-bit value.
    pub fn as_u128(self) -> u128 {
        self.0
    }
}

impl fmt::Display for Fingerprint {
    /// Renders as 32 lowercase hex digits (fixed width, zero padded).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A [`Fingerprint`] hex string failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FingerprintParseError(String);

impl fmt::Display for FingerprintParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid fingerprint `{}` (want 32 hex digits)", self.0)
    }
}

impl std::error::Error for FingerprintParseError {}

impl FromStr for Fingerprint {
    type Err = FingerprintParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.len() != 32 {
            return Err(FingerprintParseError(s.to_string()));
        }
        u128::from_str_radix(s, 16)
            .map(Fingerprint)
            .map_err(|_| FingerprintParseError(s.to_string()))
    }
}

/// Incremental [`Fingerprint`] builder.
///
/// Every `update` is length-prefixed (varint byte count before the bytes),
/// so field boundaries are part of the hash: `update("ab"); update("c")`
/// and `update("a"); update("bc")` produce *different* fingerprints, which
/// keeps composed canonical descriptors unambiguous without manual
/// separator discipline.
#[derive(Debug, Clone)]
pub struct FingerprintHasher {
    state: u128,
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        FingerprintHasher::new()
    }
}

impl FingerprintHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        FingerprintHasher { state: FNV_OFFSET }
    }

    fn absorb(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs one length-prefixed field.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut len = bytes.len() as u64;
        loop {
            let byte = (len & 0x7f) as u8;
            len >>= 7;
            if len == 0 {
                self.absorb(&[byte]);
                break;
            }
            self.absorb(&[byte | 0x80]);
        }
        self.absorb(bytes);
    }

    /// Absorbs one string field (length-prefixed UTF-8 bytes).
    pub fn update_str(&mut self, s: &str) {
        self.update(s.as_bytes());
    }

    /// Absorbs one integer field (length-prefixed decimal rendering, so the
    /// value hashes identically however the caller's integer is typed).
    pub fn update_u64(&mut self, v: u64) {
        let mut buf = [0u8; 20];
        let mut i = buf.len();
        let mut v = v;
        loop {
            i -= 1;
            buf[i] = b'0' + (v % 10) as u8;
            v /= 10;
            if v == 0 {
                break;
            }
        }
        self.update(&buf[i..]);
    }

    /// Finishes the hash.
    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector_is_stable_across_releases() {
        // FNV-1a 128 of a single length-prefixed "a" field; pinned so any
        // accidental change to the algorithm (which would orphan every
        // persisted campaign store) fails loudly here.
        let mut h = FingerprintHasher::new();
        h.update_str("a");
        assert_eq!(h.finish().to_string(), "08809458baab1be95aa0733055258e87");
    }

    #[test]
    fn field_boundaries_are_part_of_the_hash() {
        let mut ab_c = FingerprintHasher::new();
        ab_c.update_str("ab");
        ab_c.update_str("c");
        let mut a_bc = FingerprintHasher::new();
        a_bc.update_str("a");
        a_bc.update_str("bc");
        assert_ne!(ab_c.finish(), a_bc.finish());
    }

    #[test]
    fn numbers_hash_by_value_not_width() {
        let mut a = FingerprintHasher::new();
        a.update_u64(32);
        let mut b = FingerprintHasher::new();
        b.update_str("32");
        assert_eq!(a.finish(), b.finish(), "decimal rendering is canonical");
    }

    #[test]
    fn hex_round_trips_and_rejects_junk() {
        let fp = Fingerprint::of_str("x");
        let hex = fp.to_string();
        assert_eq!(hex.parse::<Fingerprint>().unwrap(), fp);
        assert!("zz".parse::<Fingerprint>().is_err());
        assert!("1234".parse::<Fingerprint>().is_err(), "width is fixed");
        assert!(format!("{hex}0").parse::<Fingerprint>().is_err());
    }

    #[test]
    fn zero_padding_keeps_width_fixed() {
        // Find no special case: even tiny values render at full width.
        let fp = Fingerprint(0x1234);
        assert_eq!(fp.to_string().len(), 32);
        assert!(fp.to_string().starts_with("0000"));
    }
}
