//! Dynamic Self-Invalidation (Lebeck & Wood, ISCA 1995) — the paper's
//! baseline (§2.1).
//!
//! DSI answers "which blocks?" with a *versioning* protocol and "when?" with
//! a *synchronization-boundary* heuristic:
//!
//! * The directory keeps a write-version number per block, incremented each
//!   time a new writer is granted exclusive access. Every fill reply carries
//!   the current version. A cacher remembers the version of its previous
//!   copy; if a refetched block's version differs, the block is being
//!   actively read *and* written by different processors → mark it a
//!   self-invalidation **candidate**.
//! * Blocks fetched by an exclusive request while the requester held the
//!   only read-only copy (the *migratory* pattern) are deliberately **not**
//!   selected — Lebeck & Wood found such candidates cause frequent premature
//!   self-invalidation (paper §5.1, tomcatv/unstructured discussion).
//! * At every synchronization boundary (lock acquire/release, barrier), all
//!   cached candidates self-invalidate at once — the burst that inflates
//!   directory queueing in Table 4.
//!
//! DSI has no confidence mechanism: verification outcomes are ignored, which
//! is why its premature rate (Figure 6) stays high.

use std::collections::{HashMap, HashSet};

use crate::policy::{FillKind, SelfInvalidationPolicy, SyncKind, Touch, VerifyOutcome};
use crate::types::BlockId;

/// The Dynamic Self-Invalidation policy.
///
/// # Examples
///
/// ```
/// use ltp_core::{BlockId, DsiPolicy, FillInfo, FillKind, Pc, SelfInvalidationPolicy, SyncKind, Touch};
///
/// let mut dsi = DsiPolicy::new();
/// let fill = |version| Touch {
///     block: BlockId::new(1),
///     pc: Pc::new(0x10),
///     is_write: false,
///     exclusive: false,
///     fill: Some(FillInfo { kind: FillKind::Demand, dir_version: version, migratory_upgrade: false }),
/// };
/// // First fetch: version 3 remembered, no candidate yet.
/// dsi.on_touch(fill(3));
/// dsi.on_invalidation(BlockId::new(1));
/// // Refetch with a changed version: actively shared → candidate.
/// dsi.on_touch(fill(5));
/// assert_eq!(dsi.on_sync(SyncKind::Barrier), vec![BlockId::new(1)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DsiPolicy {
    /// Version of the copy this node last held, per block.
    remembered_version: HashMap<BlockId, u32>,
    /// Blocks currently cached whose fetch marked them candidates.
    candidates: HashSet<BlockId>,
    /// Blocks currently cached (candidates must still be cached to flush).
    cached: HashSet<BlockId>,
    flushed_total: u64,
}

impl DsiPolicy {
    /// Creates a DSI policy with empty version memory.
    pub fn new() -> Self {
        DsiPolicy::default()
    }

    /// Number of blocks flushed at synchronization boundaries so far.
    pub fn flushed_total(&self) -> u64 {
        self.flushed_total
    }

    /// Whether `block` is currently a self-invalidation candidate.
    pub fn is_candidate(&self, block: BlockId) -> bool {
        self.candidates.contains(&block)
    }
}

impl SelfInvalidationPolicy for DsiPolicy {
    fn name(&self) -> &'static str {
        "dsi"
    }

    fn on_touch(&mut self, touch: Touch) -> bool {
        let Some(fill) = touch.fill else {
            return false; // ordinary hit: DSI only reacts to protocol events
        };
        match fill.kind {
            FillKind::Demand => {
                self.cached.insert(touch.block);
                let candidate = match self.remembered_version.get(&touch.block) {
                    // "If the version numbers are different, the block is
                    // actively shared and is therefore selected."
                    Some(&prev) => prev != fill.dir_version,
                    None => false, // first-ever fetch: no history
                };
                if candidate && !fill.migratory_upgrade {
                    self.candidates.insert(touch.block);
                } else {
                    self.candidates.remove(&touch.block);
                }
                self.remembered_version
                    .insert(touch.block, fill.dir_version);
            }
            FillKind::Upgrade => {
                self.remembered_version
                    .insert(touch.block, fill.dir_version);
                if fill.migratory_upgrade {
                    // Exclusive request while holding the only read-only
                    // copy: migratory; deselect.
                    self.candidates.remove(&touch.block);
                }
            }
        }
        false // DSI never self-invalidates on a touch
    }

    fn on_invalidation(&mut self, block: BlockId) {
        self.cached.remove(&block);
        self.candidates.remove(&block);
    }

    fn on_sync(&mut self, _kind: SyncKind) -> Vec<BlockId> {
        // Flush every cached candidate at once — the characteristic burst.
        let mut flush: Vec<BlockId> = self.candidates.iter().copied().collect();
        flush.sort_unstable(); // deterministic order
        for b in &flush {
            self.cached.remove(b);
        }
        self.candidates.clear();
        self.flushed_total += flush.len() as u64;
        flush
    }

    fn on_verification(&mut self, _block: BlockId, _outcome: VerifyOutcome) {
        // DSI is a heuristic without feedback; outcomes are ignored.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FillInfo;
    use crate::types::Pc;

    fn demand(block: u64, version: u32, migratory: bool) -> Touch {
        Touch {
            block: BlockId::new(block),
            pc: Pc::new(0x10),
            is_write: false,
            exclusive: false,
            fill: Some(FillInfo {
                kind: FillKind::Demand,
                dir_version: version,
                migratory_upgrade: migratory,
            }),
        }
    }

    fn upgrade(block: u64, version: u32, migratory: bool) -> Touch {
        Touch {
            block: BlockId::new(block),
            pc: Pc::new(0x14),
            is_write: true,
            exclusive: true,
            fill: Some(FillInfo {
                kind: FillKind::Upgrade,
                dir_version: version,
                migratory_upgrade: migratory,
            }),
        }
    }

    #[test]
    fn first_fetch_is_never_a_candidate() {
        let mut dsi = DsiPolicy::new();
        dsi.on_touch(demand(1, 7, false));
        assert!(!dsi.is_candidate(BlockId::new(1)));
        assert!(dsi.on_sync(SyncKind::Barrier).is_empty());
    }

    #[test]
    fn version_change_selects_candidate() {
        let mut dsi = DsiPolicy::new();
        dsi.on_touch(demand(1, 1, false));
        dsi.on_invalidation(BlockId::new(1));
        dsi.on_touch(demand(1, 2, false));
        assert!(dsi.is_candidate(BlockId::new(1)));
        assert_eq!(dsi.on_sync(SyncKind::LockRelease), vec![BlockId::new(1)]);
        assert_eq!(dsi.flushed_total(), 1);
        // Flushed: a second sync has nothing left.
        assert!(dsi.on_sync(SyncKind::LockRelease).is_empty());
    }

    #[test]
    fn unchanged_version_deselects() {
        let mut dsi = DsiPolicy::new();
        dsi.on_touch(demand(1, 4, false));
        dsi.on_invalidation(BlockId::new(1));
        dsi.on_touch(demand(1, 4, false));
        assert!(!dsi.is_candidate(BlockId::new(1)));
    }

    #[test]
    fn migratory_blocks_are_excluded() {
        let mut dsi = DsiPolicy::new();
        dsi.on_touch(demand(1, 1, false));
        dsi.on_invalidation(BlockId::new(1));
        // Version changed but the fetch is migratory: skip.
        dsi.on_touch(demand(1, 2, true));
        assert!(!dsi.is_candidate(BlockId::new(1)));
    }

    #[test]
    fn migratory_upgrade_deselects_candidate() {
        let mut dsi = DsiPolicy::new();
        dsi.on_touch(demand(1, 1, false));
        dsi.on_invalidation(BlockId::new(1));
        dsi.on_touch(demand(1, 2, false));
        assert!(dsi.is_candidate(BlockId::new(1)));
        dsi.on_touch(upgrade(1, 3, true));
        assert!(!dsi.is_candidate(BlockId::new(1)));
    }

    #[test]
    fn invalidation_removes_candidacy() {
        let mut dsi = DsiPolicy::new();
        dsi.on_touch(demand(1, 1, false));
        dsi.on_invalidation(BlockId::new(1));
        dsi.on_touch(demand(1, 2, false));
        dsi.on_invalidation(BlockId::new(1));
        assert!(dsi.on_sync(SyncKind::Barrier).is_empty());
    }

    #[test]
    fn sync_flush_is_sorted_and_bulk() {
        let mut dsi = DsiPolicy::new();
        for b in [5u64, 3, 9] {
            dsi.on_touch(demand(b, 1, false));
            dsi.on_invalidation(BlockId::new(b));
            dsi.on_touch(demand(b, 2, false));
        }
        let flushed = dsi.on_sync(SyncKind::Barrier);
        assert_eq!(
            flushed,
            vec![BlockId::new(3), BlockId::new(5), BlockId::new(9)]
        );
    }

    #[test]
    fn name_and_storage_defaults() {
        let dsi = DsiPolicy::new();
        assert_eq!(dsi.name(), "dsi");
        assert_eq!(dsi.storage().live_entries, 0);
    }
}
