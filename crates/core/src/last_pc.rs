//! The Last-PC predictor (paper §5.1's strawman).
//!
//! "Last-PC uses the same two-level organization as an LTP but maintains a
//! list of last PCs prior to invalidation rather than a trace signature."
//!
//! Implemented as a [`TracePredictor`] whose encoder is degenerate: the
//! "signature" is simply the most recent touching PC, so the second-level
//! table stores the set of PCs that have terminated traces. The shared
//! machinery then gives Last-PC exactly the confidence filtering the paper
//! describes — which is why its *misprediction* rate stays low (~2%) even
//! though instruction reuse caps its *coverage* at ~41%.

use crate::encode::{Signature, SignatureBits, SignatureEncoder};
use crate::ltp::{PredictorConfig, TracePredictor};
use crate::table::PerBlockTable;
use crate::types::Pc;

/// Degenerate encoder whose running "signature" is just the last touching
/// PC.
///
/// # Examples
///
/// ```
/// use ltp_core::{LastPcEncoder, Pc, SignatureEncoder};
///
/// let enc = LastPcEncoder::default();
/// let sig = enc.encode_trace(&[Pc::new(0x10), Pc::new(0x20), Pc::new(0x30)]);
/// assert_eq!(sig, enc.start(Pc::new(0x30)), "history is forgotten");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LastPcEncoder;

impl SignatureEncoder for LastPcEncoder {
    fn start(&self, pc: Pc) -> Signature {
        Signature::from_bits(pc.value(), self.width())
    }

    fn fold(&self, _current: Signature, pc: Pc) -> Signature {
        self.start(pc)
    }

    fn width(&self) -> SignatureBits {
        // A full PC: the paper's "minimum number of bits to identify a
        // single PC" is 30.
        SignatureBits::BASE
    }
}

/// The Last-PC predictor: per-block tables of last-touch PCs.
pub type LastPc = TracePredictor<LastPcEncoder, PerBlockTable>;

impl LastPc {
    /// Creates a Last-PC predictor.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltp_core::{LastPc, PredictorConfig, SelfInvalidationPolicy};
    ///
    /// let p = LastPc::with_config(16, PredictorConfig::default());
    /// assert_eq!(p.name(), "last-pc");
    /// ```
    pub fn with_config(capacity_per_block: usize, config: PredictorConfig) -> Self {
        TracePredictor::with_parts(
            LastPcEncoder,
            PerBlockTable::new(
                LastPcEncoder.width(),
                capacity_per_block,
                config.initial_confidence,
            ),
            config,
            "last-pc",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{FillInfo, FillKind, SelfInvalidationPolicy, Touch};
    use crate::types::BlockId;

    fn touch(block: u64, pc: u32, fill: bool) -> Touch {
        Touch {
            block: BlockId::new(block),
            pc: Pc::new(pc),
            is_write: false,
            exclusive: false,
            fill: fill.then_some(FillInfo {
                kind: FillKind::Demand,
                dir_version: 0,
                migratory_upgrade: false,
            }),
        }
    }

    fn run_trace(p: &mut LastPc, block: u64, pcs: &[u32]) -> Option<usize> {
        let mut fired = None;
        for (i, &pc) in pcs.iter().enumerate() {
            if p.on_touch(touch(block, pc, i == 0)) {
                fired = Some(i);
                break;
            }
        }
        if fired.is_none() {
            p.on_invalidation(BlockId::new(block));
        }
        fired
    }

    #[test]
    fn distinct_last_pc_predicts_fine() {
        // Figure 3(a): a streamlined code with a unique last-touch PC is the
        // case Last-PC handles.
        let mut p = LastPc::with_config(16, PredictorConfig::default());
        let trace = [0x100, 0x104, 0x108];
        run_trace(&mut p, 1, &trace);
        run_trace(&mut p, 1, &trace);
        assert_eq!(run_trace(&mut p, 1, &trace), Some(2));
    }

    #[test]
    fn repeated_pc_in_loop_defeats_last_pc() {
        // Figure 3(c): PCj touches the block twice. The PC "signature" at
        // the first occurrence equals the one at the last, so the entry is
        // ambiguous and must never arm — coverage loss, not mispredictions.
        let mut p = LastPc::with_config(16, PredictorConfig::default());
        let trace = [0x100, 0x200, 0x200];
        for _ in 0..8 {
            assert_eq!(run_trace(&mut p, 2, &trace), None);
        }
        assert_eq!(p.fired_total(), 0);
    }

    #[test]
    fn procedure_reuse_defeats_last_pc_but_not_ltp() {
        // Figure 3(b): foo() is called twice; PCj is the last touch only in
        // the second call. Last-PC sees PCj twice → ambiguous → quiet.
        // (The companion LTP test in ltp.rs shows the trace signature
        // distinguishes the two calls.)
        let mut p = LastPc::with_config(16, PredictorConfig::default());
        let trace = [0x100, 0x200, 0x200]; // PCi, then PCj in each call
        for _ in 0..5 {
            assert_eq!(run_trace(&mut p, 3, &trace), None);
        }
    }

    #[test]
    fn encoder_width_is_thirty_bits() {
        assert_eq!(LastPcEncoder.width(), SignatureBits::BASE);
    }
}
