//! Two-bit saturating confidence counters (paper §4).
//!
//! "To estimate confidence for a predicted signature, we simply associate
//! two-bit saturating counters with each last-touch signature. The two-bit
//! counters are widely used as an effective mechanism to filter low-accuracy
//! predictions."
//!
//! A signature entry only *fires* (triggers speculative self-invalidation)
//! when its counter is saturated; entries under training or entries whose
//! predictions were recently verified wrong fall back to learning mode, and
//! the corresponding invalidations are reported as "not predicted" rather
//! than risked as premature self-invalidations.

use std::fmt;

/// A two-bit saturating counter in `0..=3`.
///
/// # Examples
///
/// ```
/// use ltp_core::TwoBitCounter;
///
/// let mut c = TwoBitCounter::new(2);
/// assert!(!c.is_saturated());
/// c.strengthen();
/// assert!(c.is_saturated());
/// c.weaken();
/// c.weaken();
/// assert_eq!(c.value(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TwoBitCounter(u8);

impl TwoBitCounter {
    /// The maximum (saturated) value.
    pub const MAX: u8 = 3;

    /// Creates a counter at `initial`, clamped to `0..=3`.
    pub fn new(initial: u8) -> Self {
        TwoBitCounter(initial.min(Self::MAX))
    }

    /// The current value in `0..=3`.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Whether the counter is saturated (the fire condition).
    #[inline]
    pub const fn is_saturated(self) -> bool {
        self.0 == Self::MAX
    }

    /// Increments, saturating at 3. Called when the entry's prediction is
    /// verified correct or its signature again terminates a trace.
    #[inline]
    pub fn strengthen(&mut self) {
        if self.0 < Self::MAX {
            self.0 += 1;
        }
    }

    /// Decrements, saturating at 0. Called when the entry's prediction is
    /// verified premature or its signature matched mid-trace (subtrace
    /// aliasing).
    #[inline]
    pub fn weaken(&mut self) {
        self.0 = self.0.saturating_sub(1);
    }
}

impl Default for TwoBitCounter {
    /// Defaults to 0 (untrained).
    fn default() -> Self {
        TwoBitCounter(0)
    }
}

impl fmt::Display for TwoBitCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/3", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_on_construction() {
        assert_eq!(TwoBitCounter::new(200).value(), 3);
        assert_eq!(TwoBitCounter::new(0).value(), 0);
    }

    #[test]
    fn strengthen_saturates() {
        let mut c = TwoBitCounter::new(3);
        c.strengthen();
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated());
    }

    #[test]
    fn weaken_saturates_at_zero() {
        let mut c = TwoBitCounter::new(0);
        c.weaken();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn typical_training_sequence() {
        // A fresh entry must be confirmed before it fires.
        let mut c = TwoBitCounter::new(2);
        assert!(!c.is_saturated());
        c.strengthen();
        assert!(c.is_saturated());
        // One bad outcome silences it again.
        c.weaken();
        assert!(!c.is_saturated());
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(TwoBitCounter::new(1).to_string(), "1/3");
    }
}
