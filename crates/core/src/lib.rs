//! # `ltp-core` — Last-Touch Predictors
//!
//! The primary contribution of Lai & Falsafi, *"Selective, Accurate, and
//! Timely Self-Invalidation Using Last-Touch Prediction"* (ISCA 2000),
//! implemented as a library:
//!
//! * [`TracePredictor`] — the two-level trace-based predictor, instantiated
//!   as the paper's three variants: [`PerBlockLtp`] (PAp-like, the base
//!   case), [`GlobalLtp`] (PAg-like, storage-reduced), and [`LastPc`] (the
//!   single-instruction strawman);
//! * [`DsiPolicy`] — the Dynamic Self-Invalidation baseline (versioning +
//!   synchronization-boundary flush);
//! * [`SelfInvalidationPolicy`] — the interface a DSM node uses to drive any
//!   of the above;
//! * [`PolicyFactory`] / [`PolicyRegistry`] — the open policy API: spec
//!   strings like `"ltp:bits=13"` resolve to factories, and external crates
//!   register their own (see [`registry`] for the grammar);
//! * signature encoders, table organizations, and [`TwoBitCounter`]
//!   confidence filtering.
//!
//! This crate is simulation-substrate-agnostic: it consumes an abstract
//! stream of coherence events ([`Touch`]es, invalidations, synchronization
//! boundaries, verification verdicts) and produces self-invalidation
//! decisions. The CC-NUMA machine that feeds it lives in `ltp-dsm` /
//! `ltp-system`.
//!
//! # Quick start
//!
//! ```
//! use ltp_core::{
//!     BlockId, FillInfo, FillKind, Pc, PerBlockLtp, PredictorConfig,
//!     SelfInvalidationPolicy, SignatureBits, Touch,
//! };
//!
//! let mut ltp = PerBlockLtp::new(SignatureBits::PER_BLOCK_DEFAULT, 16, PredictorConfig::default());
//! let block = BlockId::new(42);
//!
//! // A block is fetched and touched by one instruction, then invalidated.
//! // Repeat the pattern and the predictor learns the last touch.
//! for _ in 0..2 {
//!     let fill = Touch {
//!         block,
//!         pc: Pc::new(0x4010),
//!         is_write: true,
//!         exclusive: true,
//!         fill: Some(FillInfo { kind: FillKind::Demand, dir_version: 0, migratory_upgrade: false }),
//!     };
//!     assert!(!ltp.on_touch(fill));
//!     ltp.on_invalidation(block);
//! }
//!
//! // Third occurrence: the predictor fires — self-invalidate right now,
//! // hundreds of cycles before the invalidation would have arrived.
//! let fill = Touch {
//!     block,
//!     pc: Pc::new(0x4010),
//!     is_write: true,
//!     exclusive: true,
//!     fill: Some(FillInfo { kind: FillKind::Demand, dir_version: 0, migratory_upgrade: false }),
//! };
//! assert!(ltp.on_touch(fill));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod confidence;
mod decode;
mod dsi;
mod encode;
pub mod fast_hash;
mod fingerprint;
mod last_pc;
mod ltp;
pub mod offline;
mod oracle;
mod perceptron;
mod policy;
pub mod registry;
mod sharer;
mod table;
mod tage;
mod types;

pub use confidence::TwoBitCounter;
pub use decode::{parse_json, JsonParseError};
pub use dsi::DsiPolicy;
pub use encode::{
    json_escape_into, InvalidSignatureBits, JsonObject, JsonValue, Signature, SignatureBits,
    SignatureEncoder, TruncatedAdd, XorRotate,
};
pub use fast_hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use fingerprint::{Fingerprint, FingerprintHasher, FingerprintParseError};
pub use last_pc::{LastPc, LastPcEncoder};
pub use ltp::{GlobalLtp, PerBlockLtp, PredictorConfig, PrematurePenalty, TracePredictor};
pub use offline::{
    replay_capture, verdicts_by_site, CaptureLog, CapturePolicy, CaptureRecord, Decision,
    PredictStats, ReplayOutcome, StreamEvent, VerdictEngine, VerdictRecord,
};
pub use oracle::OraclePolicy;
pub use perceptron::PerceptronPredictor;
pub use policy::{
    FillInfo, FillKind, NullPolicy, SelfInvalidationPolicy, SyncKind, Touch, VerifyOutcome,
};
pub use registry::{PolicyFactory, PolicyRegistry, PolicySpecError, SpecParams};
pub use sharer::{SharerIter, SharerSet};
pub use table::{GlobalTable, LastTouchTable, PerBlockTable, Probe, StorageStats};
pub use tage::TagePredictor;
pub use types::{BlockId, NodeId, Pc};
