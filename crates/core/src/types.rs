//! Vocabulary newtypes shared across the whole reproduction.
//!
//! Node, block, and program-counter identifiers are distinct types
//! ([C-NEWTYPE]) so that the compiler rejects, e.g., indexing a directory by a
//! PC. All three are cheap `Copy` wrappers.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use std::fmt;

/// Identifies one node (processor + memory + directory slice) of the DSM.
///
/// The ISCA'00 evaluation simulates 32 nodes; nothing in this repository
/// hard-codes that bound except the default configuration.
///
/// # Examples
///
/// ```
/// use ltp_core::NodeId;
///
/// let home = NodeId::new(3);
/// assert_eq!(home.index(), 3);
/// assert_eq!(home.to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node identifier from its index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// The zero-based node index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifies one fine-grain (32-byte in the paper's Table 1) memory block of
/// the global shared address space.
///
/// Blocks are the unit of coherence, invalidation, and prediction. Workloads
/// map their data structures onto a dense block index space; the home node of
/// a block is assigned by the system configuration.
///
/// # Examples
///
/// ```
/// use ltp_core::BlockId;
///
/// let b = BlockId::new(128);
/// assert_eq!(b.index(), 128);
/// assert_eq!(b.to_string(), "B128");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockId(u64);

impl BlockId {
    /// Creates a block identifier from its index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        BlockId(index)
    }

    /// The zero-based block index.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// A (synthetic) program counter: the identity of one static memory
/// instruction in a workload.
///
/// The paper's predictors correlate invalidations with the *sequence of
/// instructions* touching a block. Real PCs are 30 significant bits on the
/// evaluated SPARC machines (hence the "Base = 30 bit" signature); synthetic
/// workloads here assign each static load/store site a stable `Pc`.
///
/// # Examples
///
/// ```
/// use ltp_core::Pc;
///
/// let site = Pc::new(0x10f4);
/// assert_eq!(site.value(), 0x10f4);
/// assert_eq!(format!("{site}"), "pc:0x10f4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pc(u32);

impl Pc {
    /// Creates a program counter from its raw value.
    #[inline]
    pub const fn new(value: u32) -> Self {
        Pc(value)
    }

    /// The raw PC value.
    #[inline]
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn newtypes_round_trip() {
        assert_eq!(NodeId::new(31).index(), 31);
        assert_eq!(BlockId::new(9).index(), 9);
        assert_eq!(Pc::new(0xdead).value(), 0xdead);
    }

    #[test]
    fn newtypes_are_hashable_and_ordered() {
        let mut set = HashSet::new();
        set.insert(BlockId::new(1));
        set.insert(BlockId::new(1));
        assert_eq!(set.len(), 1);
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(Pc::new(1) < Pc::new(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId::new(0).to_string(), "P0");
        assert_eq!(BlockId::new(42).to_string(), "B42");
        assert_eq!(Pc::new(16).to_string(), "pc:0x10");
    }

    #[test]
    fn defaults_are_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
        assert_eq!(BlockId::default(), BlockId::new(0));
        assert_eq!(Pc::default(), Pc::new(0));
    }
}
