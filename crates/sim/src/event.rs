//! The event queue at the heart of the discrete-event simulator.
//!
//! Events are opaque payloads ordered by `(timestamp, insertion sequence)`.
//! The secondary sequence key makes the ordering a deterministic *total*
//! order: two events scheduled for the same cycle are delivered in the order
//! they were scheduled. Determinism is a correctness requirement for this
//! repository — last-touch predictor training data is an interleaving of
//! coherence events, and reproducible interleavings are what make the
//! regenerated experiment tables reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Cycle;

/// A timestamped entry in the queue. Private: callers only see payloads.
struct Entry<E> {
    at: Cycle,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use ltp_sim::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.schedule(Cycle::new(20), "late");
/// q.schedule(Cycle::new(10), "early");
/// q.schedule(Cycle::new(10), "early-second");
///
/// assert_eq!(q.pop(), Some((Cycle::new(10), "early")));
/// assert_eq!(q.pop(), Some((Cycle::new(10), "early-second")));
/// assert_eq!(q.pop(), Some((Cycle::new(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules `payload` for delivery at absolute time `at`.
    ///
    /// Events with equal timestamps are delivered in scheduling order.
    pub fn schedule(&mut self, at: Cycle, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest pending event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        self.heap.pop().map(|e| (e.at, e.payload))
    }

    /// Returns the timestamp of the earliest pending event without removing
    /// it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue (a cheap proxy for
    /// simulation activity, reported by the engine's run summary).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

/// An entry in a [`KeyedEventQueue`]. Private: callers only see payloads.
struct KeyedEntry<K, E> {
    at: Cycle,
    key: K,
    seq: u64,
    payload: E,
}

impl<K: Ord, E> PartialEq for KeyedEntry<K, E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.key == other.key && self.seq == other.seq
    }
}

impl<K: Ord, E> Eq for KeyedEntry<K, E> {}

impl<K: Ord, E> PartialOrd for KeyedEntry<K, E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, E> Ord for KeyedEntry<K, E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, key, seq)
        // pops first.
        (&other.at, &other.key, other.seq).cmp(&(&self.at, &self.key, self.seq))
    }
}

/// A future-event list ordered by `(timestamp, key, insertion sequence)`.
///
/// Unlike [`EventQueue`], whose same-cycle tie-break is the global insertion
/// sequence, this queue breaks timestamp ties by a caller-supplied *content*
/// key. When keys identify independent actors (and same-`(time, key)`
/// collisions are either impossible or commutative), the pop order becomes a
/// property of the simulated system rather than of the scheduling call
/// order — which is what lets a partitioned simulation replay the exact
/// serial order regardless of how the actors are distributed across shards.
///
/// # Examples
///
/// ```
/// use ltp_sim::{Cycle, KeyedEventQueue};
///
/// let mut q = KeyedEventQueue::new();
/// q.schedule(Cycle::new(10), 2u8, "second");
/// q.schedule(Cycle::new(10), 1u8, "first");
/// assert_eq!(q.pop(), Some((Cycle::new(10), 1, "first")));
/// assert_eq!(q.pop(), Some((Cycle::new(10), 2, "second")));
/// ```
pub struct KeyedEventQueue<K: Ord, E> {
    heap: BinaryHeap<KeyedEntry<K, E>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<K: Ord, E> KeyedEventQueue<K, E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        KeyedEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules `payload` for delivery at absolute time `at` under `key`.
    ///
    /// Same-cycle events are delivered in key order; equal `(at, key)` pairs
    /// fall back to scheduling order.
    pub fn schedule(&mut self, at: Cycle, key: K, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(KeyedEntry {
            at,
            key,
            seq,
            payload,
        });
    }

    /// Removes and returns the earliest pending event, if any.
    pub fn pop(&mut self) -> Option<(Cycle, K, E)> {
        self.heap.pop().map(|e| (e.at, e.key, e.payload))
    }

    /// Returns the timestamp of the earliest pending event without removing
    /// it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

impl<K: Ord, E> Default for KeyedEventQueue<K, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, E> std::fmt::Debug for KeyedEventQueue<K, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KeyedEventQueue")
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("scheduled_total", &self.scheduled_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(5), 'b');
        q.schedule(Cycle::new(1), 'a');
        q.schedule(Cycle::new(9), 'c');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(Cycle::new(7), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::new(3), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(3)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        q.schedule(Cycle::ZERO, ());
        q.schedule(Cycle::ZERO, ());
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn debug_is_nonempty() {
        let q = EventQueue::<u8>::new();
        assert!(!format!("{q:?}").is_empty());
    }

    #[test]
    fn keyed_queue_orders_by_time_then_key_then_seq() {
        let mut q = KeyedEventQueue::new();
        q.schedule(Cycle::new(5), 9u32, 'd');
        q.schedule(Cycle::new(5), 1u32, 'b');
        q.schedule(Cycle::new(5), 1u32, 'c');
        q.schedule(Cycle::new(1), 7u32, 'a');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, _, p)| p)).collect();
        assert_eq!(order, vec!['a', 'b', 'c', 'd']);
    }

    #[test]
    fn keyed_queue_order_is_insertion_invariant() {
        // The same (time, key) set pops identically regardless of the order
        // it was scheduled in — the property sharding relies on.
        let mut fwd = KeyedEventQueue::new();
        let mut rev = KeyedEventQueue::new();
        let entries: Vec<(u64, u32)> = vec![(3, 2), (1, 5), (3, 1), (2, 9), (1, 0)];
        for &(t, k) in &entries {
            fwd.schedule(Cycle::new(t), k, (t, k));
        }
        for &(t, k) in entries.iter().rev() {
            rev.schedule(Cycle::new(t), k, (t, k));
        }
        let a: Vec<_> = std::iter::from_fn(|| fwd.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| rev.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn keyed_queue_peek_len_and_counts() {
        let mut q = KeyedEventQueue::new();
        assert!(q.is_empty());
        q.schedule(Cycle::new(4), 0u8, ());
        q.schedule(Cycle::new(2), 0u8, ());
        assert_eq!(q.peek_time(), Some(Cycle::new(2)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        assert!(!format!("{q:?}").is_empty());
    }
}
