//! # `ltp-sim` — deterministic discrete-event simulation kernel
//!
//! The substrate beneath the ISCA 2000 *Last-Touch Prediction* reproduction.
//! This crate knows nothing about caches or predictors; it provides:
//!
//! * [`Cycle`] — simulated time in processor cycles;
//! * [`EventQueue`] — a future-event list with a deterministic total order;
//! * [`Simulation`]/[`World`] — the event-dispatch loop;
//! * [`SimRng`] — seeded randomness so workloads are reproducible;
//! * [`stats`] — counters, mean accumulators, ratios, histograms used by the
//!   protocol engines and the experiment harness.
//!
//! Determinism is the design center: the paper's predictors learn from the
//! *order* of coherence events, so reproducing its tables requires that two
//! runs with the same configuration observe identical event interleavings.
//! The queue therefore breaks timestamp ties by scheduling sequence, and all
//! randomness flows through explicitly-seeded [`SimRng`] streams.
//!
//! # Examples
//!
//! A two-event ping/pong world:
//!
//! ```
//! use ltp_sim::{Cycle, EventQueue, Simulation, World};
//!
//! #[derive(Default)]
//! struct PingPong {
//!     pings: u32,
//! }
//!
//! enum Ev {
//!     Ping,
//!     Pong,
//! }
//!
//! impl World for PingPong {
//!     type Event = Ev;
//!     fn handle(&mut self, now: Cycle, ev: Ev, q: &mut EventQueue<Ev>) {
//!         match ev {
//!             Ev::Ping if self.pings < 3 => {
//!                 self.pings += 1;
//!                 q.schedule(now + Cycle::new(80), Ev::Pong);
//!             }
//!             Ev::Ping => {}
//!             Ev::Pong => q.schedule(now + Cycle::new(80), Ev::Ping),
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new(PingPong::default());
//! sim.queue_mut().schedule(Cycle::ZERO, Ev::Ping);
//! let summary = sim.run();
//! assert_eq!(sim.world().pings, 3);
//! assert_eq!(summary.end_time, Cycle::new(80 * 6));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod event;
mod rng;
pub mod stats;
mod time;

pub use engine::{RunSummary, Simulation, StopReason, World};
pub use event::{EventQueue, KeyedEventQueue};
pub use rng::SimRng;
pub use time::Cycle;
