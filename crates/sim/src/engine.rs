//! The simulation driver: repeatedly pops the earliest event and hands it to
//! the [`World`].
//!
//! The engine is deliberately minimal — a `World` is any state machine that
//! consumes `(time, event)` pairs and may schedule further events. The full
//! CC-NUMA machine in `ltp-system` is one `World`; unit tests here use toy
//! worlds.

use crate::event::EventQueue;
use crate::time::Cycle;

/// A state machine driven by timestamped events.
///
/// Implementations receive each event exactly once, in deterministic
/// `(time, scheduling-sequence)` order, together with a scheduler handle used
/// to enqueue follow-up events.
pub trait World {
    /// The event payload this world consumes.
    type Event;

    /// Handles one event at simulated time `now`, optionally scheduling more.
    fn handle(&mut self, now: Cycle, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// Invoked after every handled event; returning `true` stops the run even
    /// if events remain pending (used for "run until all CPUs finished").
    ///
    /// The default never stops early; the run then ends when the event queue
    /// drains.
    fn finished(&self) -> bool {
        false
    }
}

/// Why a [`Simulation::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The event queue drained.
    Drained,
    /// [`World::finished`] returned `true`.
    Finished,
    /// The configured horizon was reached with events still pending — almost
    /// always a livelock/deadlock symptom in this repository, surfaced loudly.
    HorizonReached,
}

/// Summary statistics for a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// The clock value when the run stopped.
    pub end_time: Cycle,
    /// Number of events delivered to the world.
    pub events_handled: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// A discrete-event simulation: a [`World`] plus its future-event list and
/// clock.
///
/// # Examples
///
/// ```
/// use ltp_sim::{Cycle, EventQueue, Simulation, StopReason, World};
///
/// /// Counts down, rescheduling itself until it reaches zero.
/// struct Countdown(u32);
///
/// impl World for Countdown {
///     type Event = ();
///     fn handle(&mut self, now: Cycle, _: (), q: &mut EventQueue<()>) {
///         if self.0 > 0 {
///             self.0 -= 1;
///             q.schedule(now + Cycle::new(10), ());
///         }
///     }
/// }
///
/// let mut sim = Simulation::new(Countdown(3));
/// sim.queue_mut().schedule(Cycle::ZERO, ());
/// let summary = sim.run();
/// assert_eq!(summary.stop, StopReason::Drained);
/// assert_eq!(summary.end_time, Cycle::new(30));
/// assert_eq!(summary.events_handled, 4);
/// ```
pub struct Simulation<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    now: Cycle,
    horizon: Cycle,
    events_handled: u64,
}

impl<W: World> Simulation<W> {
    /// Creates a simulation over `world` with an empty event queue and an
    /// unbounded horizon.
    pub fn new(world: W) -> Self {
        Simulation {
            world,
            queue: EventQueue::new(),
            now: Cycle::ZERO,
            horizon: Cycle::MAX,
            events_handled: 0,
        }
    }

    /// Sets a hard horizon: the run stops (with
    /// [`StopReason::HorizonReached`]) before handling any event scheduled
    /// after `horizon`. Protects tests and benches from protocol deadlocks
    /// turning into hangs.
    pub fn with_horizon(mut self, horizon: Cycle) -> Self {
        self.horizon = horizon;
        self
    }

    /// The current simulated time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Shared access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world (e.g. to seed initial state).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Exclusive access to the event queue (e.g. to seed initial events).
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Split-borrows the world and the event queue together (for priming
    /// initial events from world state).
    pub fn world_and_queue_mut(&mut self) -> (&mut W, &mut EventQueue<W::Event>) {
        (&mut self.world, &mut self.queue)
    }

    /// Consumes the simulation, returning the world (for post-run metric
    /// extraction).
    pub fn into_world(self) -> W {
        self.world
    }

    /// Runs until the queue drains, the world reports completion, or the
    /// horizon is hit.
    pub fn run(&mut self) -> RunSummary {
        loop {
            if self.world.finished() {
                return self.summary(StopReason::Finished);
            }
            match self.queue.peek_time() {
                None => return self.summary(StopReason::Drained),
                Some(at) if at > self.horizon => {
                    return self.summary(StopReason::HorizonReached);
                }
                Some(_) => {}
            }
            let (at, event) = self.queue.pop().expect("peeked entry must pop");
            debug_assert!(at >= self.now, "time went backwards: {} < {}", at, self.now);
            self.now = at;
            self.events_handled += 1;
            self.world.handle(at, event, &mut self.queue);
        }
    }

    fn summary(&self, stop: StopReason) -> RunSummary {
        RunSummary {
            end_time: self.now,
            events_handled: self.events_handled,
            stop,
        }
    }
}

impl<W: World + std::fmt::Debug> std::fmt::Debug for Simulation<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending_events", &self.queue.len())
            .field("world", &self.world)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Default)]
    struct Recorder {
        seen: Vec<(u64, u32)>,
        stop_after: Option<usize>,
    }

    impl World for Recorder {
        type Event = u32;

        fn handle(&mut self, now: Cycle, event: u32, _q: &mut EventQueue<u32>) {
            self.seen.push((now.as_u64(), event));
        }

        fn finished(&self) -> bool {
            self.stop_after.is_some_and(|n| self.seen.len() >= n)
        }
    }

    #[test]
    fn drains_in_order() {
        let mut sim = Simulation::new(Recorder::default());
        sim.queue_mut().schedule(Cycle::new(30), 3);
        sim.queue_mut().schedule(Cycle::new(10), 1);
        sim.queue_mut().schedule(Cycle::new(20), 2);
        let s = sim.run();
        assert_eq!(s.stop, StopReason::Drained);
        assert_eq!(s.events_handled, 3);
        assert_eq!(sim.world().seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn finished_stops_early() {
        let mut sim = Simulation::new(Recorder {
            stop_after: Some(1),
            ..Recorder::default()
        });
        sim.queue_mut().schedule(Cycle::new(1), 1);
        sim.queue_mut().schedule(Cycle::new(2), 2);
        let s = sim.run();
        assert_eq!(s.stop, StopReason::Finished);
        assert_eq!(s.events_handled, 1);
    }

    #[test]
    fn horizon_stops_runaway_worlds() {
        struct Forever;
        impl World for Forever {
            type Event = ();
            fn handle(&mut self, now: Cycle, _: (), q: &mut EventQueue<()>) {
                q.schedule(now + Cycle::new(1), ());
            }
        }
        let mut sim = Simulation::new(Forever).with_horizon(Cycle::new(100));
        sim.queue_mut().schedule(Cycle::ZERO, ());
        let s = sim.run();
        assert_eq!(s.stop, StopReason::HorizonReached);
        assert!(s.end_time <= Cycle::new(100));
    }

    #[test]
    fn empty_queue_returns_immediately() {
        let mut sim = Simulation::new(Recorder::default());
        let s = sim.run();
        assert_eq!(s.stop, StopReason::Drained);
        assert_eq!(s.events_handled, 0);
        assert_eq!(s.end_time, Cycle::ZERO);
    }

    #[test]
    fn into_world_returns_final_state() {
        let mut sim = Simulation::new(Recorder::default());
        sim.queue_mut().schedule(Cycle::new(4), 9);
        sim.run();
        let world = sim.into_world();
        assert_eq!(world.seen, vec![(4, 9)]);
    }
}
