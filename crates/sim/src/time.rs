//! Simulated time.
//!
//! All simulator components agree on a single global clock measured in
//! processor [`Cycle`]s. The ISCA'00 configuration (Table 1) assumes a
//! 600 MHz processor, so one cycle is 1.67 ns; nothing in this crate depends
//! on the wall-clock interpretation, only on cycle arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, in processor cycles.
///
/// `Cycle` is a transparent [`u64`] newtype ([C-NEWTYPE]) so that event
/// timestamps, latencies, and durations cannot be confused with ordinary
/// integers such as node identifiers or block numbers.
///
/// # Examples
///
/// ```
/// use ltp_sim::Cycle;
///
/// let start = Cycle::ZERO;
/// let later = start + Cycle::new(416);
/// assert_eq!(later - start, Cycle::new(416));
/// assert!(later > start);
/// ```
///
/// [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// Time zero: the instant at which every simulation starts.
    pub const ZERO: Cycle = Cycle(0);

    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a cycle count from a raw `u64`.
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: `self - other`, or [`Cycle::ZERO`] if `other`
    /// is later than `self`.
    ///
    /// Queueing-delay computations use this to express "how long past `other`
    /// is `self`" without underflow panics when the resource was idle.
    #[inline]
    pub const fn saturating_sub(self, other: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two instants.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(cycles: u64) -> Self {
        Cycle(cycles)
    }
}

impl From<Cycle> for u64 {
    fn from(cycle: Cycle) -> Self {
        cycle.0
    }
}

impl Add for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Cycle::saturating_sub`] when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        iter.fold(Cycle::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Cycle::default(), Cycle::ZERO);
    }

    #[test]
    fn arithmetic_round_trips() {
        let a = Cycle::new(100);
        let b = Cycle::new(42);
        assert_eq!((a + b) - b, a);
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn saturating_sub_clamps_to_zero() {
        assert_eq!(Cycle::new(5).saturating_sub(Cycle::new(9)), Cycle::ZERO);
        assert_eq!(Cycle::new(9).saturating_sub(Cycle::new(5)), Cycle::new(4));
    }

    #[test]
    fn min_max_select_correct_endpoint() {
        let early = Cycle::new(1);
        let late = Cycle::new(2);
        assert_eq!(early.max(late), late);
        assert_eq!(early.min(late), early);
        assert_eq!(late.max(late), late);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Cycle::new(416).to_string(), "416cy");
    }

    #[test]
    fn sums_like_u64() {
        let total: Cycle = [1u64, 2, 3].into_iter().map(Cycle::new).sum();
        assert_eq!(total, Cycle::new(6));
    }

    #[test]
    fn conversions_are_lossless() {
        let c: Cycle = 77u64.into();
        let raw: u64 = c.into();
        assert_eq!(raw, 77);
        assert_eq!(c.as_u64(), 77);
    }
}
