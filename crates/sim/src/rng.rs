//! Seeded randomness for workloads.
//!
//! All stochastic decisions in the repository (e.g. `barnes` octree churn,
//! `raytrace` job sizes) draw from a [`SimRng`] seeded from the experiment
//! specification, so every regenerated figure and table is bit-reproducible.

/// A deterministic random-number source.
///
/// A self-contained xoshiro256++ generator (seeded through SplitMix64, per
/// the reference implementation) exposing only the operations the workloads
/// need; the narrow surface keeps the determinism contract easy to audit,
/// and carrying the generator in-tree keeps the repository free of external
/// dependencies.
///
/// # Examples
///
/// ```
/// use ltp_sim::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// One SplitMix64 step: advances `seed` and returns the mixed output.
fn splitmix64(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent stream for a sub-component (e.g. one per node).
    ///
    /// The derivation is a fixed mix of the parent seed and `stream`, so two
    /// nodes never share a stream and re-running reproduces every stream.
    pub fn derive(&mut self, stream: u64) -> SimRng {
        // SplitMix64-style mixing of a fresh draw with the stream index.
        let mut z = self
            .next_u64()
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::from_seed(z ^ (z >> 31))
    }

    /// Returns the next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Returns a value uniformly distributed in `[0, bound)`.
    ///
    /// Uses unbiased rejection sampling (the draw is retried in the rare
    /// case it lands in the truncated tail of the 64-bit range).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Returns a value uniformly distributed in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Returns `true` with probability `num / den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub fn chance(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0 && num <= den, "invalid probability {num}/{den}");
        self.below(u64::from(den)) < u64::from(num)
    }

    /// Fisher–Yates shuffles `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be effectively independent");
    }

    #[test]
    fn derive_is_deterministic_and_distinct() {
        let mut parent1 = SimRng::from_seed(99);
        let mut parent2 = SimRng::from_seed(99);
        let mut c1 = parent1.derive(5);
        let mut c2 = parent2.derive(5);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent3 = SimRng::from_seed(99);
        let mut p = parent3.derive(5);
        let mut q = parent3.derive(6);
        assert_ne!(p.next_u64(), q.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..1000 {
            let v = rng.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "below(0)")]
    fn below_zero_panics() {
        SimRng::from_seed(0).below(0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(11);
        assert!((0..100).all(|_| rng.chance(1, 1)));
        assert!((0..100).all(|_| !rng.chance(0, 1)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::from_seed(13);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
