//! Statistics primitives shared by the protocol engines, predictors, and the
//! experiment harness.
//!
//! The paper reports averages (queueing delay, service time), fractions
//! (prediction accuracy classes, timeliness), and per-block entry counts
//! (storage overhead); [`Counter`], [`MeanAccumulator`], [`Ratio`], and
//! [`Histogram`] cover all of them.

use std::fmt;

use crate::time::Cycle;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use ltp_sim::stats::Counter;
///
/// let mut invalidations = Counter::new();
/// invalidations.add(3);
/// invalidations.incr();
/// assert_eq!(invalidations.count(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current count.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.count)
    }
}

/// Accumulates samples and reports their arithmetic mean.
///
/// Used for the Table 4 columns (per-message queueing delay and service
/// time).
///
/// # Examples
///
/// ```
/// use ltp_sim::stats::MeanAccumulator;
///
/// let mut queueing = MeanAccumulator::new();
/// queueing.record(10.0);
/// queueing.record(30.0);
/// assert_eq!(queueing.mean(), Some(20.0));
/// assert_eq!(queueing.samples(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MeanAccumulator {
    sum: f64,
    samples: u64,
    max: f64,
}

impl MeanAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        MeanAccumulator::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, sample: f64) {
        self.sum += sample;
        self.samples += 1;
        if sample > self.max {
            self.max = sample;
        }
    }

    /// Records a [`Cycle`] duration as a sample.
    #[inline]
    pub fn record_cycles(&mut self, cycles: Cycle) {
        self.record(cycles.as_u64() as f64);
    }

    /// The mean of all samples, or `None` if none were recorded.
    pub fn mean(&self) -> Option<f64> {
        (self.samples > 0).then(|| self.sum / self.samples as f64)
    }

    /// The mean, or 0.0 when empty (convenient for table printing).
    pub fn mean_or_zero(&self) -> f64 {
        self.mean().unwrap_or(0.0)
    }

    /// The largest recorded sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &MeanAccumulator) {
        self.sum += other.sum;
        self.samples += other.samples;
        if other.max > self.max {
            self.max = other.max;
        }
    }
}

/// A numerator/denominator pair reported as a percentage.
///
/// # Examples
///
/// ```
/// use ltp_sim::stats::Ratio;
///
/// let mut timely = Ratio::new();
/// timely.record(true);
/// timely.record(true);
/// timely.record(false);
/// assert!((timely.percent() - 66.66).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ratio {
    hits: u64,
    total: u64,
}

impl Ratio {
    /// Creates an empty ratio (0/0, reported as 0%).
    pub fn new() -> Self {
        Ratio::default()
    }

    /// Records one outcome.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Numerator.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Denominator.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `hits / total` as a fraction in `[0, 1]`; 0 when empty.
    pub fn fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// `fraction() * 100`.
    pub fn percent(&self) -> f64 {
        self.fraction() * 100.0
    }
}

/// A fixed-bucket histogram over `u64` samples.
///
/// Buckets are `[bounds[i-1], bounds[i])` with two open-ended extremes. Used
/// for distribution sanity checks (e.g. signature-table occupancy spread).
///
/// # Examples
///
/// ```
/// use ltp_sim::stats::Histogram;
///
/// let mut h = Histogram::with_bounds(&[10, 100]);
/// h.record(5);
/// h.record(50);
/// h.record(500);
/// assert_eq!(h.bucket_counts(), &[1, 1, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    samples: u64,
    sum: u128,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            samples: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, sample: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| sample < b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.samples += 1;
        self.sum += u128::from(sample);
        if sample > self.max {
            self.max = sample;
        }
    }

    /// The ascending bucket upper bounds this histogram was built with
    /// (bucket `i` covers `[bounds[i-1], bounds[i])`; one open-ended bucket
    /// follows the last bound).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the last bucket is open-ended.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.count(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn mean_accumulator_basic() {
        let mut m = MeanAccumulator::new();
        assert_eq!(m.mean(), None);
        assert_eq!(m.mean_or_zero(), 0.0);
        m.record(2.0);
        m.record(4.0);
        m.record_cycles(Cycle::new(6));
        assert_eq!(m.mean(), Some(4.0));
        assert_eq!(m.samples(), 3);
        assert_eq!(m.max(), 6.0);
        assert_eq!(m.sum(), 12.0);
    }

    #[test]
    fn mean_accumulator_merge() {
        let mut a = MeanAccumulator::new();
        a.record(1.0);
        let mut b = MeanAccumulator::new();
        b.record(3.0);
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.samples(), 3);
        assert_eq!(a.mean(), Some(3.0));
        assert_eq!(a.max(), 5.0);
    }

    #[test]
    fn ratio_edge_cases() {
        let r = Ratio::new();
        assert_eq!(r.percent(), 0.0);
        let mut r = Ratio::new();
        r.record(true);
        assert_eq!(r.percent(), 100.0);
        assert_eq!(r.hits(), 1);
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn histogram_bucketizes() {
        let mut h = Histogram::with_bounds(&[2, 4]);
        for v in [0, 1, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 2, 2]);
        assert_eq!(h.samples(), 6);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 110.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::with_bounds(&[4, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn histogram_rejects_empty_bounds() {
        Histogram::with_bounds(&[]);
    }
}
