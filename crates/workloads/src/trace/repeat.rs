//! The per-stream loop detector behind format v2's repeat blocks.
//!
//! Every `LoopedScript`-shaped benchmark emits a prologue followed by
//! `body^N` — the same operation sequence repeated identically each
//! iteration. [`detect_repeats`] finds those repetitions (and any other
//! periodic run, down to period 1) in a recorded stream and describes the
//! stream as [`Segment`]s: literal stretches encoded op-by-op, and repeat
//! stretches that reference the operations immediately before them. The v2
//! encoder turns each [`Segment::Repeat`] into a single repeat block, so a
//! body looped `N` times costs one encoded body plus a few bytes — on-disk
//! size approaches O(one iteration).
//!
//! The detector is a period-constrained LZ match: at each position it
//! considers the recent prior occurrences of the current op as candidate
//! periods and extends the longest `ops[t] == ops[t - p]` run. Work is
//! amortized O(n): occurrence chains are bounded, failed candidates die at
//! their first mismatch, and successful matches consume everything they
//! cover.

use std::collections::HashMap;

use crate::program::Op;

/// Longest repeat body (in ops) the in-tree encoder will emit.
///
/// This is a *writer-side* policy bound, not a format limit: it caps the
/// window a streaming reader of in-tree files needs to buffer. The format
/// itself admits windows up to
/// [`super::MAX_STREAM_WINDOW`](crate::trace::MAX_STREAM_WINDOW).
pub const MAX_REPEAT_BODY: usize = 4096;

/// Fewest ops a repeat must cover to be worth a repeat block (the block
/// costs 3–5 bytes; literal ops average 2–4 bytes each).
const MIN_COVERED_OPS: usize = 4;

/// How many recent occurrences of each op value the detector remembers.
const CHAIN_DEPTH: usize = 8;

/// One stretch of a stream, as seen by the v2 encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// The next `len` ops are encoded literally.
    Literal {
        /// Number of ops in the stretch (always ≥ 1).
        len: usize,
    },
    /// The next `body * reps` ops duplicate the `body` ops immediately
    /// before this segment, `reps` times over — encoded as one repeat
    /// block.
    Repeat {
        /// Period of the repetition, in ops (≥ 1).
        body: usize,
        /// How many extra copies of the body follow (≥ 1).
        reps: u64,
    },
}

impl Segment {
    /// Number of stream ops this segment covers.
    pub fn covered(&self) -> u64 {
        match *self {
            Segment::Literal { len } => len as u64,
            Segment::Repeat { body, reps } => body as u64 * reps,
        }
    }
}

/// Splits `ops` into literal and repeat segments with repeat bodies of at
/// most `max_body` ops.
///
/// The returned segments cover the stream exactly, in order, and every
/// [`Segment::Repeat`] is preceded by at least `body` already-covered ops
/// (its reference window). Greedy and deterministic: the same stream always
/// yields the same segmentation.
///
/// # Examples
///
/// A loop body repeated five times collapses to one literal body plus one
/// repeat segment:
///
/// ```
/// use ltp_core::{BlockId, Pc};
/// use ltp_workloads::trace::{detect_repeats, Segment, MAX_REPEAT_BODY};
/// use ltp_workloads::Op;
///
/// let body = [
///     Op::Read { pc: Pc::new(0x10), block: BlockId::new(3) },
///     Op::Write { pc: Pc::new(0x14), block: BlockId::new(3) },
///     Op::Think(20),
/// ];
/// let stream: Vec<Op> = body.iter().copied().cycle().take(15).collect();
///
/// let segments = detect_repeats(&stream, MAX_REPEAT_BODY);
/// assert_eq!(segments[0], Segment::Literal { len: 3 });
/// assert_eq!(segments[1], Segment::Repeat { body: 3, reps: 4 });
/// assert_eq!(segments.iter().map(|s| s.covered()).sum::<u64>(), 15);
/// ```
pub fn detect_repeats(ops: &[Op], max_body: usize) -> Vec<Segment> {
    let mut segments = Vec::new();
    let mut chains: HashMap<Op, Vec<usize>> = HashMap::new();
    let push_chain = |chains: &mut HashMap<Op, Vec<usize>>, op: Op, at: usize| {
        let chain = chains.entry(op).or_default();
        if chain.len() == CHAIN_DEPTH {
            chain.remove(0);
        }
        chain.push(at);
    };

    let mut literal_start = 0usize;
    let mut i = 0usize;
    while i < ops.len() {
        // Candidate periods: distances to recent occurrences of ops[i],
        // most recent (smallest period) first. Keep the candidate covering
        // the most ops; ties go to the smaller period (smaller window).
        let mut best: Option<(usize, u64)> = None;
        if let Some(chain) = chains.get(&ops[i]) {
            for &j in chain.iter().rev() {
                let p = i - j;
                if p == 0 || p > max_body {
                    continue;
                }
                let mut t = i;
                while t < ops.len() && ops[t] == ops[t - p] {
                    t += 1;
                }
                let reps = ((t - i) / p) as u64;
                let covered = p as u64 * reps;
                if reps >= 1
                    && covered >= MIN_COVERED_OPS as u64
                    && best.is_none_or(|(bp, br)| covered > bp as u64 * br)
                {
                    best = Some((p, reps));
                    if t == ops.len() {
                        break; // nothing can cover more
                    }
                }
            }
        }
        match best {
            Some((body, reps)) => {
                if i > literal_start {
                    segments.push(Segment::Literal {
                        len: i - literal_start,
                    });
                }
                segments.push(Segment::Repeat { body, reps });
                let end = i + body * reps as usize;
                // Only the last `max_body` covered positions can seed a
                // future match (older ones exceed the period bound).
                let register_from = i.max(end.saturating_sub(max_body));
                for (t, &op) in ops.iter().enumerate().take(end).skip(register_from) {
                    push_chain(&mut chains, op, t);
                }
                i = end;
                literal_start = i;
            }
            None => {
                push_chain(&mut chains, ops[i], i);
                i += 1;
            }
        }
    }
    if i > literal_start {
        segments.push(Segment::Literal {
            len: i - literal_start,
        });
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltp_core::{BlockId, Pc};

    fn read(pc: u32, block: u64) -> Op {
        Op::Read {
            pc: Pc::new(pc),
            block: BlockId::new(block),
        }
    }

    fn expand(segments: &[Segment], ops: &[Op]) -> Vec<Op> {
        // Re-materialize the stream from its segmentation: the correctness
        // contract the encoder relies on.
        let mut out: Vec<Op> = Vec::new();
        for seg in segments {
            match *seg {
                Segment::Literal { len } => {
                    out.extend_from_slice(&ops[out.len()..out.len() + len]);
                }
                Segment::Repeat { body, reps } => {
                    for _ in 0..body as u64 * reps {
                        out.push(out[out.len() - body]);
                    }
                }
            }
        }
        out
    }

    #[test]
    fn empty_and_tiny_streams_stay_literal() {
        assert!(detect_repeats(&[], MAX_REPEAT_BODY).is_empty());
        let ops = vec![read(1, 1), read(2, 2)];
        assert_eq!(
            detect_repeats(&ops, MAX_REPEAT_BODY),
            vec![Segment::Literal { len: 2 }]
        );
    }

    #[test]
    fn pure_loop_compresses_to_one_body() {
        let body = [read(1, 10), read(2, 11), Op::Think(7), Op::Barrier(0)];
        let ops: Vec<Op> = body.iter().copied().cycle().take(4 * 50).collect();
        let segs = detect_repeats(&ops, MAX_REPEAT_BODY);
        assert_eq!(
            segs,
            vec![
                Segment::Literal { len: 4 },
                Segment::Repeat { body: 4, reps: 49 }
            ]
        );
        assert_eq!(expand(&segs, &ops), ops);
    }

    #[test]
    fn prologue_plus_loop_matches_looped_script_shape() {
        let mut ops = vec![Op::Think(1), read(100, 5), read(101, 6)];
        let body = [read(1, 10), Op::Think(3), read(2, 11)];
        for _ in 0..20 {
            ops.extend_from_slice(&body);
        }
        let segs = detect_repeats(&ops, MAX_REPEAT_BODY);
        assert_eq!(expand(&segs, &ops), ops);
        let repeated: u64 = segs
            .iter()
            .filter(|s| matches!(s, Segment::Repeat { .. }))
            .map(Segment::covered)
            .sum();
        assert!(
            repeated >= 3 * 19,
            "19 of the 20 body copies must be covered by repeats, got {repeated}"
        );
    }

    #[test]
    fn unit_period_runs_collapse() {
        let ops = vec![Op::Think(5); 1000];
        let segs = detect_repeats(&ops, MAX_REPEAT_BODY);
        assert_eq!(
            segs,
            vec![
                Segment::Literal { len: 1 },
                Segment::Repeat { body: 1, reps: 999 }
            ]
        );
    }

    #[test]
    fn internal_duplicates_do_not_derail_the_real_period() {
        // Body starts with a duplicated op: the period-1 candidate fails
        // fast and the full body period still wins.
        let body = [Op::Think(1), Op::Think(1), read(1, 9), read(2, 9)];
        let ops: Vec<Op> = body.iter().copied().cycle().take(4 * 12).collect();
        let segs = detect_repeats(&ops, MAX_REPEAT_BODY);
        assert_eq!(expand(&segs, &ops), ops);
        let covered: u64 = segs
            .iter()
            .filter(|s| matches!(s, Segment::Repeat { .. }))
            .map(Segment::covered)
            .sum();
        assert!(covered >= 4 * 10, "most copies repeat-covered: {covered}");
    }

    #[test]
    fn random_streams_round_trip_through_segmentation() {
        // No structure to find — but whatever is found must re-expand
        // exactly.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        let ops: Vec<Op> = (0..2000)
            .map(|_| read(next() as u32, next() % 64))
            .collect();
        let segs = detect_repeats(&ops, MAX_REPEAT_BODY);
        assert_eq!(expand(&segs, &ops), ops);
    }

    #[test]
    fn max_body_bounds_the_window() {
        let body: Vec<Op> = (0..100).map(|k| read(k, u64::from(k))).collect();
        let ops: Vec<Op> = body.iter().copied().cycle().take(100 * 10).collect();
        // A cap below the true period forbids the match entirely...
        for seg in detect_repeats(&ops, 50) {
            if let Segment::Repeat { body, .. } = seg {
                assert!(body <= 50);
            }
        }
        // ...while a cap at the period finds it.
        let segs = detect_repeats(&ops, 100);
        assert!(segs
            .iter()
            .any(|s| matches!(s, Segment::Repeat { body: 100, .. })));
    }
}
