//! Random valid-trace generation (`ltp gen-trace`).
//!
//! Evaluation should not be limited to the nine synthetic kernels; this
//! module emits *random* traces that are nonetheless *valid workloads*:
//! every generated file round-trips the codecs bit-exactly (exercising
//! every opcode, large operand deltas, and loop-shaped regions the v2
//! repeat detector can find) **and** replays to completion on the
//! simulated machine (synchronization is generated coherently — barriers
//! arrive in the same order on every node, locks are always released,
//! flags are set before they are awaited).
//!
//! The generator is the engine of the fuzz-style round-trip tests in
//! `tests/trace_v2.rs` and of the `gen-trace` CLI subcommand.

use ltp_core::{BlockId, Pc};
use ltp_sim::SimRng;

use crate::program::{Lock, Op};
use crate::suite::WorkloadParams;

use super::{Trace, TraceWriter};

/// Block-id ranges for the generated address space: shared data blocks,
/// cross-node lock blocks, and per-node flag blocks never collide.
const DATA_BLOCKS: u64 = 1 << 16;
const LOCK_BLOCK_BASE: u64 = 1 << 20;
const LOCK_BLOCKS: u64 = 8;
const FLAG_BLOCK_BASE: u64 = 1 << 21;

/// Generates a random — but structurally valid and simulatable — trace.
///
/// Deterministic in `params` (the seed drives every choice) and shaped for
/// the codecs: streams mix literal runs, occasional far jumps in PC/block
/// space (stressing the ZigZag deltas), and looped mini-bodies the v2
/// repeat detector compresses. Node streams advance through the same
/// barrier sequence, so the trace replays to completion under any policy.
///
/// `ops_per_node` is approximate (streams end at phase boundaries); every
/// stream holds at least one op.
///
/// # Examples
///
/// ```
/// use ltp_workloads::{random_trace, Trace, WorkloadParams};
///
/// let trace = random_trace(&WorkloadParams::quick(4, 1), 500);
/// assert_eq!(trace.nodes(), 4);
/// assert!(trace.total_ops() >= 4 * 400);
///
/// // Bit-exact round trip through the current format.
/// let mut bytes = Vec::new();
/// trace.write_to(&mut bytes).unwrap();
/// assert_eq!(Trace::read_from(&bytes[..]).unwrap(), trace);
/// ```
///
/// # Panics
///
/// Panics if `params.nodes < 2` (as every workload does).
pub fn random_trace(params: &WorkloadParams, ops_per_node: u64) -> Trace {
    let mut writer = TraceWriter::new("random", *params);
    let mut root = SimRng::from_seed(params.seed ^ 0x6E67_7261_6365); // "gen" salt
    let nodes = params.nodes;

    // Phases end with a barrier on every node; each node fills each phase
    // independently from its own derived stream.
    let phases = (ops_per_node / 64).clamp(1, 32);
    let per_phase = (ops_per_node / phases).max(1);
    let mut node_rngs: Vec<SimRng> = (0..nodes).map(|n| root.derive(u64::from(n))).collect();

    for phase in 0..phases {
        for (node, rng) in node_rngs.iter_mut().enumerate() {
            let mut emitted = 0u64;
            let mut flag_seq = 0u64;
            while emitted < per_phase {
                emitted += emit_burst(&mut writer, node as u16, rng, phase, &mut flag_seq);
            }
            writer.push(node as u16, Op::Barrier(phase as u32));
        }
    }
    writer.finish()
}

/// Emits one burst of ops for `node` and returns how many were pushed.
fn emit_burst(
    writer: &mut TraceWriter,
    node: u16,
    rng: &mut SimRng,
    phase: u64,
    flag_seq: &mut u64,
) -> u64 {
    match rng.next_u64() % 100 {
        // Local computation.
        0..=24 => {
            writer.push(node, Op::Think(rng.next_u64() % 64));
            1
        }
        // Plain shared-memory traffic, mostly near the previous address
        // with occasional far jumps (stressing the delta coder).
        25..=64 => {
            let op = random_mem_op(rng);
            writer.push(node, op);
            1
        }
        // A looped mini-body: the structure the repeat detector exists for.
        65..=79 => {
            let body_len = 2 + (rng.next_u64() % 12) as usize;
            let reps = 2 + rng.next_u64() % 24;
            let body: Vec<Op> = (0..body_len).map(|_| random_mem_op(rng)).collect();
            for _ in 0..reps {
                for &op in &body {
                    writer.push(node, op);
                }
            }
            body_len as u64 * reps
        }
        // A critical section over a shared lock (always released, so the
        // test-and-set expansion at replay time terminates).
        80..=89 => {
            let lock = Lock {
                block: BlockId::new(LOCK_BLOCK_BASE + rng.next_u64() % LOCK_BLOCKS),
                spin_pc: Pc::new(rng.next_u64() as u32 & 0x00FF_FFFC),
                tas_pc: Pc::new(rng.next_u64() as u32 & 0x00FF_FFFC),
                release_pc: Pc::new(rng.next_u64() as u32 & 0x00FF_FFFC),
                exposed: rng.next_u64() % 2 == 0,
            };
            writer.push(node, Op::Lock(lock));
            writer.push(node, random_mem_op(rng));
            writer.push(node, Op::Unlock(lock));
            3
        }
        // A flag set/wait pair on this node's private flag block: the
        // wait's generation requirement is already satisfied by the set,
        // whatever the machine interleaving.
        _ => {
            let block = BlockId::new(
                FLAG_BLOCK_BASE + u64::from(node) * 1024 + phase * 8 + (*flag_seq % 8),
            );
            *flag_seq += 1;
            writer.push(
                node,
                Op::FlagSet {
                    pc: Pc::new(rng.next_u64() as u32 & 0x00FF_FFFC),
                    block,
                },
            );
            writer.push(
                node,
                Op::FlagWait {
                    pc: Pc::new(rng.next_u64() as u32 & 0x00FF_FFFC),
                    block,
                },
            );
            2
        }
    }
}

fn random_mem_op(rng: &mut SimRng) -> Op {
    let pc = Pc::new(if rng.next_u64() % 8 == 0 {
        rng.next_u64() as u32 // far jump, large delta
    } else {
        0x1000 + (rng.next_u64() % 256) as u32 * 4
    });
    let block = BlockId::new(if rng.next_u64() % 16 == 0 {
        rng.next_u64() // full 64-bit id, worst-case zigzag
    } else {
        rng.next_u64() % DATA_BLOCKS
    });
    if rng.next_u64() % 3 == 0 {
        Op::Write { pc, block }
    } else {
        Op::Read { pc, block }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TRACE_VERSION_V1;

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let params = WorkloadParams {
            nodes: 3,
            seed: 99,
            iterations: None,
        };
        assert_eq!(random_trace(&params, 300), random_trace(&params, 300));
        let other = WorkloadParams {
            seed: 100,
            ..params
        };
        assert_ne!(random_trace(&params, 300), random_trace(&other, 300));
    }

    #[test]
    fn generated_traces_round_trip_both_versions() {
        for seed in 0..4 {
            let params = WorkloadParams {
                nodes: 2 + (seed as u16 % 3),
                seed,
                iterations: None,
            };
            let trace = random_trace(&params, 400);
            for version in [TRACE_VERSION_V1, super::super::TRACE_VERSION] {
                let mut bytes = Vec::new();
                trace.write_to_version(&mut bytes, version).unwrap();
                assert_eq!(
                    Trace::read_from(&bytes[..]).unwrap(),
                    trace,
                    "seed {seed} v{version}"
                );
            }
        }
    }

    #[test]
    fn generated_streams_cover_every_op_kind_eventually() {
        let trace = random_trace(&WorkloadParams::quick(4, 1), 4000);
        for (kind, count) in trace.op_histogram() {
            assert!(count > 0, "no {kind} ops in a 16k-op random trace");
        }
    }

    #[test]
    fn barriers_line_up_across_nodes() {
        let trace = random_trace(&WorkloadParams::quick(3, 1), 500);
        let barrier_seq = |ops: &[Op]| -> Vec<u32> {
            ops.iter()
                .filter_map(|op| match op {
                    Op::Barrier(id) => Some(*id),
                    _ => None,
                })
                .collect()
        };
        let reference = barrier_seq(&trace.streams()[0]);
        assert!(!reference.is_empty());
        for stream in trace.streams() {
            assert_eq!(barrier_seq(stream), reference);
        }
    }
}
