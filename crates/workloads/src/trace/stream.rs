//! Streaming trace replay: run `.ltrace` workloads without materializing
//! them.
//!
//! [`super::Trace`] decodes a whole file into memory — fine for the
//! synthetic suite, a hard cap for the 10⁸+-op traces long evaluations
//! want. [`StreamingTrace`] takes the other path: [`StreamingTrace::open`]
//! makes **one sequential pass** over the file that verifies the checksum,
//! validates every stream's structure, and builds a per-node index (byte
//! offset, op count, repeat window); [`StreamingTraceProgram`] then decodes
//! each node's self-delimiting stream **incrementally** from its own file
//! handle, through a byte-level read-ahead layer that pulls the stream in
//! 64 KiB chunks. Peak memory per node is bounded by the stream's declared
//! repeat window (plus the fixed read-ahead chunk) no matter how many ops
//! the trace holds — replay memory is O(nodes × window), not O(ops).
//!
//! Both format versions stream: v2 windows come from the header, v1
//! streams have no repeat blocks and need no window at all.
//!
//! Streamed replay emits exactly the ops a buffered replay emits, so run
//! reports are bit-identical between the two paths (asserted in the
//! `trace_v2` integration tests).

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::program::{Op, Program};
use crate::suite::WorkloadParams;

use super::codec::{
    decode_op, fnv1a_step, note_op, read_varint, DeltaState, IoInput, TraceInput, FNV_OFFSET,
    OP_REPEAT,
};
use super::{
    check_stream_end, validate_repeat, Header, StreamMeta, TraceError, TRACE_MAGIC, TRACE_VERSION,
    TRACE_VERSION_V1,
};

/// Pushes into a bounded ring (the repeat window); a zero capacity keeps
/// nothing.
fn push_ring(window: &mut VecDeque<Op>, cap: usize, op: Op) {
    if cap == 0 {
        return;
    }
    if window.len() == cap {
        window.pop_front();
    }
    window.push_back(op);
}

/// Value-level validation scan of one v2 stream: decodes every literal op
/// (running the delta chains and their range checks, so replay can never
/// fail on a file `open` accepted), maintains the repeat window, and
/// expands repeat blocks *virtually* — a `body × reps` repetition costs
/// O(window + body) scan work however large `reps` is, because the
/// expansion is periodic: only its final `window` ops (and the delta-chain
/// values after them) can influence what follows, and walking a stretch of
/// length `k ≡ covered (mod body)`, `k ≥ window`, reproduces both exactly.
/// Returns the number of repeat blocks seen.
fn scan_stream_v2<I: TraceInput>(
    input: &mut I,
    node: u16,
    meta: &StreamMeta,
) -> Result<u64, TraceError> {
    let cap = meta.window as usize;
    let mut window: VecDeque<Op> = VecDeque::with_capacity(cap);
    let mut state = DeltaState::new();
    let mut produced = 0u64;
    let mut repeats_seen = 0u64;
    while produced < meta.ops {
        let opcode = input.byte("opcode")?;
        if opcode == OP_REPEAT {
            let (body, covered) = validate_repeat(input, node, produced, meta, &mut repeats_seen)?;
            let snapshot: Vec<Op> = window
                .iter()
                .skip(window.len() - body as usize)
                .copied()
                .collect();
            let full = cap as u64 + body;
            let walk = if covered <= full + body {
                covered
            } else {
                full + (covered - full) % body
            };
            for i in 0..walk {
                let op = snapshot[(i % body) as usize];
                note_op(&mut state, op);
                push_ring(&mut window, cap, op);
            }
            produced += covered;
        } else {
            let op = decode_op(input, &mut state, opcode, node)?;
            push_ring(&mut window, cap, op);
            produced += 1;
        }
    }
    Ok(repeats_seen)
}

/// Size of each per-node read-ahead chunk, in bytes. At 1–4 encoded
/// bytes/op one 64 KiB read pulls tens of thousands of ops' worth of bytes
/// into memory at once, and even 256 nodes streaming concurrently cost
/// only 16 MiB of buffers.
const READ_AHEAD_BYTES: usize = 64 * 1024;

/// Byte-level read-ahead over one stream's slice of the trace file — the
/// buffered layer between the file and a per-node decode cursor.
///
/// Bytes are pulled in [`READ_AHEAD_BYTES`] chunks (clamped to the
/// stream's declared length, so a cursor never reads into a neighbouring
/// stream) and served from an in-memory buffer, making the decoder's
/// per-byte path an inline bounds check instead of a [`Read::read`] call
/// per byte. The layer buffers *encoded bytes*, never decoded ops, so the
/// replay memory bound (`peak_buffered_ops() ≤ 2 × window`) is untouched.
#[derive(Debug)]
struct ReadAheadInput {
    file: File,
    /// Encoded stream bytes not yet pulled into the buffer.
    left: u64,
    buf: Vec<u8>,
    pos: usize,
}

impl ReadAheadInput {
    /// Seeks `file` to the stream's first byte; `bytes` is the stream's
    /// declared encoded length.
    fn new(mut file: File, offset: u64, bytes: u64) -> io::Result<ReadAheadInput> {
        file.seek(SeekFrom::Start(offset))?;
        Ok(ReadAheadInput {
            file,
            left: bytes,
            buf: Vec::new(),
            pos: 0,
        })
    }

    /// Refills the chunk buffer with the next slice of the stream; the
    /// buffer stays empty only when the stream is spent (or the file was
    /// truncated behind our back — the caller reports that as corruption).
    fn refill(&mut self) -> io::Result<()> {
        let want = self.left.min(READ_AHEAD_BYTES as u64) as usize;
        self.buf.resize(want, 0);
        self.pos = 0;
        let mut filled = 0;
        while filled < want {
            match self.file.read(&mut self.buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.buf.truncate(filled);
        self.left -= filled as u64;
        Ok(())
    }
}

impl TraceInput for ReadAheadInput {
    fn byte(&mut self, what: &str) -> Result<u8, TraceError> {
        if let Some(&b) = self.buf.get(self.pos) {
            self.pos += 1;
            return Ok(b);
        }
        self.refill()?;
        let Some(&b) = self.buf.get(self.pos) else {
            return Err(TraceError::Corrupt(format!(
                "truncated while reading {what}"
            )));
        };
        self.pos += 1;
        Ok(b)
    }
}

/// One node's entry in the file index built by [`StreamingTrace::open`].
#[derive(Debug, Clone, Copy)]
struct StreamIndex {
    /// Declared stream metadata (ops, bytes, window, repeats). For v1
    /// files, reconstructed by the validation scan (window and repeats are
    /// always 0).
    meta: StreamMeta,
    /// Absolute file offset of the stream's first item.
    offset: u64,
}

/// A validated, indexed `.ltrace` file, replayable without materialization.
///
/// Opening performs a full single-pass validation (magic, version,
/// checksum, header, and the structure of every stream), so replay can
/// trust the bytes it decodes later; see [`StreamingTrace::open`].
///
/// # Examples
///
/// Record, save, and replay a benchmark through the streaming path; the
/// streamed ops are exactly the recorded ops:
///
/// ```
/// use std::sync::Arc;
///
/// use ltp_workloads::{collect_ops, Benchmark, StreamingTrace, Trace, WorkloadParams};
///
/// let params = WorkloadParams::quick(2, 3);
/// let trace = Trace::record(Benchmark::Tomcatv, &params);
/// let path = std::env::temp_dir().join(format!("ltp-doc-{}.ltrace", std::process::id()));
/// trace.save(&path).unwrap();
///
/// let streaming = Arc::new(StreamingTrace::open(&path).unwrap());
/// assert_eq!(streaming.name(), "tomcatv");
/// assert_eq!(streaming.total_ops(), trace.total_ops());
///
/// let mut programs = StreamingTrace::programs(&streaming).unwrap();
/// for (node, program) in programs.iter_mut().enumerate() {
///     assert_eq!(collect_ops(program.as_mut()), trace.streams()[node]);
/// }
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct StreamingTrace {
    path: PathBuf,
    version: u8,
    name: String,
    workload: WorkloadParams,
    streams: Vec<StreamIndex>,
    file_bytes: u64,
}

impl StreamingTrace {
    /// Opens and validates a trace file for streaming replay.
    ///
    /// This makes one buffered sequential pass over the whole file —
    /// verifying the magic, version, FNV-1a checksum, header, and the full
    /// validity of every stream: framing, opcodes, repeat-block bounds,
    /// declared byte/op/repeat counts, **and** operand values (the delta
    /// chains run during the scan, so out-of-range PCs and barrier ids are
    /// rejected here, exactly as [`super::Trace::read_from`] rejects
    /// them). A file `open` accepts cannot fail replay unless it changes
    /// on disk afterwards.
    ///
    /// Memory stays O(nodes + window) and no ops are materialized; repeat
    /// blocks are expanded *virtually* (O(window + body) scan work each,
    /// however many ops they cover), so opening cost is bounded by file
    /// size even for files whose declared op count is astronomical.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] exactly as [`super::Trace::read_from`]
    /// would: bad magic, unsupported version, I/O failure, or a precise
    /// corruption diagnosis.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<StreamingTrace, TraceError> {
        let path = path.as_ref().to_path_buf();
        let file = File::open(&path)?;
        let file_bytes = file.metadata()?.len();
        let mut reader = BufReader::new(file);

        let mut head = [0u8; 8];
        if let Err(e) = reader.read_exact(&mut head) {
            return if e.kind() == io::ErrorKind::UnexpectedEof {
                Err(TraceError::BadMagic)
            } else {
                Err(TraceError::Io(e))
            };
        }
        if head[..7] != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = head[7];
        if !(TRACE_VERSION_V1..=TRACE_VERSION).contains(&version) {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let Some(body_len) = file_bytes.checked_sub(8 + 8) else {
            return Err(TraceError::Corrupt("missing checksum trailer".to_string()));
        };

        // Everything between the version byte and the trailer is hashed as
        // it is consumed; `IoInput::consumed` gives offsets within the body.
        let mut input = IoInput::new(HashingReader::new(reader.by_ref().take(body_len)));
        let header = Header::parse(&mut input)?;
        let nodes = header.workload.nodes;

        let mut streams = Vec::with_capacity(usize::from(nodes));
        match version {
            TRACE_VERSION_V1 => {
                for node in 0..nodes {
                    let ops = read_varint(&mut input, "op count")?;
                    let offset = 8 + input.consumed();
                    let start = input.consumed();
                    let mut state = DeltaState::new();
                    for _ in 0..ops {
                        let opcode = input.byte("opcode")?;
                        // Full value-level decode (discarded): the delta
                        // chains and range checks run here so replay can
                        // never fail on a file `open` accepted.
                        decode_op(&mut input, &mut state, opcode, node)?;
                    }
                    streams.push(StreamIndex {
                        meta: StreamMeta {
                            ops,
                            bytes: input.consumed() - start,
                            window: 0,
                            repeats: 0,
                        },
                        offset,
                    });
                }
            }
            _ => {
                let mut metas = Vec::with_capacity(usize::from(nodes));
                for node in 0..nodes {
                    metas.push(StreamMeta::parse(&mut input, node)?);
                }
                for (node, meta) in metas.into_iter().enumerate() {
                    let node = node as u16;
                    let offset = 8 + input.consumed();
                    let start = input.consumed();
                    let repeats_seen = scan_stream_v2(&mut input, node, &meta)?;
                    check_stream_end(node, &meta, input.consumed() - start, repeats_seen)?;
                    streams.push(StreamIndex { meta, offset });
                }
            }
        }
        if input.consumed() != body_len {
            return Err(TraceError::Corrupt(format!(
                "{} trailing bytes after the last stream",
                body_len - input.consumed()
            )));
        }
        let computed = input.into_inner().finish();

        let mut trailer = [0u8; 8];
        reader.read_exact(&mut trailer).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                TraceError::Corrupt("missing checksum trailer".to_string())
            } else {
                TraceError::Io(e)
            }
        })?;
        let stored = u64::from_le_bytes(trailer);
        if stored != computed {
            return Err(TraceError::Corrupt(format!(
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            )));
        }

        Ok(StreamingTrace {
            path,
            version,
            name: header.name,
            workload: header.workload,
            streams,
            file_bytes,
        })
    }

    /// The path the trace streams from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The file's format version (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// The workload name recorded in the header.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The geometry the trace was recorded at.
    pub fn workload(&self) -> WorkloadParams {
        self.workload
    }

    /// Number of nodes (one op stream each).
    pub fn nodes(&self) -> u16 {
        self.workload.nodes
    }

    /// Total operations across every node (after repeat expansion).
    pub fn total_ops(&self) -> u64 {
        self.streams.iter().map(|s| s.meta.ops).sum()
    }

    /// Operations in `node`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the trace's geometry.
    pub fn stream_ops(&self, node: u16) -> u64 {
        self.streams[usize::from(node)].meta.ops
    }

    /// Total repeat blocks across every stream (0 for v1 files).
    pub fn repeat_blocks(&self) -> u64 {
        self.streams.iter().map(|s| s.meta.repeats).sum()
    }

    /// The largest per-stream repeat window in the file — the most any
    /// node's streaming decoder will ever buffer, in ops.
    pub fn max_window(&self) -> u64 {
        self.streams
            .iter()
            .map(|s| s.meta.window)
            .max()
            .unwrap_or(0)
    }

    /// Encoded file size in bytes (magic, header, streams, and trailer).
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Builds one incremental replay [`Program`] per node. Each program
    /// holds its own file handle and a window-bounded decode state.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the file can no longer be opened.
    pub fn programs(trace: &Arc<StreamingTrace>) -> Result<Vec<Box<dyn Program>>, TraceError> {
        (0..trace.nodes())
            .map(|node| {
                StreamingTraceProgram::new(Arc::clone(trace), node)
                    .map(|p| Box::new(p) as Box<dyn Program>)
            })
            .collect()
    }

    /// Streams every node's ops once (node by node, O(window) memory) to
    /// produce the op-kind histogram and the exact byte size the same ops
    /// would occupy in format v1 — the heavy half of `trace-info`, without
    /// ever materializing the trace.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the file can no longer be opened.
    ///
    /// # Panics
    ///
    /// Panics (like replay itself) if the file changes on disk mid-scan.
    pub fn scan_stats(trace: &Arc<StreamingTrace>) -> Result<TraceScanStats, TraceError> {
        let mut counts = [0u64; 8];
        // v1 frame: magic + version + header + per-stream (count + ops) +
        // checksum trailer.
        let mut scratch = Vec::new();
        Header {
            name: trace.name.clone(),
            workload: trace.workload,
        }
        .encode(&mut scratch);
        let mut v1_bytes = (TRACE_MAGIC.len() + 1 + scratch.len() + 8) as u64;
        for node in 0..trace.nodes() {
            scratch.clear();
            super::codec::write_varint(&mut scratch, trace.stream_ops(node));
            v1_bytes += scratch.len() as u64;
            let mut state = DeltaState::new();
            let mut program = StreamingTraceProgram::new(Arc::clone(trace), node)?;
            while let Some(op) = program.next_op() {
                counts[super::op_kind_slot(&op)] += 1;
                scratch.clear();
                super::codec::encode_op(&mut scratch, &mut state, op);
                v1_bytes += scratch.len() as u64;
            }
        }
        Ok(TraceScanStats {
            histogram: std::array::from_fn(|i| (super::OP_KIND_NAMES[i], counts[i])),
            v1_bytes,
        })
    }
}

/// What [`StreamingTrace::scan_stats`] computes in one bounded-memory pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceScanStats {
    /// Op counts by kind, in [`super::Trace::op_histogram`]'s fixed order.
    pub histogram: [(&'static str, u64); 8],
    /// Exact encoded size of the same trace in format v1, in bytes — the
    /// denominator of the "how much did v2 save" comparison.
    pub v1_bytes: u64,
}

/// Replays one node's stream of a [`StreamingTrace`], decoding
/// incrementally from the file.
///
/// The program keeps a sliding window of the last `window` decoded ops
/// (the stream's declared repeat window) so repeat blocks can re-emit
/// them; nothing else of the stream is retained. File bytes arrive
/// through a per-cursor `ReadAheadInput` chunk buffer, so draining an op
/// costs an inline decode, not a `Read` call per encoded byte.
/// [`StreamingTraceProgram::peak_buffered_ops`] reports the high-water
/// mark, which tests assert against [`StreamingTraceProgram::window_ops`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
///
/// use ltp_workloads::{collect_ops, Benchmark, StreamingTrace, StreamingTraceProgram, Trace,
///                     WorkloadParams};
///
/// let params = WorkloadParams::quick(2, 4);
/// let trace = Trace::record(Benchmark::Em3d, &params);
/// let path = std::env::temp_dir().join(format!("ltp-doc-node-{}.ltrace", std::process::id()));
/// trace.save(&path).unwrap();
///
/// let streaming = Arc::new(StreamingTrace::open(&path).unwrap());
/// let mut program = StreamingTraceProgram::new(Arc::clone(&streaming), 1).unwrap();
/// assert_eq!(collect_ops(&mut program), trace.streams()[1]);
/// // Decode memory stayed within the declared repeat window.
/// assert!(program.peak_buffered_ops() <= 2 * program.window_ops().max(1));
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug)]
pub struct StreamingTraceProgram {
    trace: Arc<StreamingTrace>,
    node: u16,
    input: ReadAheadInput,
    state: DeltaState,
    /// Logical ops not yet emitted.
    remaining: u64,
    /// Repeat blocks decoded so far (validated against the header count).
    repeats_seen: u64,
    /// Sliding window of the last `window_ops` decoded ops. During a
    /// repeat expansion the window is *not* maintained per op — the
    /// expansion is periodic, so [`Self::fold_replay`] reconstructs the
    /// window (and delta state) from the body in O(window + body) when the
    /// next literal decode needs them.
    window: VecDeque<Op>,
    /// The body being (or last) re-emitted by a repeat block; kept until
    /// the finished expansion is folded into `window` and `state`.
    replay: Vec<Op>,
    replay_pos: usize,
    replay_left: u64,
    /// Ops the current/last repeat block covers — what `fold_replay` owes
    /// the window and delta state (0 once folded).
    replay_covered: u64,
    peak_buffered: usize,
}

impl StreamingTraceProgram {
    /// Opens an incremental replay cursor over `node`'s stream, seeking a
    /// fresh file handle to the stream's indexed offset.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the trace's geometry.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the file cannot be reopened.
    pub fn new(trace: Arc<StreamingTrace>, node: u16) -> Result<StreamingTraceProgram, TraceError> {
        assert!(
            node < trace.nodes(),
            "trace `{}` has {} nodes, no node {node}",
            trace.name(),
            trace.nodes()
        );
        let index = trace.streams[usize::from(node)];
        let file = File::open(&trace.path)?;
        let input = ReadAheadInput::new(file, index.offset, index.meta.bytes)?;
        Ok(StreamingTraceProgram {
            trace,
            node,
            input,
            state: DeltaState::new(),
            remaining: index.meta.ops,
            repeats_seen: 0,
            window: VecDeque::with_capacity(index.meta.window as usize),
            replay: Vec::new(),
            replay_pos: 0,
            replay_left: 0,
            replay_covered: 0,
            peak_buffered: 0,
        })
    }

    /// The stream's declared repeat window in ops (0 for v1 streams): the
    /// bound on what this program buffers.
    pub fn window_ops(&self) -> usize {
        self.meta().window as usize
    }

    /// High-water mark of ops buffered so far (window plus any in-flight
    /// repeat body) — what the memory-bound tests assert on.
    pub fn peak_buffered_ops(&self) -> usize {
        self.peak_buffered
    }

    fn meta(&self) -> &StreamMeta {
        &self.trace.streams[usize::from(self.node)].meta
    }

    /// Folds a finished repeat expansion into the window and delta state.
    ///
    /// Re-emitting a `body × reps` expansion does neither per op — the
    /// expansion is periodic, so only its final `window` ops (and the
    /// delta-chain values after them) can influence what decodes next.
    /// Walking a suffix of length `k ≡ covered (mod body)`, `k ≥ window`,
    /// reproduces both exactly: O(window + body) work per repeat block
    /// however many ops it covered, the same virtual expansion
    /// [`scan_stream_v2`] uses.
    fn fold_replay(&mut self) {
        if self.replay_covered == 0 {
            return;
        }
        let cap = self.meta().window as usize;
        let body = self.replay.len() as u64;
        let covered = self.replay_covered;
        let full = cap as u64 + body;
        let walk = if covered <= full + body {
            covered
        } else {
            full + (covered - full) % body
        };
        for i in 0..walk {
            let op = self.replay[(i % body) as usize];
            note_op(&mut self.state, op);
            push_ring(&mut self.window, cap, op);
        }
        self.replay.clear();
        self.replay_pos = 0;
        self.replay_covered = 0;
    }

    fn decode_next(&mut self) -> Result<Op, TraceError> {
        if self.replay_left > 0 {
            let op = self.replay[self.replay_pos];
            self.replay_pos += 1;
            if self.replay_pos == self.replay.len() {
                self.replay_pos = 0;
            }
            self.replay_left -= 1;
            return Ok(op);
        }
        self.fold_replay();
        let meta = *self.meta();
        let produced = meta.ops - self.remaining;
        let opcode = self.input.byte("opcode")?;
        if opcode == OP_REPEAT {
            let (body, covered) = validate_repeat(
                &mut self.input,
                self.node,
                produced,
                &meta,
                &mut self.repeats_seen,
            )?;
            debug_assert!(body as usize <= self.window.len());
            self.replay.clear();
            self.replay
                .extend(self.window.iter().skip(self.window.len() - body as usize));
            self.replay_pos = 0;
            self.replay_left = covered;
            self.replay_covered = covered;
            self.peak_buffered = self
                .peak_buffered
                .max(self.window.len() + self.replay.len());
            return self.decode_next();
        }
        let op = decode_op(&mut self.input, &mut self.state, opcode, self.node)?;
        push_ring(&mut self.window, meta.window as usize, op);
        self.peak_buffered = self.peak_buffered.max(self.window.len());
        Ok(op)
    }
}

impl Program for StreamingTraceProgram {
    fn len_hint(&self) -> Option<u64> {
        Some(self.meta().ops)
    }

    /// Emits the next recorded op, decoding from the file as needed.
    ///
    /// # Panics
    ///
    /// Panics if the file fails mid-replay — [`StreamingTrace::open`]
    /// validated the whole file, so this means the file was truncated,
    /// rewritten, or made unreadable after it was opened.
    fn next_op(&mut self) -> Option<Op> {
        if self.remaining == 0 {
            return None;
        }
        let op = self.decode_next().unwrap_or_else(|e| {
            panic!(
                "trace `{}` failed mid-stream on node {} (file changed since open?): {e}",
                self.trace.name(),
                self.node
            )
        });
        self.remaining -= 1;
        Some(op)
    }
}

/// Hashes every byte it passes through with FNV-1a 64 — how the single
/// validation pass of [`StreamingTrace::open`] computes the body checksum
/// without a second read.
#[derive(Debug)]
struct HashingReader<R> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hash: FNV_OFFSET,
        }
    }

    fn finish(self) -> u64 {
        self.hash
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        for &b in &buf[..n] {
            self.hash = fnv1a_step(self.hash, b);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;
    use crate::suite::Benchmark;
    use crate::trace::Trace;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ltp-stream-{}-{tag}.ltrace", std::process::id()))
    }

    #[test]
    fn streaming_matches_buffered_for_both_versions() {
        let params = WorkloadParams::quick(3, 4);
        let trace = Trace::record(Benchmark::Ocean, &params);
        for version in [TRACE_VERSION_V1, TRACE_VERSION] {
            let path = scratch(&format!("both-v{version}"));
            trace.save_version(&path, version).unwrap();
            let streaming = Arc::new(StreamingTrace::open(&path).unwrap());
            assert_eq!(streaming.version(), version);
            assert_eq!(streaming.name(), "ocean");
            assert_eq!(streaming.workload(), params);
            assert_eq!(streaming.total_ops(), trace.total_ops());
            let mut programs = StreamingTrace::programs(&streaming).unwrap();
            for (node, program) in programs.iter_mut().enumerate() {
                assert_eq!(
                    collect_ops(program.as_mut()),
                    trace.streams()[node],
                    "v{version} node {node}"
                );
            }
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn peak_memory_is_bounded_by_the_window() {
        // A long loop must replay within ~2 windows (ring + in-flight
        // body), not O(ops).
        let mut writer = super::super::TraceWriter::new("loop", WorkloadParams::quick(2, 1));
        for _ in 0..10_000 {
            writer.push(0, Op::Think(3));
            writer.push(
                0,
                Op::Read {
                    pc: ltp_core::Pc::new(0x10),
                    block: ltp_core::BlockId::new(5),
                },
            );
        }
        writer.push(1, Op::Think(1));
        writer.push(1, Op::Think(1));
        let trace = writer.finish();
        let path = scratch("window");
        trace.save(&path).unwrap();
        let streaming = Arc::new(StreamingTrace::open(&path).unwrap());
        assert!(streaming.repeat_blocks() > 0, "loop detected");
        let mut program = StreamingTraceProgram::new(Arc::clone(&streaming), 0).unwrap();
        let ops = collect_ops(&mut program);
        assert_eq!(ops, trace.streams()[0]);
        let window = program.window_ops();
        assert!((1..=4096).contains(&window), "window {window}");
        assert!(
            program.peak_buffered_ops() <= 2 * window,
            "peak {} vs window {window}",
            program.peak_buffered_ops()
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn open_rejects_what_read_from_rejects() {
        let params = WorkloadParams::quick(2, 1);
        let trace = Trace::record(Benchmark::Em3d, &params);
        let path = scratch("reject");
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();

        // Bit flip in the body: checksum mismatch.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x20;
        std::fs::write(&path, &flipped).unwrap();
        let err = StreamingTrace::open(&path).unwrap_err();
        assert!(
            err.to_string().contains("checksum") || err.to_string().contains("corrupt"),
            "{err}"
        );

        // Truncation.
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        assert!(matches!(
            StreamingTrace::open(&path).unwrap_err(),
            TraceError::Corrupt(_)
        ));

        // Wrong magic.
        let mut wrong = bytes.clone();
        wrong[0] = b'X';
        std::fs::write(&path, &wrong).unwrap();
        assert!(matches!(
            StreamingTrace::open(&path).unwrap_err(),
            TraceError::BadMagic
        ));

        // Future version.
        let mut future = bytes;
        future[7] = 9;
        std::fs::write(&path, &future).unwrap();
        assert!(matches!(
            StreamingTrace::open(&path).unwrap_err(),
            TraceError::UnsupportedVersion(9)
        ));

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_operand_values_are_rejected_at_open() {
        // A structurally valid, correctly-checksummed v1 file whose delta
        // chains reconstruct a PC beyond u32 must fail at open — exactly
        // where Trace::read_from fails — never mid-replay.
        use super::super::codec::{fnv1a, write_varint, zigzag, OP_READ};
        let mut body = Vec::new();
        write_varint(&mut body, 1);
        body.push(b'x');
        write_varint(&mut body, 2); // nodes
        write_varint(&mut body, 0); // seed
        body.push(0); // iters_flag
        write_varint(&mut body, 1); // node 0: one op
        body.push(OP_READ);
        write_varint(&mut body, zigzag(1 << 33)); // pc delta beyond u32
        write_varint(&mut body, zigzag(0));
        write_varint(&mut body, 0); // node 1: empty
        let mut file = Vec::new();
        file.extend_from_slice(&TRACE_MAGIC);
        file.push(TRACE_VERSION_V1);
        file.extend_from_slice(&body);
        file.extend_from_slice(&fnv1a(&body).to_le_bytes());

        let buffered = Trace::read_from(&file[..]).unwrap_err();
        assert!(buffered.to_string().contains("exceeds u32"), "{buffered}");

        let path = scratch("pc-range");
        std::fs::write(&path, &file).unwrap();
        let streamed = StreamingTrace::open(&path).unwrap_err();
        assert!(streamed.to_string().contains("exceeds u32"), "{streamed}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_node_panics() {
        let params = WorkloadParams::quick(2, 1);
        let trace = Trace::record(Benchmark::Em3d, &params);
        let path = scratch("node-range");
        trace.save(&path).unwrap();
        let streaming = Arc::new(StreamingTrace::open(&path).unwrap());
        let result = std::panic::catch_unwind(|| {
            StreamingTraceProgram::new(Arc::clone(&streaming), 7).unwrap()
        });
        assert!(result.is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
