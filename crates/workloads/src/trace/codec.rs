//! Shared byte-level primitives of the `.ltrace` codecs.
//!
//! Both format versions and both decoders (the buffered [`super::Trace`]
//! reader and the incremental [`super::stream`] reader) are built from the
//! pieces here: LEB128 varints, ZigZag mapping, the per-stream delta state,
//! the opcode table, and a [`TraceInput`] abstraction that lets the same
//! decode functions run over an in-memory slice or an incremental
//! [`std::io::Read`] source.

use std::io::{self, Read};

use ltp_core::{BlockId, Pc};

use crate::program::{Lock, Op};

use super::TraceError;

// ---- opcode table (shared by v1 and v2) -----------------------------------

pub(crate) const OP_THINK: u8 = 0x00;
pub(crate) const OP_READ: u8 = 0x01;
pub(crate) const OP_WRITE: u8 = 0x02;
pub(crate) const OP_LOCK_EXPOSED: u8 = 0x03;
pub(crate) const OP_LOCK_ADHOC: u8 = 0x04;
pub(crate) const OP_UNLOCK_EXPOSED: u8 = 0x05;
pub(crate) const OP_UNLOCK_ADHOC: u8 = 0x06;
pub(crate) const OP_BARRIER: u8 = 0x07;
pub(crate) const OP_FLAG_SET: u8 = 0x08;
pub(crate) const OP_FLAG_WAIT: u8 = 0x09;
/// Version-2 repeat block: `0x0A body:varint reps:varint` — "repeat the
/// previous `body` decoded operations `reps` more times".
pub(crate) const OP_REPEAT: u8 = 0x0A;

// ---- input abstraction ----------------------------------------------------

/// A byte source the decoders read from.
///
/// Implemented by [`SliceInput`] (the buffered whole-file path) and
/// [`IoInput`] (the incremental streaming path). All decode errors are
/// [`TraceError`]s naming what was being read when the source ran dry.
pub(crate) trait TraceInput {
    /// Reads one byte, or reports truncation naming `what`.
    fn byte(&mut self, what: &str) -> Result<u8, TraceError>;

    /// Reads `len` bytes (small lengths only: names and fixed trailers).
    fn take(&mut self, len: usize, what: &str) -> Result<Vec<u8>, TraceError> {
        let mut out = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            out.push(self.byte(what)?);
        }
        Ok(out)
    }
}

/// Cursor over an in-memory body slice.
pub(crate) struct SliceInput<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> SliceInput<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        SliceInput { buf, pos: 0 }
    }
}

impl TraceInput for SliceInput<'_> {
    fn byte(&mut self, what: &str) -> Result<u8, TraceError> {
        let Some(&b) = self.buf.get(self.pos) else {
            return Err(TraceError::Corrupt(format!(
                "truncated while reading {what}"
            )));
        };
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, len: usize, what: &str) -> Result<Vec<u8>, TraceError> {
        let Some(bytes) = self
            .pos
            .checked_add(len)
            .and_then(|end| self.buf.get(self.pos..end))
        else {
            return Err(TraceError::Corrupt(format!(
                "truncated while reading {what}"
            )));
        };
        self.pos += len;
        Ok(bytes.to_vec())
    }
}

/// Incremental source over any [`Read`], counting consumed bytes.
///
/// The streaming decoder and the [`super::stream::StreamingTrace::open`]
/// validation scan both read through this; `consumed` is what turns a
/// sequential scan into the per-stream byte offsets of the file index.
#[derive(Debug)]
pub(crate) struct IoInput<R: Read> {
    inner: R,
    consumed: u64,
}

impl<R: Read> IoInput<R> {
    pub(crate) fn new(inner: R) -> Self {
        IoInput { inner, consumed: 0 }
    }

    /// Bytes read since construction.
    pub(crate) fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Recovers the wrapped reader.
    pub(crate) fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> TraceInput for IoInput<R> {
    fn byte(&mut self, what: &str) -> Result<u8, TraceError> {
        let mut buf = [0u8; 1];
        loop {
            match self.inner.read(&mut buf) {
                Ok(0) => {
                    return Err(TraceError::Corrupt(format!(
                        "truncated while reading {what}"
                    )))
                }
                Ok(_) => {
                    self.consumed += 1;
                    return Ok(buf[0]);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(TraceError::Io(e)),
            }
        }
    }
}

// ---- varint / zigzag ------------------------------------------------------

/// LEB128 unsigned varint.
pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint, rejecting encodings longer than 64 bits.
pub(crate) fn read_varint<I: TraceInput + ?Sized>(
    input: &mut I,
    what: &str,
) -> Result<u64, TraceError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = input.byte(what)?;
        if shift == 63 && byte > 1 {
            return Err(TraceError::Corrupt(format!("varint overflow in {what}")));
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(TraceError::Corrupt(format!("varint too long in {what}")));
        }
    }
}

/// ZigZag-maps a signed delta so small magnitudes stay small unsigned.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// FNV-1a 64-bit (cheap whole-file corruption detection).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash = fnv1a_step(hash, b);
    }
    hash
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// One FNV-1a folding step (used byte-at-a-time by the streaming scan).
pub(crate) fn fnv1a_step(hash: u64, byte: u8) -> u64 {
    (hash ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3)
}

// ---- delta state ----------------------------------------------------------

/// Per-stream running-previous values for delta encoding. PCs share one
/// chain across every PC-carrying operand (including the three PCs of a
/// lock), block ids another. Both reset to 0 at the start of each stream.
#[derive(Debug)]
pub(crate) struct DeltaState {
    pub(crate) prev_pc: u64,
    pub(crate) prev_block: u64,
}

impl DeltaState {
    pub(crate) fn new() -> Self {
        DeltaState {
            prev_pc: 0,
            prev_block: 0,
        }
    }
}

/// Advances the delta chains over an op whose absolute operands are already
/// known — the decoder's bookkeeping for ops produced by repeat-block
/// expansion rather than literal decoding. Mirrors the operand order of
/// [`encode_op`]: the last PC written for a lock is its release PC.
pub(crate) fn note_op(state: &mut DeltaState, op: Op) {
    match op {
        Op::Think(_) | Op::Barrier(_) => {}
        Op::Read { pc, block }
        | Op::Write { pc, block }
        | Op::FlagSet { pc, block }
        | Op::FlagWait { pc, block } => {
            state.prev_pc = u64::from(pc.value());
            state.prev_block = block.index();
        }
        Op::Lock(lock) | Op::Unlock(lock) => {
            state.prev_block = lock.block.index();
            state.prev_pc = u64::from(lock.release_pc.value());
        }
    }
}

// ---- op encode / decode ---------------------------------------------------

pub(crate) fn encode_op(out: &mut Vec<u8>, state: &mut DeltaState, op: Op) {
    match op {
        Op::Think(cycles) => {
            out.push(OP_THINK);
            write_varint(out, cycles);
        }
        Op::Read { pc, block } => {
            out.push(OP_READ);
            write_pc(out, state, pc);
            write_block(out, state, block);
        }
        Op::Write { pc, block } => {
            out.push(OP_WRITE);
            write_pc(out, state, pc);
            write_block(out, state, block);
        }
        Op::Lock(lock) => {
            out.push(if lock.exposed {
                OP_LOCK_EXPOSED
            } else {
                OP_LOCK_ADHOC
            });
            write_lock(out, state, lock);
        }
        Op::Unlock(lock) => {
            out.push(if lock.exposed {
                OP_UNLOCK_EXPOSED
            } else {
                OP_UNLOCK_ADHOC
            });
            write_lock(out, state, lock);
        }
        Op::Barrier(id) => {
            out.push(OP_BARRIER);
            write_varint(out, u64::from(id));
        }
        Op::FlagSet { pc, block } => {
            out.push(OP_FLAG_SET);
            write_pc(out, state, pc);
            write_block(out, state, block);
        }
        Op::FlagWait { pc, block } => {
            out.push(OP_FLAG_WAIT);
            write_pc(out, state, pc);
            write_block(out, state, block);
        }
    }
}

/// Decodes one literal op given its already-read `opcode`.
pub(crate) fn decode_op<I: TraceInput + ?Sized>(
    input: &mut I,
    state: &mut DeltaState,
    opcode: u8,
    node: u16,
) -> Result<Op, TraceError> {
    Ok(match opcode {
        OP_THINK => Op::Think(read_varint(input, "think cycles")?),
        OP_READ => Op::Read {
            pc: read_pc(input, state)?,
            block: read_block(input, state)?,
        },
        OP_WRITE => Op::Write {
            pc: read_pc(input, state)?,
            block: read_block(input, state)?,
        },
        OP_LOCK_EXPOSED => Op::Lock(read_lock(input, state, true)?),
        OP_LOCK_ADHOC => Op::Lock(read_lock(input, state, false)?),
        OP_UNLOCK_EXPOSED => Op::Unlock(read_lock(input, state, true)?),
        OP_UNLOCK_ADHOC => Op::Unlock(read_lock(input, state, false)?),
        OP_BARRIER => {
            let id = read_varint(input, "barrier id")?;
            Op::Barrier(
                u32::try_from(id)
                    .map_err(|_| TraceError::Corrupt(format!("barrier id {id} exceeds u32")))?,
            )
        }
        OP_FLAG_SET => Op::FlagSet {
            pc: read_pc(input, state)?,
            block: read_block(input, state)?,
        },
        OP_FLAG_WAIT => Op::FlagWait {
            pc: read_pc(input, state)?,
            block: read_block(input, state)?,
        },
        other => {
            return Err(TraceError::Corrupt(format!(
                "unknown opcode {other:#04x} in node {node}'s stream"
            )))
        }
    })
}

fn write_lock(out: &mut Vec<u8>, state: &mut DeltaState, lock: Lock) {
    write_block(out, state, lock.block);
    write_pc(out, state, lock.spin_pc);
    write_pc(out, state, lock.tas_pc);
    write_pc(out, state, lock.release_pc);
}

fn read_lock<I: TraceInput + ?Sized>(
    input: &mut I,
    state: &mut DeltaState,
    exposed: bool,
) -> Result<Lock, TraceError> {
    Ok(Lock {
        block: read_block(input, state)?,
        spin_pc: read_pc(input, state)?,
        tas_pc: read_pc(input, state)?,
        release_pc: read_pc(input, state)?,
        exposed,
    })
}

fn write_pc(out: &mut Vec<u8>, state: &mut DeltaState, pc: Pc) {
    let value = u64::from(pc.value());
    write_varint(out, zigzag(value.wrapping_sub(state.prev_pc) as i64));
    state.prev_pc = value;
}

fn read_pc<I: TraceInput + ?Sized>(
    input: &mut I,
    state: &mut DeltaState,
) -> Result<Pc, TraceError> {
    let delta = unzigzag(read_varint(input, "pc delta")?);
    let value = state.prev_pc.wrapping_add(delta as u64);
    state.prev_pc = value;
    let pc = u32::try_from(value)
        .map_err(|_| TraceError::Corrupt(format!("pc {value:#x} exceeds u32")))?;
    Ok(Pc::new(pc))
}

fn write_block(out: &mut Vec<u8>, state: &mut DeltaState, block: BlockId) {
    let value = block.index();
    write_varint(out, zigzag(value.wrapping_sub(state.prev_block) as i64));
    state.prev_block = value;
}

fn read_block<I: TraceInput + ?Sized>(
    input: &mut I,
    state: &mut DeltaState,
) -> Result<BlockId, TraceError> {
    let delta = unzigzag(read_varint(input, "block delta")?);
    let value = state.prev_block.wrapping_add(delta as u64);
    state.prev_block = value;
    Ok(BlockId::new(value))
}
