//! Trace capture and replay: the `.ltrace` on-disk workload format.
//!
//! The paper's evaluation is trace-driven — the predictors learn last-touch
//! *traces* of PCs — and this module makes traces a first-class workload
//! source: any benchmark's per-node [`Op`] streams can be captured once with
//! a [`TraceWriter`] (or the [`Trace::record`] shorthand), serialized to a
//! compact, versioned binary file, and replayed anywhere as a
//! [`crate::WorkloadSource::Trace`] — mixable with synthetic benchmarks in
//! one sweep. Because programs are deterministic and policy-independent,
//! replaying a recorded trace under any policy produces reports
//! bit-identical to running the original synthetic kernel.
//!
//! # Format versions
//!
//! Two format versions exist; both are read transparently (the decode
//! dispatches on the version byte) and writing defaults to the current
//! version. `docs/manual.md` §7 is the normative byte-level specification
//! of both.
//!
//! * **Version 1** — delta + varint coding: all multi-byte integers are
//!   LEB128 varints; PCs and block ids are delta-encoded against per-stream
//!   running previous values (wrapping subtraction, ZigZag, varint), so the
//!   hot repeated-stride streams of the stencil kernels compress to one or
//!   two bytes per operand (≈2.5–4 B/op).
//! * **Version 2** (current) — everything of v1, plus **repeat blocks**: a
//!   per-stream loop detector ([`detect_repeats`]) recognizes `body^N`
//!   repetition — the dominant shape of every `LoopedScript` benchmark —
//!   and emits each repeated region as a single `(body, reps)` block, so
//!   on-disk size approaches O(one iteration) (≤0.5 B/op on the loop-shaped
//!   kernels). The v2 header also carries per-stream op counts, encoded
//!   byte lengths, repeat-window sizes, and repeat-block counts, which is
//!   what lets [`StreamingTrace`] index, validate, and replay a file
//!   incrementally with a bounded per-node window instead of materializing
//!   every op in memory.
//!
//! Byte-level layout sketch (see the manual for the full spec):
//!
//! ```text
//! file    := magic version body checksum
//! magic   := "LTRACE\0"              ; 7 bytes
//! version := u8                      ; 1 or 2
//! body    := header stream*                          ; v1
//! body    := header stream_meta* stream*             ; v2
//! header  := name_len:varint name:utf8
//!            nodes:varint seed:varint
//!            iters_flag:u8 [iters:varint if flag = 1]
//! stream_meta := ops:varint bytes:varint window:varint repeats:varint
//! stream  := op_count:varint op*     ; v1: one stream per node, node 0 first
//! stream  := item*                   ; v2: exactly `bytes` bytes
//! item    := op | repeat
//! op      := opcode:u8 payload       ; opcodes 0x00–0x09
//! repeat  := 0x0A body:varint reps:varint
//! checksum:= u64le                   ; FNV-1a 64 over body
//! ```
//!
//! # Examples
//!
//! Record a benchmark, round-trip it through bytes, and replay:
//!
//! ```
//! use ltp_workloads::{collect_ops, Benchmark, Trace, WorkloadParams};
//!
//! let params = WorkloadParams::quick(4, 2);
//! let trace = Trace::record(Benchmark::Em3d, &params);
//! assert_eq!(trace.name(), "em3d");
//! assert_eq!(trace.nodes(), 4);
//!
//! let mut bytes = Vec::new();
//! trace.write_to(&mut bytes).unwrap();
//! let back = Trace::read_from(&bytes[..]).unwrap();
//! assert_eq!(back, trace);
//!
//! // Replay programs emit exactly the recorded streams.
//! let mut programs = back.into_programs();
//! let ops = collect_ops(programs[0].as_mut());
//! assert_eq!(&ops[..], &trace.streams()[0][..]);
//! ```

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use crate::program::{Op, Program};
use crate::suite::{Benchmark, WorkloadParams};

pub(crate) mod codec;
pub mod gen;
pub mod repeat;
pub mod stream;

pub use gen::random_trace;
pub use repeat::{detect_repeats, Segment, MAX_REPEAT_BODY};
pub use stream::{StreamingTrace, StreamingTraceProgram, TraceScanStats};

use codec::{
    decode_op, encode_op, fnv1a, note_op, read_varint, write_varint, DeltaState, SliceInput,
    TraceInput, OP_REPEAT,
};

/// The 7-byte file magic opening every `.ltrace` file.
pub const TRACE_MAGIC: [u8; 7] = *b"LTRACE\0";

/// The current trace format version (what [`Trace::write_to`] emits).
pub const TRACE_VERSION: u8 = 2;

/// The original (still fully readable) trace format version.
pub const TRACE_VERSION_V1: u8 = 1;

/// Largest per-stream repeat window (in ops) a conforming reader must
/// accept — and therefore the most a streaming replay ever has to buffer
/// per node. Files declaring a larger window are rejected as corrupt. The
/// in-tree writer stays far below this (see [`MAX_REPEAT_BODY`]).
pub const MAX_STREAM_WINDOW: u64 = 1 << 16;

/// Most ops per stream the *buffered* decoder ([`Trace::read_from`]) will
/// materialize.
///
/// Repeat blocks make v2 a real decompressor: a few file bytes can declare
/// trillions of ops, and fully decoding such a file is an OOM, not a
/// workload. Streams above this cap (2³¹ ops ≈ 80 GB of decoded `Op`s,
/// beyond any sensible buffered replay) are a clean error pointing at
/// [`StreamingTrace`], whose open/validate/replay costs stay bounded
/// regardless of the declared op count.
pub const MAX_BUFFERED_OPS: u64 = 1 << 31;

/// Error produced while reading or writing a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The file does not begin with [`TRACE_MAGIC`].
    BadMagic,
    /// The file's version byte is not one this build understands.
    UnsupportedVersion(u8),
    /// The file is structurally invalid (truncated, bad checksum, unknown
    /// opcode, …); the message names the first violation found.
    Corrupt(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic; expected LTRACE)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads 1..={TRACE_VERSION})"
                )
            }
            TraceError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// The recorded workload identity every trace header carries, shared by the
/// buffered and streaming readers.
#[derive(Debug, Clone)]
pub(crate) struct Header {
    pub(crate) name: String,
    pub(crate) workload: WorkloadParams,
}

impl Header {
    fn encode(&self, body: &mut Vec<u8>) {
        write_varint(body, self.name.len() as u64);
        body.extend_from_slice(self.name.as_bytes());
        write_varint(body, u64::from(self.workload.nodes));
        write_varint(body, self.workload.seed);
        match self.workload.iterations {
            None => body.push(0),
            Some(iters) => {
                body.push(1);
                write_varint(body, u64::from(iters));
            }
        }
    }

    pub(crate) fn parse<I: TraceInput + ?Sized>(input: &mut I) -> Result<Header, TraceError> {
        let name_len = read_varint(input, "name length")? as usize;
        let name_bytes = input.take(name_len, "name")?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| TraceError::Corrupt("name is not UTF-8".to_string()))?;
        let nodes = read_varint(input, "node count")?;
        let nodes = u16::try_from(nodes)
            .map_err(|_| TraceError::Corrupt(format!("node count {nodes} exceeds u16")))?;
        if nodes < 2 {
            return Err(TraceError::Corrupt(format!(
                "node count must be at least 2, got {nodes}"
            )));
        }
        let seed = read_varint(input, "seed")?;
        let iterations = match input.byte("iteration flag")? {
            0 => None,
            1 => {
                let iters = read_varint(input, "iteration count")?;
                Some(u32::try_from(iters).map_err(|_| {
                    TraceError::Corrupt(format!("iteration count {iters} exceeds u32"))
                })?)
            }
            flag => {
                return Err(TraceError::Corrupt(format!(
                    "iteration flag must be 0 or 1, got {flag}"
                )))
            }
        };
        Ok(Header {
            name,
            workload: WorkloadParams {
                nodes,
                seed,
                iterations,
            },
        })
    }
}

/// The v2 per-stream header record: op count, encoded byte length, repeat
/// window (the largest repeat body in the stream, 0 if none), and repeat
/// block count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct StreamMeta {
    pub(crate) ops: u64,
    pub(crate) bytes: u64,
    pub(crate) window: u64,
    pub(crate) repeats: u64,
}

impl StreamMeta {
    fn encode(&self, body: &mut Vec<u8>) {
        write_varint(body, self.ops);
        write_varint(body, self.bytes);
        write_varint(body, self.window);
        write_varint(body, self.repeats);
    }

    pub(crate) fn parse<I: TraceInput + ?Sized>(
        input: &mut I,
        node: u16,
    ) -> Result<StreamMeta, TraceError> {
        let ops = read_varint(input, "stream op count")?;
        let bytes = read_varint(input, "stream byte length")?;
        let window = read_varint(input, "stream repeat window")?;
        if window > MAX_STREAM_WINDOW {
            return Err(TraceError::Corrupt(format!(
                "node {node}'s repeat window {window} exceeds the format \
                 maximum {MAX_STREAM_WINDOW}"
            )));
        }
        let repeats = read_varint(input, "stream repeat count")?;
        Ok(StreamMeta {
            ops,
            bytes,
            window,
            repeats,
        })
    }
}

/// A captured workload: a name, the geometry it was recorded at, and one
/// [`Op`] stream per node.
///
/// A trace pins its machine geometry — the stream count *is* the node
/// count — so replay always runs at the recorded size; seed and iteration
/// metadata ride along so a replayed run reports the same
/// [`WorkloadParams`] as the run it was recorded from.
///
/// `Trace` materializes every op in memory; for traces too large for that,
/// replay through [`StreamingTrace`] instead, which decodes each node's
/// stream incrementally from the file with a bounded window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    workload: WorkloadParams,
    streams: Vec<Vec<Op>>,
}

impl Trace {
    /// Captures the per-node op streams of `benchmark` at `params`.
    ///
    /// Programs are deterministic and independent of the coherence policy,
    /// so this drains the instruction streams directly — no simulation is
    /// required, and a replay under any policy is bit-identical to the
    /// synthetic run.
    pub fn record(benchmark: Benchmark, params: &WorkloadParams) -> Trace {
        let mut writer = TraceWriter::new(benchmark.name(), *params);
        for (node, program) in benchmark.programs(params).iter_mut().enumerate() {
            writer.record_program(node as u16, program.as_mut());
        }
        writer.finish()
    }

    /// The workload name recorded in the header (a benchmark name for
    /// in-tree recordings; external producers may use any label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The geometry the trace was recorded at.
    pub fn workload(&self) -> WorkloadParams {
        self.workload
    }

    /// Number of nodes (one op stream each).
    pub fn nodes(&self) -> u16 {
        self.workload.nodes
    }

    /// The per-node op streams, node 0 first.
    pub fn streams(&self) -> &[Vec<Op>] {
        &self.streams
    }

    /// Total operations across every node.
    pub fn total_ops(&self) -> u64 {
        self.streams.iter().map(|s| s.len() as u64).sum()
    }

    /// Builds one replay [`Program`] per node from a shared trace.
    ///
    /// The streams are shared (not cloned) between the returned programs,
    /// so replaying a large trace costs one cursor per node.
    pub fn programs(trace: &Arc<Trace>) -> Vec<Box<dyn Program>> {
        (0..trace.nodes())
            .map(|node| Box::new(TraceProgram::new(Arc::clone(trace), node)) as Box<dyn Program>)
            .collect()
    }

    /// Consumes the trace into per-node replay programs (convenience over
    /// [`Trace::programs`] for single-use traces).
    pub fn into_programs(self) -> Vec<Box<dyn Program>> {
        Trace::programs(&Arc::new(self))
    }

    /// Serializes the trace in the current format version
    /// ([`TRACE_VERSION`]).
    ///
    /// # Errors
    ///
    /// Returns any error of the underlying writer.
    pub fn write_to<W: Write>(&self, out: W) -> io::Result<()> {
        match self.write_to_version(out, TRACE_VERSION) {
            Ok(()) => Ok(()),
            Err(TraceError::Io(e)) => Err(e),
            Err(other) => unreachable!("non-I/O error writing current version: {other}"),
        }
    }

    /// Serializes the trace in an explicit format version (1 or 2) — for
    /// interoperating with older readers and for backward-compatibility
    /// testing.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnsupportedVersion`] for unknown versions and
    /// [`TraceError::Io`] for writer failures.
    pub fn write_to_version<W: Write>(&self, mut out: W, version: u8) -> Result<(), TraceError> {
        let body = match version {
            TRACE_VERSION_V1 => self.encode_body_v1(),
            TRACE_VERSION => self.encode_body_v2(),
            other => return Err(TraceError::UnsupportedVersion(other)),
        };
        out.write_all(&TRACE_MAGIC)?;
        out.write_all(&[version])?;
        out.write_all(&body)?;
        out.write_all(&fnv1a(&body).to_le_bytes())?;
        out.flush()?;
        Ok(())
    }

    fn header(&self) -> Header {
        Header {
            name: self.name.clone(),
            workload: self.workload,
        }
    }

    fn encode_body_v1(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(64 + self.total_ops() as usize * 3);
        self.header().encode(&mut body);
        for stream in &self.streams {
            write_varint(&mut body, stream.len() as u64);
            let mut state = DeltaState::new();
            for &op in stream {
                encode_op(&mut body, &mut state, op);
            }
        }
        body
    }

    fn encode_body_v2(&self) -> Vec<u8> {
        let mut encoded: Vec<(StreamMeta, Vec<u8>)> = Vec::with_capacity(self.streams.len());
        for ops in &self.streams {
            encoded.push(encode_stream_v2(ops));
        }
        let mut body = Vec::with_capacity(64 + encoded.iter().map(|(_, b)| b.len()).sum::<usize>());
        self.header().encode(&mut body);
        for (meta, _) in &encoded {
            meta.encode(&mut body);
        }
        for (_, bytes) in &encoded {
            body.extend_from_slice(bytes);
        }
        body
    }

    /// Deserializes a trace from any reader, dispatching on the file's
    /// version byte — v1 and v2 files load identically.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] naming the first problem found: wrong
    /// magic, unsupported version, I/O failure, or corruption (truncation,
    /// checksum mismatch, unknown opcode, malformed varint, invalid repeat
    /// block, …).
    pub fn read_from<R: Read>(mut input: R) -> Result<Trace, TraceError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        if bytes.len() < TRACE_MAGIC.len() + 1 || bytes[..TRACE_MAGIC.len()] != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = bytes[TRACE_MAGIC.len()];
        if !(TRACE_VERSION_V1..=TRACE_VERSION).contains(&version) {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let payload = &bytes[TRACE_MAGIC.len() + 1..];
        if payload.len() < 8 {
            return Err(TraceError::Corrupt("missing checksum trailer".to_string()));
        }
        let (body, trailer) = payload.split_at(payload.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte split"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(TraceError::Corrupt(format!(
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            )));
        }

        let mut input = SliceInput::new(body);
        let header = Header::parse(&mut input)?;
        let streams = match version {
            TRACE_VERSION_V1 => decode_streams_v1(&mut input, header.workload.nodes)?,
            _ => decode_streams_v2(&mut input, header.workload.nodes)?,
        };
        if input.pos != input.buf.len() {
            return Err(TraceError::Corrupt(format!(
                "{} trailing bytes after the last stream",
                input.buf.len() - input.pos
            )));
        }
        Ok(Trace {
            name: header.name,
            workload: header.workload,
            streams,
        })
    }

    /// Writes the trace to `path` (conventionally `*.ltrace`) in the
    /// current format version.
    ///
    /// # Errors
    ///
    /// Returns any error from creating or writing the file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_to(io::BufWriter::new(file))
    }

    /// Writes the trace to `path` in an explicit format version (1 or 2).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnsupportedVersion`] for unknown versions and
    /// [`TraceError::Io`] for file failures.
    pub fn save_version<P: AsRef<Path>>(&self, path: P, version: u8) -> Result<(), TraceError> {
        let file = std::fs::File::create(path)?;
        self.write_to_version(io::BufWriter::new(file), version)
    }

    /// Reads a trace from `path` (either format version).
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] for I/O failures or malformed content.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Trace, TraceError> {
        Trace::read_from(std::fs::File::open(path)?)
    }

    /// Counts operations by kind across every node, in the fixed order
    /// `think, read, write, lock, unlock, barrier, flag-set, flag-wait`
    /// (the `trace-info` inspector's histogram).
    pub fn op_histogram(&self) -> [(&'static str, u64); 8] {
        let mut counts = [0u64; 8];
        for stream in &self.streams {
            for op in stream {
                counts[op_kind_slot(op)] += 1;
            }
        }
        std::array::from_fn(|i| (OP_KIND_NAMES[i], counts[i]))
    }
}

/// Histogram kind names, in slot order (see [`Trace::op_histogram`]).
pub(crate) const OP_KIND_NAMES: [&str; 8] = [
    "think",
    "read",
    "write",
    "lock",
    "unlock",
    "barrier",
    "flag-set",
    "flag-wait",
];

/// The histogram slot of one op.
pub(crate) fn op_kind_slot(op: &Op) -> usize {
    match op {
        Op::Think(_) => 0,
        Op::Read { .. } => 1,
        Op::Write { .. } => 2,
        Op::Lock(_) => 3,
        Op::Unlock(_) => 4,
        Op::Barrier(_) => 5,
        Op::FlagSet { .. } => 6,
        Op::FlagWait { .. } => 7,
    }
}

/// Encodes one stream in the v2 format: loop-detect, then emit literal ops
/// and repeat blocks.
fn encode_stream_v2(ops: &[Op]) -> (StreamMeta, Vec<u8>) {
    let mut out = Vec::with_capacity(16 + ops.len().min(1 << 20) * 3);
    let mut state = DeltaState::new();
    let mut window = 0u64;
    let mut repeats = 0u64;
    let mut pos = 0usize;
    for segment in detect_repeats(ops, MAX_REPEAT_BODY) {
        match segment {
            Segment::Literal { len } => {
                for &op in &ops[pos..pos + len] {
                    encode_op(&mut out, &mut state, op);
                }
                pos += len;
            }
            Segment::Repeat { body, reps } => {
                out.push(OP_REPEAT);
                write_varint(&mut out, body as u64);
                write_varint(&mut out, reps);
                // The expanded ops never hit the wire, but the delta chains
                // advance over them as if they had (the decoder does the
                // same while expanding).
                let covered = body * reps as usize;
                for &op in &ops[pos..pos + covered] {
                    note_op(&mut state, op);
                }
                pos += covered;
                window = window.max(body as u64);
                repeats += 1;
            }
        }
    }
    debug_assert_eq!(pos, ops.len(), "segments cover the stream");
    (
        StreamMeta {
            ops: ops.len() as u64,
            bytes: out.len() as u64,
            window,
            repeats,
        },
        out,
    )
}

fn decode_streams_v1(input: &mut SliceInput<'_>, nodes: u16) -> Result<Vec<Vec<Op>>, TraceError> {
    let mut streams = Vec::with_capacity(usize::from(nodes));
    for node in 0..nodes {
        let count = read_varint(input, "op count")? as usize;
        let mut stream = Vec::with_capacity(count.min(1 << 24));
        let mut state = DeltaState::new();
        for _ in 0..count {
            let opcode = input.byte("opcode")?;
            stream.push(decode_op(input, &mut state, opcode, node)?);
        }
        streams.push(stream);
    }
    Ok(streams)
}

fn decode_streams_v2(input: &mut SliceInput<'_>, nodes: u16) -> Result<Vec<Vec<Op>>, TraceError> {
    let mut metas = Vec::with_capacity(usize::from(nodes));
    for node in 0..nodes {
        metas.push(StreamMeta::parse(input, node)?);
    }
    let mut streams = Vec::with_capacity(usize::from(nodes));
    for (node, meta) in metas.iter().enumerate() {
        let node = node as u16;
        if meta.ops > MAX_BUFFERED_OPS {
            return Err(TraceError::Corrupt(format!(
                "node {node} declares {} ops, beyond the buffered decoder's \
                 cap of {MAX_BUFFERED_OPS} (replay this file with the \
                 streaming reader instead)",
                meta.ops
            )));
        }
        let start = input.pos;
        let mut stream: Vec<Op> = Vec::with_capacity((meta.ops as usize).min(1 << 24));
        let mut state = DeltaState::new();
        let mut repeats_seen = 0u64;
        while (stream.len() as u64) < meta.ops {
            let opcode = input.byte("opcode")?;
            if opcode == OP_REPEAT {
                let (body, covered) =
                    validate_repeat(input, node, stream.len() as u64, meta, &mut repeats_seen)?;
                for _ in 0..covered {
                    let op = stream[stream.len() - body as usize];
                    note_op(&mut state, op);
                    stream.push(op);
                }
            } else {
                stream.push(decode_op(input, &mut state, opcode, node)?);
            }
        }
        let consumed = (input.pos - start) as u64;
        check_stream_end(node, meta, consumed, repeats_seen)?;
        streams.push(stream);
    }
    Ok(streams)
}

/// Reads and validates one repeat block against the stream's declared
/// metadata and the ops produced so far; returns `(body, covered)` where
/// `covered = body × reps` is overflow-checked. Shared by the buffered
/// decoder, the streaming validation scan, and the streaming replay.
pub(crate) fn validate_repeat<I: TraceInput + ?Sized>(
    input: &mut I,
    node: u16,
    produced: u64,
    meta: &StreamMeta,
    repeats_seen: &mut u64,
) -> Result<(u64, u64), TraceError> {
    let body = read_varint(input, "repeat body")?;
    let reps = read_varint(input, "repeat count")?;
    if body == 0 || reps == 0 {
        return Err(TraceError::Corrupt(format!(
            "node {node}: repeat block with zero body or count"
        )));
    }
    if body > meta.window {
        return Err(TraceError::Corrupt(format!(
            "node {node}: repeat body {body} exceeds the stream's declared \
             window {}",
            meta.window
        )));
    }
    if body > produced {
        return Err(TraceError::Corrupt(format!(
            "node {node}: repeat body {body} reaches before the stream's \
             first op ({produced} decoded so far)"
        )));
    }
    let covered = body
        .checked_mul(reps)
        .filter(|covered| {
            produced
                .checked_add(*covered)
                .is_some_and(|t| t <= meta.ops)
        })
        .ok_or_else(|| {
            TraceError::Corrupt(format!(
                "node {node}: repeat block overruns the declared op count \
                 ({produced} + {body}×{reps} > {})",
                meta.ops
            ))
        })?;
    *repeats_seen += 1;
    Ok((body, covered))
}

/// Verifies a fully-decoded v2 stream against its declared metadata.
pub(crate) fn check_stream_end(
    node: u16,
    meta: &StreamMeta,
    consumed: u64,
    repeats_seen: u64,
) -> Result<(), TraceError> {
    if consumed != meta.bytes {
        return Err(TraceError::Corrupt(format!(
            "node {node}: stream used {consumed} bytes but declared {}",
            meta.bytes
        )));
    }
    if repeats_seen != meta.repeats {
        return Err(TraceError::Corrupt(format!(
            "node {node}: stream holds {repeats_seen} repeat blocks but \
             declared {}",
            meta.repeats
        )));
    }
    Ok(())
}

/// Records per-node [`Op`] streams into a [`Trace`].
///
/// Use this to capture op streams from any producer — an in-tree benchmark
/// (see [`Trace::record`]), a hand-built scenario, or an external
/// trace-conversion tool. Serialization applies the per-stream loop
/// detector ([`detect_repeats`]), so `body^N`-shaped streams cost roughly
/// one body on disk.
///
/// # Examples
///
/// ```
/// use ltp_core::{BlockId, Pc};
/// use ltp_workloads::{Op, Trace, TraceWriter, WorkloadParams};
///
/// let mut writer = TraceWriter::new("handoff", WorkloadParams::quick(2, 1));
/// writer.push(0, Op::Write { pc: Pc::new(0x40), block: BlockId::new(7) });
/// writer.push(1, Op::Read { pc: Pc::new(0x80), block: BlockId::new(7) });
/// let trace = writer.finish();
/// assert_eq!(trace.total_ops(), 2);
///
/// let mut bytes = Vec::new();
/// trace.write_to(&mut bytes).unwrap();
/// assert_eq!(Trace::read_from(&bytes[..]).unwrap(), trace);
/// ```
#[derive(Debug, Clone)]
pub struct TraceWriter {
    name: String,
    workload: WorkloadParams,
    streams: Vec<Vec<Op>>,
}

impl TraceWriter {
    /// Starts a recording named `name` at the given geometry (one empty
    /// stream per `workload.nodes`).
    ///
    /// # Panics
    ///
    /// Panics if `workload.nodes < 2` — the same floor every workload
    /// enforces, checked here so a writer can never produce a file that
    /// [`Trace::read_from`] would reject.
    pub fn new(name: &str, workload: WorkloadParams) -> TraceWriter {
        assert!(workload.nodes >= 2, "traces need at least 2 nodes");
        TraceWriter {
            name: name.to_string(),
            workload,
            streams: vec![Vec::new(); usize::from(workload.nodes)],
        }
    }

    /// Appends one operation to `node`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the recorded geometry.
    pub fn push(&mut self, node: u16, op: Op) {
        self.streams[usize::from(node)].push(op);
    }

    /// Drains `program` to completion into `node`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the recorded geometry.
    pub fn record_program(&mut self, node: u16, program: &mut dyn Program) {
        while let Some(op) = program.next_op() {
            self.push(node, op);
        }
    }

    /// Finishes the recording.
    pub fn finish(self) -> Trace {
        Trace {
            name: self.name,
            workload: self.workload,
            streams: self.streams,
        }
    }
}

/// Replays one node's stream of a shared, fully-decoded [`Trace`].
///
/// For replay without materializing the trace, see
/// [`StreamingTraceProgram`].
#[derive(Debug, Clone)]
pub struct TraceProgram {
    trace: Arc<Trace>,
    node: usize,
    cursor: usize,
}

impl TraceProgram {
    /// A replay cursor over `node`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the trace's geometry.
    pub fn new(trace: Arc<Trace>, node: u16) -> TraceProgram {
        assert!(
            node < trace.nodes(),
            "trace `{}` has {} nodes, no node {node}",
            trace.name(),
            trace.nodes()
        );
        TraceProgram {
            trace,
            node: usize::from(node),
            cursor: 0,
        }
    }
}

impl Program for TraceProgram {
    fn len_hint(&self) -> Option<u64> {
        Some(self.trace.streams[self.node].len() as u64)
    }

    fn next_op(&mut self) -> Option<Op> {
        let op = self.trace.streams[self.node].get(self.cursor).copied();
        if op.is_some() {
            self.cursor += 1;
        }
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{collect_ops, Lock};
    use ltp_core::{BlockId, Pc};

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Think(5),
            Op::Read {
                pc: Pc::new(0x1000),
                block: BlockId::new(40),
            },
            Op::Write {
                pc: Pc::new(0x1004),
                block: BlockId::new(41),
            },
            Op::Lock(Lock::library(BlockId::new(7), 0x2000)),
            Op::Unlock(Lock::library(BlockId::new(7), 0x2000)),
            Op::Barrier(3),
            Op::FlagSet {
                pc: Pc::new(0x3000),
                block: BlockId::new(99),
            },
            Op::FlagWait {
                pc: Pc::new(0x3004),
                block: BlockId::new(99),
            },
            Op::Lock(Lock::ad_hoc(BlockId::new(8), 0x4000)),
            Op::Unlock(Lock::ad_hoc(BlockId::new(8), 0x4000)),
            Op::Think(0),
            Op::Read {
                pc: Pc::new(0),
                block: BlockId::new(u64::MAX),
            },
        ]
    }

    fn sample_trace() -> Trace {
        let mut writer = TraceWriter::new("sample", WorkloadParams::quick(2, 1));
        for op in sample_ops() {
            writer.push(0, op);
        }
        writer.push(
            1,
            Op::Read {
                pc: Pc::new(4),
                block: BlockId::new(1),
            },
        );
        writer.finish()
    }

    fn to_bytes(trace: &Trace) -> Vec<u8> {
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        bytes
    }

    fn to_bytes_version(trace: &Trace, version: u8) -> Vec<u8> {
        let mut bytes = Vec::new();
        trace.write_to_version(&mut bytes, version).unwrap();
        bytes
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        use codec::{read_varint, unzigzag, write_varint, zigzag};
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut input = SliceInput::new(&buf);
            assert_eq!(read_varint(&mut input, "v").unwrap(), v);
            assert_eq!(input.pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn every_op_kind_round_trips_in_both_versions() {
        let trace = sample_trace();
        for version in [TRACE_VERSION_V1, TRACE_VERSION] {
            let back = Trace::read_from(&to_bytes_version(&trace, version)[..]).unwrap();
            assert_eq!(back, trace, "version {version}");
            assert_eq!(back.streams()[0], sample_ops(), "version {version}");
        }
    }

    #[test]
    fn header_metadata_round_trips() {
        for iterations in [None, Some(0), Some(7), Some(u32::MAX)] {
            let workload = WorkloadParams {
                nodes: 3,
                seed: u64::MAX,
                iterations,
            };
            let trace = TraceWriter::new("meta", workload).finish();
            for version in [TRACE_VERSION_V1, TRACE_VERSION] {
                let back = Trace::read_from(&to_bytes_version(&trace, version)[..]).unwrap();
                assert_eq!(back.workload(), workload);
                assert_eq!(back.name(), "meta");
                assert_eq!(back.streams().len(), 3);
            }
        }
    }

    #[test]
    fn golden_prefix_is_stable() {
        // The first bytes of the format are load-bearing for external
        // producers: magic, version, then the varint-length-prefixed name.
        for (version, expect) in [(TRACE_VERSION_V1, 1u8), (TRACE_VERSION, 2u8)] {
            let bytes = to_bytes_version(&sample_trace(), version);
            assert_eq!(&bytes[..7], b"LTRACE\0");
            assert_eq!(bytes[7], expect, "format version byte");
            assert_eq!(bytes[8], 6, "name length varint");
            assert_eq!(&bytes[9..15], b"sample");
        }
    }

    #[test]
    fn unknown_write_version_is_rejected() {
        let err = sample_trace().write_to_version(Vec::new(), 3).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion(3)), "{err}");
    }

    #[test]
    fn looped_streams_collapse_to_repeat_blocks() {
        // body^N must cost ~one body: the whole point of format v2.
        let mut writer = TraceWriter::new("loop", WorkloadParams::quick(2, 1));
        let body = [
            Op::Read {
                pc: Pc::new(0x100),
                block: BlockId::new(10),
            },
            Op::Write {
                pc: Pc::new(0x104),
                block: BlockId::new(10),
            },
            Op::Think(25),
        ];
        for _ in 0..200 {
            for op in body {
                writer.push(0, op);
                writer.push(1, op);
            }
        }
        let trace = writer.finish();
        let v1 = to_bytes_version(&trace, TRACE_VERSION_V1);
        let v2 = to_bytes_version(&trace, TRACE_VERSION);
        assert!(
            v2.len() * 10 < v1.len(),
            "expected >10x shrink: v1 {} bytes, v2 {} bytes",
            v1.len(),
            v2.len()
        );
        let per_op = v2.len() as f64 / trace.total_ops() as f64;
        assert!(per_op < 0.5, "loop-shaped stream at {per_op:.3} B/op");
        assert_eq!(Trace::read_from(&v2[..]).unwrap(), trace);
    }

    #[test]
    fn replay_programs_emit_recorded_streams() {
        let trace = Arc::new(sample_trace());
        let mut programs = Trace::programs(&trace);
        assert_eq!(programs.len(), 2);
        for (node, program) in programs.iter_mut().enumerate() {
            assert_eq!(collect_ops(program.as_mut()), trace.streams()[node]);
        }
        // A second replay from the same trace is identical.
        let mut again = Trace::programs(&trace);
        assert_eq!(
            collect_ops(again[0].as_mut()),
            trace.streams()[0],
            "replay is repeatable"
        );
    }

    #[test]
    fn recording_a_benchmark_matches_its_programs() {
        let params = WorkloadParams::quick(3, 2);
        let trace = Trace::record(Benchmark::Tomcatv, &params);
        assert_eq!(trace.name(), "tomcatv");
        let mut direct = Benchmark::Tomcatv.programs(&params);
        for (node, program) in direct.iter_mut().enumerate() {
            assert_eq!(collect_ops(program.as_mut()), trace.streams()[node]);
        }
    }

    #[test]
    fn op_histogram_counts_by_kind() {
        let hist = sample_trace().op_histogram();
        let get = |name: &str| hist.iter().find(|(n, _)| *n == name).unwrap().1;
        assert_eq!(get("think"), 2);
        assert_eq!(get("read"), 3); // two on node 0, one on node 1
        assert_eq!(get("lock"), 2);
        assert_eq!(get("barrier"), 1);
        assert_eq!(hist.iter().map(|(_, c)| c).sum::<u64>(), 13);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            Trace::read_from(&b"NOTRACE\x01rest"[..]),
            Err(TraceError::BadMagic)
        ));
        assert!(matches!(
            Trace::read_from(&b"LT"[..]),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = to_bytes(&sample_trace());
        bytes[7] = 9;
        assert!(matches!(
            Trace::read_from(&bytes[..]),
            Err(TraceError::UnsupportedVersion(9))
        ));
        bytes[7] = 0;
        assert!(matches!(
            Trace::read_from(&bytes[..]),
            Err(TraceError::UnsupportedVersion(0))
        ));
    }

    #[test]
    fn corruption_fails_the_checksum() {
        for version in [TRACE_VERSION_V1, TRACE_VERSION] {
            let mut bytes = to_bytes_version(&sample_trace(), version);
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            let err = Trace::read_from(&bytes[..]).unwrap_err();
            assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
            assert!(err.to_string().contains("checksum"), "{err}");
        }
    }

    #[test]
    fn truncation_is_detected() {
        for version in [TRACE_VERSION_V1, TRACE_VERSION] {
            let bytes = to_bytes_version(&sample_trace(), version);
            let err = Trace::read_from(&bytes[..bytes.len() - 9]).unwrap_err();
            assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        // Append bytes *inside* the checksummed region by re-checksumming.
        let trace = sample_trace();
        let mut body = Vec::new();
        trace.write_to(&mut body).unwrap();
        let payload_end = body.len() - 8;
        let mut tampered = body[..payload_end].to_vec();
        tampered.push(0xee);
        let digest = fnv1a(&tampered[8..]);
        tampered.extend_from_slice(&digest.to_le_bytes());
        let err = Trace::read_from(&tampered[..]).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    /// Builds a syntactically framed file (magic + version + body +
    /// correct checksum) around an arbitrary body — for crafting invalid
    /// bodies that still pass the outer integrity checks.
    fn frame(version: u8, body: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.push(version);
        bytes.extend_from_slice(body);
        bytes.extend_from_slice(&fnv1a(body).to_le_bytes());
        bytes
    }

    #[test]
    fn absurd_name_length_is_corrupt_not_a_panic() {
        // name_len = u64::MAX must not overflow the decoder's cursor.
        for version in [TRACE_VERSION_V1, TRACE_VERSION] {
            let mut body = Vec::new();
            write_varint(&mut body, u64::MAX);
            let err = Trace::read_from(&frame(version, &body)[..]).unwrap_err();
            assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
            assert!(err.to_string().contains("name"), "{err}");
        }
    }

    #[test]
    fn undersized_node_counts_are_corrupt() {
        for version in [TRACE_VERSION_V1, TRACE_VERSION] {
            for nodes in [0u64, 1] {
                let mut body = Vec::new();
                write_varint(&mut body, 1); // name_len
                body.push(b'x');
                write_varint(&mut body, nodes);
                write_varint(&mut body, 0); // seed
                body.push(0); // iters_flag
                let err = Trace::read_from(&frame(version, &body)[..]).unwrap_err();
                assert!(
                    err.to_string().contains("at least 2"),
                    "v{version} nodes={nodes}: {err}"
                );
            }
        }
    }

    /// A hand-framed v2 body with one declared stream meta per node and raw
    /// stream bytes appended — for crafting invalid repeat structures.
    fn frame_v2(metas: &[StreamMeta], streams: &[u8]) -> Vec<u8> {
        let mut body = Vec::new();
        write_varint(&mut body, 1);
        body.push(b'x');
        write_varint(&mut body, metas.len() as u64); // nodes
        write_varint(&mut body, 0); // seed
        body.push(0); // iters_flag
        for meta in metas {
            meta.encode(&mut body);
        }
        body.extend_from_slice(streams);
        frame(TRACE_VERSION, &body)
    }

    #[test]
    fn malformed_repeat_blocks_are_corrupt() {
        let think = |out: &mut Vec<u8>| {
            out.push(codec::OP_THINK);
            write_varint(out, 1);
        };
        let meta = |ops, bytes, window, repeats| StreamMeta {
            ops,
            bytes,
            window,
            repeats,
        };
        let empty = meta(0, 0, 0, 0);

        // Repeat reaching before the first op.
        let mut s = Vec::new();
        s.push(OP_REPEAT);
        write_varint(&mut s, 1);
        write_varint(&mut s, 4);
        let err = Trace::read_from(&frame_v2(&[meta(4, s.len() as u64, 1, 1), empty], &s)[..])
            .unwrap_err();
        assert!(err.to_string().contains("before the stream"), "{err}");

        // Repeat body exceeding the declared window.
        let mut s = Vec::new();
        think(&mut s);
        think(&mut s);
        s.push(OP_REPEAT);
        write_varint(&mut s, 2);
        write_varint(&mut s, 2);
        let err = Trace::read_from(&frame_v2(&[meta(6, s.len() as u64, 1, 1), empty], &s)[..])
            .unwrap_err();
        assert!(err.to_string().contains("window"), "{err}");

        // Repeat overrunning the declared op count.
        let mut s = Vec::new();
        think(&mut s);
        s.push(OP_REPEAT);
        write_varint(&mut s, 1);
        write_varint(&mut s, 100);
        let err = Trace::read_from(&frame_v2(&[meta(5, s.len() as u64, 1, 1), empty], &s)[..])
            .unwrap_err();
        assert!(err.to_string().contains("overruns"), "{err}");

        // Repeat-count overflow (body × reps wraps u64) is caught, not UB.
        let mut s = Vec::new();
        think(&mut s);
        s.push(OP_REPEAT);
        write_varint(&mut s, 1);
        write_varint(&mut s, u64::MAX);
        let err = Trace::read_from(&frame_v2(&[meta(5, s.len() as u64, 1, 1), empty], &s)[..])
            .unwrap_err();
        assert!(err.to_string().contains("overruns"), "{err}");

        // Declared byte length that disagrees with the stream.
        let mut s = Vec::new();
        think(&mut s);
        let err = Trace::read_from(&frame_v2(&[meta(1, 99, 0, 0), empty], &s)[..]).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err}");

        // Declared repeat count that disagrees with the stream.
        let mut s = Vec::new();
        think(&mut s);
        let err = Trace::read_from(&frame_v2(&[meta(1, s.len() as u64, 0, 3), empty], &s)[..])
            .unwrap_err();
        assert!(err.to_string().contains("repeat blocks"), "{err}");

        // A window beyond the format maximum is rejected at the header.
        let err =
            Trace::read_from(&frame_v2(&[meta(0, 0, MAX_STREAM_WINDOW + 1, 0), empty], &[])[..])
                .unwrap_err();
        assert!(err.to_string().contains("window"), "{err}");
    }

    #[test]
    fn decompression_bombs_are_rejected_by_the_buffered_decoder() {
        // A few file bytes declaring billions of ops must be a clean error
        // (pointing at streaming replay), not an OOM.
        let declared = MAX_BUFFERED_OPS + 1;
        let mut s = Vec::new();
        s.push(codec::OP_THINK);
        write_varint(&mut s, 1);
        s.push(OP_REPEAT);
        write_varint(&mut s, 1);
        write_varint(&mut s, declared - 1);
        let file = frame_v2(
            &[
                StreamMeta {
                    ops: declared,
                    bytes: s.len() as u64,
                    window: 1,
                    repeats: 1,
                },
                StreamMeta {
                    ops: 0,
                    bytes: 0,
                    window: 0,
                    repeats: 0,
                },
            ],
            &s,
        );
        let err = Trace::read_from(&file[..]).unwrap_err();
        assert!(err.to_string().contains("buffered decoder"), "{err}");
        assert!(err.to_string().contains("streaming"), "{err}");
        // The streaming opener, whose costs are bounded by file size (the
        // repeat expands virtually), validates the same file happily.
        let path = std::env::temp_dir().join(format!("ltp-bomb-{}.ltrace", std::process::id()));
        std::fs::write(&path, &file).unwrap();
        let opened = stream::StreamingTrace::open(&path).expect("bombs stream fine");
        assert_eq!(opened.total_ops(), declared);
        assert_eq!(opened.repeat_blocks(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_and_v2_decode_identically_for_every_benchmark_sample() {
        let params = WorkloadParams::quick(3, 3);
        for benchmark in [Benchmark::Em3d, Benchmark::Barnes, Benchmark::Appbt] {
            let trace = Trace::record(benchmark, &params);
            let v1 = Trace::read_from(&to_bytes_version(&trace, TRACE_VERSION_V1)[..]).unwrap();
            let v2 = Trace::read_from(&to_bytes_version(&trace, TRACE_VERSION)[..]).unwrap();
            assert_eq!(v1, trace, "{benchmark} v1");
            assert_eq!(v2, trace, "{benchmark} v2");
        }
    }

    #[test]
    fn out_of_range_node_panics() {
        let trace = Arc::new(sample_trace());
        let result = std::panic::catch_unwind(|| TraceProgram::new(Arc::clone(&trace), 9));
        assert!(result.is_err());
    }
}
