//! Logical coherence replay: the directory-free fast path behind
//! `ltp predict`.
//!
//! Drains a workload's per-node programs through an idealized, *un-timed*
//! MSI coherence model: per-block sharer/owner state is tracked exactly
//! (full-map, the machine's default), every load/store becomes the same
//! [`Touch`] the full machine would deliver (demand fills, upgrades,
//! migratory upgrades, write-version numbers), external invalidations and
//! synchronization boundaries reach the policies at the same per-block
//! points — but no cycles, no network, no protocol engine occupancy. A
//! [`ltp_core::VerdictEngine`] reproduces the directory's verification-mask
//! verdicts, closing the predictor feedback loop. The result is pure table
//! updates: roughly an order of magnitude faster than even this repo's
//! lightweight machine (`ltp predict` vs `ltp run`; measured in
//! `BENCH_predict.json`), and far more against a cycle-accurate
//! simulator, whose per-op cost the replay never pays.
//!
//! # Scheduling model
//!
//! Nodes execute round-robin, one operation per runnable node per round, in
//! node order. Synchronization is idealized:
//!
//! * **Locks** — a free lock is acquired immediately with the machine's
//!   test-and-test-and-set touch sequence (two spin-PC loads, one TAS
//!   store); contenders block without spinning and retry each round, so
//!   waiters wake in node order. No backoff, no wasted spin touches.
//! * **Flags** — [`Op::FlagWait`] consumes one signal generation
//!   (`writes > waited`), touching the flag block once on success;
//!   blocked waiters emit no touches.
//! * **Barriers** — a node arriving at [`Op::Barrier`] blocks until every
//!   unfinished node arrives; all are released in node order, each
//!   receiving its [`SyncKind::Barrier`] boundary (and flushing whatever
//!   its policy returns).
//!
//! For data-race-free programs whose only synchronization is barriers, the
//! per-(node, block) event subsequences this produces are *identical* to
//! the full machine's — conflicting accesses are ordered by barrier epochs,
//! so hit/miss classification, fill kinds, invalidation points, and
//! verdicts are timing-independent (`tests/predict_equivalence.rs` asserts
//! this). Lock- and flag-based kernels keep the same logical structure but
//! lose the timing-dependent spin retests the machine performs, so their
//! offline metrics are faithful approximations, not replicas.
//!
//! # Ground truth
//!
//! With recording enabled, a replay marks, per (node, block), the 1-based
//! touch ordinals after which the block was externally invalidated — the
//! last-touch ground truth that primes
//! [`ltp_core::SelfInvalidationPolicy::prime_last_touches`] (the `oracle`
//! spec). The operation schedule above depends only on program order,
//! locks, flags, and barriers — never on policy decisions — so the touch
//! ordinals recorded under a baseline replay remain valid when the oracle
//! actuates, and the oracle achieves 100% accuracy and coverage by
//! construction (fuzzed in `tests/predict_properties.rs`, including on
//! random racy traces).

use std::collections::BTreeSet;

use ltp_core::FxHashMap;

use ltp_core::{
    BlockId, FillInfo, FillKind, NodeId, NullPolicy, PredictStats, SelfInvalidationPolicy,
    SyncKind, Touch, VerdictEngine, VerdictRecord,
};

use crate::program::{Lock, Op, Program};

/// What a logical replay produced.
#[derive(Debug)]
pub struct ReplayReport {
    /// Per-node prediction tallies.
    pub stats: Vec<PredictStats>,
    /// Every verification verdict delivered, in delivery order.
    pub verdicts: Vec<VerdictRecord>,
    /// Total program operations executed (including think time and
    /// synchronization).
    pub ops: u64,
    /// Per node: (block, 1-based touch ordinal) pairs marking observed last
    /// touches. `Some` only when recording was requested.
    pub ground_truth: Option<Vec<Vec<(BlockId, u64)>>>,
}

/// A dense node bitset: the replay's full-map sharer vector. Iteration is
/// ascending by node id, matching the directory's invalidation order.
#[derive(Debug, Default)]
struct NodeSet {
    words: Vec<u64>,
}

impl NodeSet {
    fn contains(&self, p: u16) -> bool {
        self.words
            .get(p as usize / 64)
            .is_some_and(|w| (w >> (p % 64)) & 1 == 1)
    }

    fn insert(&mut self, p: u16) {
        let word = p as usize / 64;
        if self.words.len() <= word {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << (p % 64);
    }

    fn remove(&mut self, p: u16) {
        if let Some(w) = self.words.get_mut(p as usize / 64) {
            *w &= !(1 << (p % 64));
        }
    }

    fn clear(&mut self) {
        self.words.clear();
    }

    fn iter(&self) -> impl Iterator<Item = u16> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let bit = bits.trailing_zeros();
                bits &= bits - 1;
                Some((wi * 64 + bit as usize) as u16)
            })
        })
    }
}

/// Per-block directory state: exact full-map sharers plus owner.
#[derive(Debug, Default)]
struct BlockState {
    sharers: NodeSet,
    owner: Option<u16>,
    version: u32,
    /// Writes ever performed — the flag-generation token.
    writes: u64,
}

struct Replayer<'a> {
    policies: &'a mut [Box<dyn SelfInvalidationPolicy>],
    engine: VerdictEngine,
    blocks: FxHashMap<u64, BlockState>,
    verdicts: Vec<VerdictRecord>,
    /// Lock blocks currently held.
    locks_held: BTreeSet<u64>,
    /// Flag generations consumed, per (node, block).
    waited: FxHashMap<(u16, u64), u64>,
    /// Per (node, block): touches delivered (1-based ordinals).
    touch_seq: FxHashMap<(u16, u64), u64>,
    /// Per node: recorded last-touch marks (when recording).
    marks: Option<Vec<Vec<(BlockId, u64)>>>,
}

impl Replayer<'_> {
    fn holds(&self, p: u16, b: u64) -> bool {
        self.blocks
            .get(&b)
            .is_some_and(|s| s.owner == Some(p) || s.sharers.contains(p))
    }

    /// Delivers verdicts returned by the engine to their policies.
    fn deliver(&mut self, recs: Vec<VerdictRecord>) {
        for r in recs {
            self.policies[r.node.index()].on_verification(r.block, r.outcome);
            self.verdicts.push(r);
        }
    }

    /// An external invalidation of `victim`'s copy of `b` (it holds one).
    fn invalidate(&mut self, victim: u16, b: u64) {
        let block = BlockId::new(b);
        self.policies[victim as usize].on_invalidation(block);
        self.engine.on_not_predicted(NodeId::new(victim));
        if let Some(marks) = &mut self.marks {
            let ordinal = self.touch_seq.get(&(victim, b)).copied().unwrap_or(0);
            if ordinal > 0 {
                marks[victim as usize].push((block, ordinal));
            }
        }
        let state = self.blocks.get_mut(&b).expect("holder implies state");
        state.sharers.remove(victim);
        if state.owner == Some(victim) {
            state.owner = None; // writeback
        }
    }

    /// Removes `p`'s copy of `b` after a self-invalidation and registers
    /// the fire with the verdict engine.
    fn self_invalidate(&mut self, p: u16, b: u64) {
        let state = self.blocks.get_mut(&b).expect("holder implies state");
        let was_owner = state.owner == Some(p);
        if was_owner {
            state.owner = None;
        }
        state.sharers.remove(p);
        self.engine
            .on_fire(NodeId::new(p), BlockId::new(b), was_owner);
    }

    /// Delivers one touch to `p`'s policy, handling a fire.
    fn touch(&mut self, p: u16, touch: Touch) {
        self.engine.tick();
        self.engine.note_touch(NodeId::new(p));
        if self.marks.is_some() {
            *self.touch_seq.entry((p, touch.block.index())).or_insert(0) += 1;
        }
        if self.policies[p as usize].on_touch(touch) {
            self.self_invalidate(p, touch.block.index());
        }
    }

    /// Executes a load: hit, or GetS through the logical directory.
    fn read(&mut self, p: u16, pc: ltp_core::Pc, b: u64) {
        let block = BlockId::new(b);
        if let Some(state) = self.blocks.get(&b) {
            let exclusive = state.owner == Some(p);
            if exclusive || state.sharers.contains(p) {
                self.touch(
                    p,
                    Touch {
                        block,
                        pc,
                        is_write: false,
                        exclusive,
                        fill: None,
                    },
                );
                return;
            }
        }
        let recs = self.engine.on_request(NodeId::new(p), block, false);
        self.deliver(recs);
        // Migratory-favoring §2: a read invalidates the writer entirely.
        if let Some(owner) = self.blocks.entry(b).or_default().owner {
            self.invalidate(owner, b);
        }
        let state = self.blocks.get_mut(&b).expect("entry created above");
        state.sharers.insert(p);
        let version = state.version;
        self.touch(
            p,
            Touch {
                block,
                pc,
                is_write: false,
                exclusive: false,
                fill: Some(FillInfo {
                    kind: FillKind::Demand,
                    dir_version: version,
                    migratory_upgrade: false,
                }),
            },
        );
    }

    /// Executes a store: hit, Upgrade, or GetX through the logical
    /// directory.
    fn write(&mut self, p: u16, pc: ltp_core::Pc, b: u64) {
        let block = BlockId::new(b);
        let state = self.blocks.entry(b).or_default();
        state.writes += 1;
        let owner_hit = state.owner == Some(p);
        let holds_shared = state.sharers.contains(p);
        if owner_hit {
            self.touch(
                p,
                Touch {
                    block,
                    pc,
                    is_write: true,
                    exclusive: true,
                    fill: None,
                },
            );
            return;
        }
        let recs = self.engine.on_request(NodeId::new(p), block, true);
        self.deliver(recs);
        let state = self.blocks.get(&b).expect("entry exists");
        let victims: Vec<u16> = state
            .sharers
            .iter()
            .filter(|&s| s != p)
            .chain(state.owner.into_iter().filter(|&o| o != p))
            .collect();
        let migratory = holds_shared && victims.is_empty();
        for v in victims {
            self.invalidate(v, b);
        }
        let state = self.blocks.get_mut(&b).expect("entry exists");
        state.sharers.clear();
        state.version += 1;
        state.owner = Some(p);
        let version = state.version;
        self.touch(
            p,
            Touch {
                block,
                pc,
                is_write: true,
                exclusive: true,
                fill: Some(FillInfo {
                    // An in-place upgrade only when the requester still held
                    // its shared copy; otherwise a full write miss.
                    kind: if holds_shared {
                        FillKind::Upgrade
                    } else {
                        FillKind::Demand
                    },
                    dir_version: version,
                    migratory_upgrade: migratory,
                }),
            },
        );
    }

    /// Delivers a synchronization boundary and flushes whatever the policy
    /// returns (ignoring blocks not cached, like the machine's controller).
    fn sync(&mut self, p: u16, kind: SyncKind) {
        self.engine.tick();
        let flush = self.policies[p as usize].on_sync(kind);
        for block in flush {
            if self.holds(p, block.index()) {
                self.self_invalidate(p, block.index());
            }
        }
    }
}

/// Outcome of attempting one operation.
enum Exec {
    Done,
    Blocked,
    EnteredBarrier(u32),
}

/// Drains `programs` (one per node) through fresh `policies` (one per
/// node), returning per-node [`PredictStats`], the verdict stream, and —
/// when `record_ground_truth` — the per-node last-touch marks. Panics on
/// program deadlock (a lock never released, a flag never signalled, or
/// mismatched concurrent barrier ids), mirroring the machine's own
/// failure mode.
pub fn replay(
    mut programs: Vec<Box<dyn Program>>,
    policies: &mut [Box<dyn SelfInvalidationPolicy>],
    record_ground_truth: bool,
) -> ReplayReport {
    let n = programs.len();
    assert_eq!(n, policies.len(), "one policy per node");
    let mut r = Replayer {
        policies,
        engine: VerdictEngine::new(n as u16),
        blocks: FxHashMap::default(),
        verdicts: Vec::new(),
        locks_held: BTreeSet::new(),
        waited: FxHashMap::default(),
        touch_seq: FxHashMap::default(),
        marks: record_ground_truth.then(|| vec![Vec::new(); n]),
    };
    let mut pending: Vec<Option<Op>> = (0..n).map(|_| None).collect();
    let mut finished = vec![false; n];
    let mut in_barrier = vec![false; n];
    // O(1) release check: the barrier opens when every unfinished node has
    // arrived. `barrier_id` pins the epoch's id; a node arriving at a
    // different one is the machine's deadlock (asserted on entry).
    let mut runnable = n;
    let mut waiting = 0usize;
    let mut barrier_id: Option<u32> = None;
    let mut ops: u64 = 0;

    // Releases the barrier once every unfinished node has arrived.
    fn maybe_release_barrier(
        r: &mut Replayer<'_>,
        runnable: usize,
        waiting: &mut usize,
        barrier_id: &mut Option<u32>,
        in_barrier: &mut [bool],
    ) -> bool {
        if *waiting == 0 || *waiting != runnable {
            return false;
        }
        for (p, waiting_here) in in_barrier.iter_mut().enumerate() {
            if std::mem::take(waiting_here) {
                r.sync(p as u16, SyncKind::Barrier);
            }
        }
        *waiting = 0;
        *barrier_id = None;
        true
    }

    loop {
        let mut progress = false;
        for p in 0..n {
            if finished[p] || in_barrier[p] {
                continue;
            }
            let Some(op) = pending[p].take().or_else(|| programs[p].next_op()) else {
                finished[p] = true;
                runnable -= 1;
                progress = true;
                progress |= maybe_release_barrier(
                    &mut r,
                    runnable,
                    &mut waiting,
                    &mut barrier_id,
                    &mut in_barrier,
                );
                continue;
            };
            let exec = match op {
                Op::Think(_) => Exec::Done,
                Op::Read { pc, block } => {
                    r.read(p as u16, pc, block.index());
                    Exec::Done
                }
                Op::Write { pc, block } | Op::FlagSet { pc, block } => {
                    r.write(p as u16, pc, block.index());
                    Exec::Done
                }
                Op::Lock(lock) => {
                    if r.locks_held.contains(&lock.block.index()) {
                        Exec::Blocked
                    } else {
                        acquire(&mut r, p as u16, lock);
                        Exec::Done
                    }
                }
                Op::Unlock(lock) => {
                    r.write(p as u16, lock.release_pc, lock.block.index());
                    r.locks_held.remove(&lock.block.index());
                    if lock.exposed {
                        r.sync(p as u16, SyncKind::LockRelease);
                    }
                    Exec::Done
                }
                Op::FlagWait { pc, block } => {
                    let b = block.index();
                    let signalled = r.blocks.get(&b).map_or(0, |s| s.writes);
                    let waited = r.waited.entry((p as u16, b)).or_insert(0);
                    if signalled > *waited {
                        *waited += 1;
                        r.read(p as u16, pc, b);
                        Exec::Done
                    } else {
                        Exec::Blocked
                    }
                }
                Op::Barrier(id) => Exec::EnteredBarrier(id),
            };
            match exec {
                Exec::Done => {
                    ops += 1;
                    progress = true;
                }
                Exec::Blocked => {
                    pending[p] = Some(op);
                }
                Exec::EnteredBarrier(id) => {
                    ops += 1;
                    progress = true;
                    match barrier_id {
                        None => barrier_id = Some(id),
                        Some(prev) => assert_eq!(
                            id, prev,
                            "concurrent distinct barrier ids: nodes disagree on the barrier"
                        ),
                    }
                    in_barrier[p] = true;
                    waiting += 1;
                    maybe_release_barrier(
                        &mut r,
                        runnable,
                        &mut waiting,
                        &mut barrier_id,
                        &mut in_barrier,
                    );
                }
            }
        }
        if finished.iter().all(|f| *f) {
            break;
        }
        assert!(
            progress,
            "logical replay deadlocked: every runnable node is blocked \
             (a lock never released or a flag never signalled)"
        );
    }

    let ground_truth = r.marks.take();
    let verdicts = std::mem::take(&mut r.verdicts);
    let stats = r.engine.finish();
    ReplayReport {
        stats,
        verdicts,
        ops,
        ground_truth,
    }
}

/// The machine's uncontended test-and-test-and-set acquire: two spin-PC
/// loads (test, confirm) and the TAS store.
fn acquire(r: &mut Replayer<'_>, p: u16, lock: Lock) {
    r.read(p, lock.spin_pc, lock.block.index());
    r.read(p, lock.spin_pc, lock.block.index());
    r.write(p, lock.tas_pc, lock.block.index());
    r.locks_held.insert(lock.block.index());
    if lock.exposed {
        r.sync(p, SyncKind::LockAcquire);
    }
}

/// Computes per-node last-touch ground truth with a baseline (never-fire)
/// replay: for each node, the (block, 1-based touch ordinal) pairs after
/// which the block was externally invalidated. Feed the node's pairs to
/// [`SelfInvalidationPolicy::prime_last_touches`].
pub fn ground_truth(programs: Vec<Box<dyn Program>>) -> Vec<Vec<(BlockId, u64)>> {
    let n = programs.len();
    let mut nulls: Vec<Box<dyn SelfInvalidationPolicy>> = (0..n)
        .map(|_| Box::new(NullPolicy) as Box<dyn SelfInvalidationPolicy>)
        .collect();
    replay(programs, &mut nulls, true)
        .ground_truth
        .expect("recording was requested")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::WorkloadSource;
    use crate::suite::{Benchmark, WorkloadParams};
    use ltp_core::{PolicyRegistry, PredictorConfig};

    fn policies(spec: &str, n: u16) -> Vec<Box<dyn SelfInvalidationPolicy>> {
        let registry = PolicyRegistry::with_builtins();
        let factory = registry.parse(spec).unwrap();
        (0..n)
            .map(|_| factory.build(PredictorConfig::default()))
            .collect()
    }

    fn programs(bench: Benchmark) -> Vec<Box<dyn crate::Program>> {
        WorkloadSource::from(bench)
            .programs(&WorkloadParams::quick(4, 3))
            .unwrap()
    }

    #[test]
    fn every_benchmark_replays_to_completion() {
        for bench in Benchmark::ALL {
            let mut pols = policies("ltp", 4);
            let report = replay(programs(bench), &mut pols, false);
            assert!(report.ops > 0, "{bench:?} executed ops");
            let total: u64 = report.stats.iter().map(|s| s.touches).sum();
            assert!(total > 0, "{bench:?} touched blocks");
        }
    }

    #[test]
    fn replay_is_deterministic() {
        for bench in [Benchmark::Em3d, Benchmark::Barnes, Benchmark::Appbt] {
            let mut a = policies("ltp", 4);
            let mut b = policies("ltp", 4);
            let ra = replay(programs(bench), &mut a, false);
            let rb = replay(programs(bench), &mut b, false);
            assert_eq!(ra.stats, rb.stats, "{bench:?}");
            assert_eq!(ra.verdicts, rb.verdicts, "{bench:?}");
        }
    }

    #[test]
    fn ltp_learns_under_logical_replay() {
        let mut pols = policies("ltp", 4);
        let report = replay(programs(Benchmark::Em3d), &mut pols, false);
        let merged = report
            .stats
            .iter()
            .fold(PredictStats::default(), |mut acc, s| {
                acc.merge(s);
                acc
            });
        assert!(merged.correct > 0, "em3d's one-touch traces are learnable");
        assert!(
            merged.correct > merged.premature,
            "the paper's predictor is accurate on em3d: {merged:?}"
        );
    }

    #[test]
    fn oracle_is_perfect_on_every_benchmark() {
        for bench in Benchmark::ALL {
            let truth = ground_truth(programs(bench));
            let mut pols = policies("oracle", 4);
            for (p, t) in pols.iter_mut().zip(&truth) {
                p.prime_last_touches(t);
            }
            let report = replay(programs(bench), &mut pols, false);
            let merged = report
                .stats
                .iter()
                .fold(PredictStats::default(), |mut acc, s| {
                    acc.merge(s);
                    acc
                });
            assert_eq!(merged.premature, 0, "{bench:?}: oracle never premature");
            assert_eq!(merged.not_predicted, 0, "{bench:?}: oracle never misses");
            let marked: usize = truth.iter().map(Vec::len).sum();
            assert_eq!(
                merged.fires as usize, marked,
                "{bench:?}: every marked last touch fires"
            );
            if marked > 0 {
                assert_eq!(merged.accuracy_pct(), Some(100.0), "{bench:?}");
                assert_eq!(merged.coverage_pct(), Some(100.0), "{bench:?}");
            }
        }
    }
}
