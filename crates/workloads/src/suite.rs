//! The benchmark registry (paper Table 2).
//!
//! [`Benchmark`] enumerates the nine applications; [`WorkloadParams`]
//! carries the machine size, seed, and optional iteration override. The
//! scaled default inputs (chosen so a full suite × policy sweep runs in
//! seconds) are documented per benchmark and printed by the `table2_suite`
//! bench.

use std::fmt;

use crate::kernels;
use crate::program::Program;

/// Parameters shared by every benchmark build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadParams {
    /// Machine size (the paper simulates 32).
    pub nodes: u16,
    /// Seed for workloads with stochastic structure (barnes, raytrace).
    pub seed: u64,
    /// Iteration-count override; `None` uses the benchmark's scaled
    /// default.
    pub iterations: Option<u32>,
}

impl Default for WorkloadParams {
    fn default() -> Self {
        WorkloadParams {
            nodes: 32,
            seed: 0x15CA_2000,
            iterations: None,
        }
    }
}

impl WorkloadParams {
    /// Params for a quick run (small machine, few iterations) — used by
    /// integration tests.
    pub fn quick(nodes: u16, iterations: u32) -> Self {
        WorkloadParams {
            nodes,
            seed: 0x15CA_2000,
            iterations: Some(iterations),
        }
    }
}

/// The nine applications of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Benchmark {
    Appbt,
    Barnes,
    Dsmc,
    Em3d,
    Moldyn,
    Ocean,
    Raytrace,
    Tomcatv,
    Unstructured,
}

impl Benchmark {
    /// All nine, in the paper's (alphabetical) order.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Appbt,
        Benchmark::Barnes,
        Benchmark::Dsmc,
        Benchmark::Em3d,
        Benchmark::Moldyn,
        Benchmark::Ocean,
        Benchmark::Raytrace,
        Benchmark::Tomcatv,
        Benchmark::Unstructured,
    ];

    /// The benchmark's lowercase name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Appbt => "appbt",
            Benchmark::Barnes => "barnes",
            Benchmark::Dsmc => "dsmc",
            Benchmark::Em3d => "em3d",
            Benchmark::Moldyn => "moldyn",
            Benchmark::Ocean => "ocean",
            Benchmark::Raytrace => "raytrace",
            Benchmark::Tomcatv => "tomcatv",
            Benchmark::Unstructured => "unstructured",
        }
    }

    /// Resolves a benchmark from its lowercase name.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltp_workloads::Benchmark;
    ///
    /// assert_eq!(Benchmark::from_name("em3d"), Some(Benchmark::Em3d));
    /// assert_eq!(Benchmark::from_name("doom"), None);
    /// ```
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().find(|b| b.name() == name)
    }

    /// The input data set of the paper's Table 2.
    pub fn paper_input(self) -> &'static str {
        match self {
            Benchmark::Appbt => "12x12x12 cubes, 40 iters",
            Benchmark::Barnes => "4K particles, 21 iters",
            Benchmark::Dsmc => "48600 molecules, 9720 cells, 400 iters",
            Benchmark::Em3d => "76800 nodes, degree 2, 15% remote, 50 iters",
            Benchmark::Moldyn => "2048 particles, 60 iters",
            Benchmark::Ocean => "128x128, 12 iters",
            Benchmark::Raytrace => "car",
            Benchmark::Tomcatv => "128x128, 50 iters",
            Benchmark::Unstructured => "mesh 2K, 30 iters",
        }
    }

    /// The default iteration count of the scaled synthetic kernel.
    pub fn default_iterations(self) -> u32 {
        match self {
            Benchmark::Appbt => kernels::appbt::DEFAULT_ITERS,
            Benchmark::Barnes => kernels::barnes::DEFAULT_ITERS,
            Benchmark::Dsmc => kernels::dsmc::DEFAULT_ITERS,
            Benchmark::Em3d => kernels::em3d::DEFAULT_ITERS,
            Benchmark::Moldyn => kernels::moldyn::DEFAULT_ITERS,
            Benchmark::Ocean => kernels::ocean::DEFAULT_ITERS,
            Benchmark::Raytrace => kernels::raytrace::JOBS_PER_NODE,
            Benchmark::Tomcatv => kernels::tomcatv::DEFAULT_ITERS,
            Benchmark::Unstructured => kernels::unstructured::DEFAULT_ITERS,
        }
    }

    /// Builds one program per node.
    ///
    /// # Panics
    ///
    /// Panics if `params.nodes < 2` (no sharing is possible).
    pub fn programs(self, params: &WorkloadParams) -> Vec<Box<dyn Program>> {
        assert!(params.nodes >= 2, "workloads need at least 2 nodes");
        let iters = params
            .iterations
            .unwrap_or_else(|| self.default_iterations());
        match self {
            Benchmark::Appbt => kernels::appbt::programs(params.nodes, iters),
            Benchmark::Barnes => kernels::barnes::programs(params.nodes, iters, params.seed),
            Benchmark::Dsmc => kernels::dsmc::programs(params.nodes, iters),
            Benchmark::Em3d => kernels::em3d::programs(params.nodes, iters),
            Benchmark::Moldyn => kernels::moldyn::programs(params.nodes, iters),
            Benchmark::Ocean => kernels::ocean::programs(params.nodes, iters),
            Benchmark::Raytrace => kernels::raytrace::programs(params.nodes, iters, params.seed),
            Benchmark::Tomcatv => kernels::tomcatv::programs(params.nodes, iters),
            Benchmark::Unstructured => kernels::unstructured::programs(params.nodes, iters),
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;

    #[test]
    fn all_benchmarks_build_programs_for_every_node() {
        let params = WorkloadParams::quick(4, 1);
        for b in Benchmark::ALL {
            let progs = b.programs(&params);
            assert_eq!(progs.len(), 4, "{b}");
        }
    }

    #[test]
    fn all_programs_are_nonempty_and_deterministic() {
        let params = WorkloadParams::quick(3, 1);
        for b in Benchmark::ALL {
            let mut a = b.programs(&params);
            let mut c = b.programs(&params);
            for (pa, pc) in a.iter_mut().zip(c.iter_mut()) {
                let ops_a = collect_ops(pa.as_mut());
                let ops_c = collect_ops(pc.as_mut());
                assert!(!ops_a.is_empty(), "{b} emits ops");
                assert_eq!(ops_a, ops_c, "{b} is deterministic");
            }
        }
    }

    #[test]
    fn names_match_paper_order() {
        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(
            names, sorted,
            "paper figures list benchmarks alphabetically"
        );
    }

    #[test]
    fn default_iterations_are_positive() {
        for b in Benchmark::ALL {
            assert!(b.default_iterations() > 0, "{b}");
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn single_node_is_rejected() {
        let params = WorkloadParams::quick(1, 1);
        Benchmark::Em3d.programs(&params);
    }
}
