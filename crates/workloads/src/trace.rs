//! Trace capture and replay: the `.ltrace` on-disk workload format.
//!
//! The paper's evaluation is trace-driven — the predictors learn last-touch
//! *traces* of PCs — and this module makes traces a first-class workload
//! source: any benchmark's per-node [`Op`] streams can be captured once with
//! a [`TraceWriter`] (or the [`Trace::record`] shorthand), serialized to a
//! compact, versioned binary file, and replayed anywhere as a
//! [`crate::WorkloadSource::Trace`] — mixable with synthetic benchmarks in
//! one sweep. Because programs are deterministic and policy-independent,
//! replaying a recorded trace under any policy produces reports
//! bit-identical to running the original synthetic kernel.
//!
//! # File format (version 1)
//!
//! All multi-byte integers are LEB128 varints; PCs and block ids are
//! delta-encoded against a per-stream running previous value (wrapping
//! subtraction, ZigZag-mapped, then varint) so the hot repeated-stride
//! streams of the stencil kernels compress to one or two bytes per operand.
//! Byte-level layout (see `docs/manual.md` §6 for the normative spec):
//!
//! ```text
//! file    := magic version body checksum
//! magic   := "LTRACE\0"              ; 7 bytes
//! version := u8                      ; currently 1
//! body    := header stream*
//! header  := name_len:varint name:utf8
//!            nodes:varint seed:varint
//!            iters_flag:u8 [iters:varint if flag = 1]
//! stream  := op_count:varint op*     ; one stream per node, node 0 first
//! op      := opcode:u8 payload       ; see the opcode table in the manual
//! checksum:= u64le                   ; FNV-1a 64 over body
//! ```
//!
//! # Examples
//!
//! Record a benchmark, round-trip it through bytes, and replay:
//!
//! ```
//! use ltp_workloads::{collect_ops, Benchmark, Trace, WorkloadParams};
//!
//! let params = WorkloadParams::quick(4, 2);
//! let trace = Trace::record(Benchmark::Em3d, &params);
//! assert_eq!(trace.name(), "em3d");
//! assert_eq!(trace.nodes(), 4);
//!
//! let mut bytes = Vec::new();
//! trace.write_to(&mut bytes).unwrap();
//! let back = Trace::read_from(&bytes[..]).unwrap();
//! assert_eq!(back, trace);
//!
//! // Replay programs emit exactly the recorded streams.
//! let mut programs = back.into_programs();
//! let ops = collect_ops(programs[0].as_mut());
//! assert_eq!(&ops[..], &trace.streams()[0][..]);
//! ```

use std::fmt;
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use ltp_core::{BlockId, Pc};

use crate::program::{Lock, Op, Program};
use crate::suite::{Benchmark, WorkloadParams};

/// The 7-byte file magic opening every `.ltrace` file.
pub const TRACE_MAGIC: [u8; 7] = *b"LTRACE\0";

/// The current (and only) trace format version.
pub const TRACE_VERSION: u8 = 1;

/// Error produced while reading or writing a trace file.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The file does not begin with [`TRACE_MAGIC`].
    BadMagic,
    /// The file's version byte is not one this build understands.
    UnsupportedVersion(u8),
    /// The file is structurally invalid (truncated, bad checksum, unknown
    /// opcode, …); the message names the first violation found.
    Corrupt(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic; expected LTRACE)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads {TRACE_VERSION})"
                )
            }
            TraceError::Corrupt(what) => write!(f, "corrupt trace file: {what}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// A captured workload: a name, the geometry it was recorded at, and one
/// [`Op`] stream per node.
///
/// A trace pins its machine geometry — the stream count *is* the node
/// count — so replay always runs at the recorded size; seed and iteration
/// metadata ride along so a replayed run reports the same
/// [`WorkloadParams`] as the run it was recorded from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    workload: WorkloadParams,
    streams: Vec<Vec<Op>>,
}

impl Trace {
    /// Captures the per-node op streams of `benchmark` at `params`.
    ///
    /// Programs are deterministic and independent of the coherence policy,
    /// so this drains the instruction streams directly — no simulation is
    /// required, and a replay under any policy is bit-identical to the
    /// synthetic run.
    pub fn record(benchmark: Benchmark, params: &WorkloadParams) -> Trace {
        let mut writer = TraceWriter::new(benchmark.name(), *params);
        for (node, program) in benchmark.programs(params).iter_mut().enumerate() {
            writer.record_program(node as u16, program.as_mut());
        }
        writer.finish()
    }

    /// The workload name recorded in the header (a benchmark name for
    /// in-tree recordings; external producers may use any label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The geometry the trace was recorded at.
    pub fn workload(&self) -> WorkloadParams {
        self.workload
    }

    /// Number of nodes (one op stream each).
    pub fn nodes(&self) -> u16 {
        self.workload.nodes
    }

    /// The per-node op streams, node 0 first.
    pub fn streams(&self) -> &[Vec<Op>] {
        &self.streams
    }

    /// Total operations across every node.
    pub fn total_ops(&self) -> u64 {
        self.streams.iter().map(|s| s.len() as u64).sum()
    }

    /// Builds one replay [`Program`] per node from a shared trace.
    ///
    /// The streams are shared (not cloned) between the returned programs,
    /// so replaying a large trace costs one cursor per node.
    pub fn programs(trace: &Arc<Trace>) -> Vec<Box<dyn Program>> {
        (0..trace.nodes())
            .map(|node| Box::new(TraceProgram::new(Arc::clone(trace), node)) as Box<dyn Program>)
            .collect()
    }

    /// Consumes the trace into per-node replay programs (convenience over
    /// [`Trace::programs`] for single-use traces).
    pub fn into_programs(self) -> Vec<Box<dyn Program>> {
        Trace::programs(&Arc::new(self))
    }

    /// Serializes the trace in the versioned binary format.
    ///
    /// # Errors
    ///
    /// Returns any error of the underlying writer.
    pub fn write_to<W: Write>(&self, mut out: W) -> io::Result<()> {
        let mut body = Vec::with_capacity(64 + self.total_ops() as usize * 3);
        write_varint(&mut body, self.name.len() as u64);
        body.extend_from_slice(self.name.as_bytes());
        write_varint(&mut body, u64::from(self.workload.nodes));
        write_varint(&mut body, self.workload.seed);
        match self.workload.iterations {
            None => body.push(0),
            Some(iters) => {
                body.push(1);
                write_varint(&mut body, u64::from(iters));
            }
        }
        for stream in &self.streams {
            write_varint(&mut body, stream.len() as u64);
            let mut enc = DeltaState::new();
            for &op in stream {
                encode_op(&mut body, &mut enc, op);
            }
        }
        out.write_all(&TRACE_MAGIC)?;
        out.write_all(&[TRACE_VERSION])?;
        out.write_all(&body)?;
        out.write_all(&fnv1a(&body).to_le_bytes())?;
        out.flush()
    }

    /// Deserializes a trace from any reader.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] naming the first problem found: wrong
    /// magic, unsupported version, I/O failure, or corruption (truncation,
    /// checksum mismatch, unknown opcode, malformed varint, …).
    pub fn read_from<R: Read>(mut input: R) -> Result<Trace, TraceError> {
        let mut bytes = Vec::new();
        input.read_to_end(&mut bytes)?;
        if bytes.len() < TRACE_MAGIC.len() + 1 || bytes[..TRACE_MAGIC.len()] != TRACE_MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = bytes[TRACE_MAGIC.len()];
        if version != TRACE_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let payload = &bytes[TRACE_MAGIC.len() + 1..];
        if payload.len() < 8 {
            return Err(TraceError::Corrupt("missing checksum trailer".to_string()));
        }
        let (body, trailer) = payload.split_at(payload.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte split"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(TraceError::Corrupt(format!(
                "checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            )));
        }

        let mut d = Decoder { buf: body, pos: 0 };
        let name_len = d.varint("name length")? as usize;
        let name_bytes = d.take(name_len, "name")?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| TraceError::Corrupt("name is not UTF-8".to_string()))?
            .to_string();
        let nodes = d.varint("node count")?;
        let nodes = u16::try_from(nodes)
            .map_err(|_| TraceError::Corrupt(format!("node count {nodes} exceeds u16")))?;
        if nodes < 2 {
            return Err(TraceError::Corrupt(format!(
                "node count must be at least 2, got {nodes}"
            )));
        }
        let seed = d.varint("seed")?;
        let iterations = match d.byte("iteration flag")? {
            0 => None,
            1 => {
                let iters = d.varint("iteration count")?;
                Some(u32::try_from(iters).map_err(|_| {
                    TraceError::Corrupt(format!("iteration count {iters} exceeds u32"))
                })?)
            }
            flag => {
                return Err(TraceError::Corrupt(format!(
                    "iteration flag must be 0 or 1, got {flag}"
                )))
            }
        };

        let mut streams = Vec::with_capacity(usize::from(nodes));
        for node in 0..nodes {
            let count = d.varint("op count")? as usize;
            let mut stream = Vec::with_capacity(count.min(1 << 24));
            let mut dec = DeltaState::new();
            for _ in 0..count {
                stream.push(decode_op(&mut d, &mut dec, node)?);
            }
            streams.push(stream);
        }
        if d.pos != d.buf.len() {
            return Err(TraceError::Corrupt(format!(
                "{} trailing bytes after the last stream",
                d.buf.len() - d.pos
            )));
        }
        Ok(Trace {
            name,
            workload: WorkloadParams {
                nodes,
                seed,
                iterations,
            },
            streams,
        })
    }

    /// Writes the trace to `path` (conventionally `*.ltrace`).
    ///
    /// # Errors
    ///
    /// Returns any error from creating or writing the file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let file = std::fs::File::create(path)?;
        self.write_to(io::BufWriter::new(file))
    }

    /// Reads a trace from `path`.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] for I/O failures or malformed content.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Trace, TraceError> {
        Trace::read_from(std::fs::File::open(path)?)
    }

    /// Counts operations by kind across every node, in the fixed order
    /// `think, read, write, lock, unlock, barrier, flag-set, flag-wait`
    /// (the `trace-info` inspector's histogram).
    pub fn op_histogram(&self) -> [(&'static str, u64); 8] {
        let mut counts = [0u64; 8];
        for stream in &self.streams {
            for op in stream {
                let slot = match op {
                    Op::Think(_) => 0,
                    Op::Read { .. } => 1,
                    Op::Write { .. } => 2,
                    Op::Lock(_) => 3,
                    Op::Unlock(_) => 4,
                    Op::Barrier(_) => 5,
                    Op::FlagSet { .. } => 6,
                    Op::FlagWait { .. } => 7,
                };
                counts[slot] += 1;
            }
        }
        let names = [
            "think",
            "read",
            "write",
            "lock",
            "unlock",
            "barrier",
            "flag-set",
            "flag-wait",
        ];
        std::array::from_fn(|i| (names[i], counts[i]))
    }
}

/// Records per-node [`Op`] streams into a [`Trace`].
///
/// Use this to capture op streams from any producer — an in-tree benchmark
/// (see [`Trace::record`]), a hand-built scenario, or an external
/// trace-conversion tool.
///
/// # Examples
///
/// ```
/// use ltp_core::{BlockId, Pc};
/// use ltp_workloads::{Op, Trace, TraceWriter, WorkloadParams};
///
/// let mut writer = TraceWriter::new("handoff", WorkloadParams::quick(2, 1));
/// writer.push(0, Op::Write { pc: Pc::new(0x40), block: BlockId::new(7) });
/// writer.push(1, Op::Read { pc: Pc::new(0x80), block: BlockId::new(7) });
/// let trace = writer.finish();
/// assert_eq!(trace.total_ops(), 2);
///
/// let mut bytes = Vec::new();
/// trace.write_to(&mut bytes).unwrap();
/// assert_eq!(Trace::read_from(&bytes[..]).unwrap(), trace);
/// ```
#[derive(Debug, Clone)]
pub struct TraceWriter {
    name: String,
    workload: WorkloadParams,
    streams: Vec<Vec<Op>>,
}

impl TraceWriter {
    /// Starts a recording named `name` at the given geometry (one empty
    /// stream per `workload.nodes`).
    ///
    /// # Panics
    ///
    /// Panics if `workload.nodes < 2` — the same floor every workload
    /// enforces, checked here so a writer can never produce a file that
    /// [`Trace::read_from`] would reject.
    pub fn new(name: &str, workload: WorkloadParams) -> TraceWriter {
        assert!(workload.nodes >= 2, "traces need at least 2 nodes");
        TraceWriter {
            name: name.to_string(),
            workload,
            streams: vec![Vec::new(); usize::from(workload.nodes)],
        }
    }

    /// Appends one operation to `node`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the recorded geometry.
    pub fn push(&mut self, node: u16, op: Op) {
        self.streams[usize::from(node)].push(op);
    }

    /// Drains `program` to completion into `node`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the recorded geometry.
    pub fn record_program(&mut self, node: u16, program: &mut dyn Program) {
        while let Some(op) = program.next_op() {
            self.push(node, op);
        }
    }

    /// Finishes the recording.
    pub fn finish(self) -> Trace {
        Trace {
            name: self.name,
            workload: self.workload,
            streams: self.streams,
        }
    }
}

/// Replays one node's stream of a shared [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceProgram {
    trace: Arc<Trace>,
    node: usize,
    cursor: usize,
}

impl TraceProgram {
    /// A replay cursor over `node`'s stream.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the trace's geometry.
    pub fn new(trace: Arc<Trace>, node: u16) -> TraceProgram {
        assert!(
            node < trace.nodes(),
            "trace `{}` has {} nodes, no node {node}",
            trace.name(),
            trace.nodes()
        );
        TraceProgram {
            trace,
            node: usize::from(node),
            cursor: 0,
        }
    }
}

impl Program for TraceProgram {
    fn next_op(&mut self) -> Option<Op> {
        let op = self.trace.streams[self.node].get(self.cursor).copied();
        if op.is_some() {
            self.cursor += 1;
        }
        op
    }
}

// ---- binary encoding ------------------------------------------------------

/// Per-stream running-previous values for delta encoding. PCs share one
/// chain across every PC-carrying operand (including the three PCs of a
/// lock), block ids another.
struct DeltaState {
    prev_pc: u64,
    prev_block: u64,
}

impl DeltaState {
    fn new() -> Self {
        DeltaState {
            prev_pc: 0,
            prev_block: 0,
        }
    }
}

const OP_THINK: u8 = 0x00;
const OP_READ: u8 = 0x01;
const OP_WRITE: u8 = 0x02;
const OP_LOCK_EXPOSED: u8 = 0x03;
const OP_LOCK_ADHOC: u8 = 0x04;
const OP_UNLOCK_EXPOSED: u8 = 0x05;
const OP_UNLOCK_ADHOC: u8 = 0x06;
const OP_BARRIER: u8 = 0x07;
const OP_FLAG_SET: u8 = 0x08;
const OP_FLAG_WAIT: u8 = 0x09;

fn encode_op(out: &mut Vec<u8>, state: &mut DeltaState, op: Op) {
    match op {
        Op::Think(cycles) => {
            out.push(OP_THINK);
            write_varint(out, cycles);
        }
        Op::Read { pc, block } => {
            out.push(OP_READ);
            write_pc(out, state, pc);
            write_block(out, state, block);
        }
        Op::Write { pc, block } => {
            out.push(OP_WRITE);
            write_pc(out, state, pc);
            write_block(out, state, block);
        }
        Op::Lock(lock) => {
            out.push(if lock.exposed {
                OP_LOCK_EXPOSED
            } else {
                OP_LOCK_ADHOC
            });
            write_lock(out, state, lock);
        }
        Op::Unlock(lock) => {
            out.push(if lock.exposed {
                OP_UNLOCK_EXPOSED
            } else {
                OP_UNLOCK_ADHOC
            });
            write_lock(out, state, lock);
        }
        Op::Barrier(id) => {
            out.push(OP_BARRIER);
            write_varint(out, u64::from(id));
        }
        Op::FlagSet { pc, block } => {
            out.push(OP_FLAG_SET);
            write_pc(out, state, pc);
            write_block(out, state, block);
        }
        Op::FlagWait { pc, block } => {
            out.push(OP_FLAG_WAIT);
            write_pc(out, state, pc);
            write_block(out, state, block);
        }
    }
}

fn decode_op(d: &mut Decoder<'_>, state: &mut DeltaState, node: u16) -> Result<Op, TraceError> {
    let opcode = d.byte("opcode")?;
    Ok(match opcode {
        OP_THINK => Op::Think(d.varint("think cycles")?),
        OP_READ => Op::Read {
            pc: read_pc(d, state)?,
            block: read_block(d, state)?,
        },
        OP_WRITE => Op::Write {
            pc: read_pc(d, state)?,
            block: read_block(d, state)?,
        },
        OP_LOCK_EXPOSED => Op::Lock(read_lock(d, state, true)?),
        OP_LOCK_ADHOC => Op::Lock(read_lock(d, state, false)?),
        OP_UNLOCK_EXPOSED => Op::Unlock(read_lock(d, state, true)?),
        OP_UNLOCK_ADHOC => Op::Unlock(read_lock(d, state, false)?),
        OP_BARRIER => {
            let id = d.varint("barrier id")?;
            Op::Barrier(
                u32::try_from(id)
                    .map_err(|_| TraceError::Corrupt(format!("barrier id {id} exceeds u32")))?,
            )
        }
        OP_FLAG_SET => Op::FlagSet {
            pc: read_pc(d, state)?,
            block: read_block(d, state)?,
        },
        OP_FLAG_WAIT => Op::FlagWait {
            pc: read_pc(d, state)?,
            block: read_block(d, state)?,
        },
        other => {
            return Err(TraceError::Corrupt(format!(
                "unknown opcode {other:#04x} in node {node}'s stream"
            )))
        }
    })
}

fn write_lock(out: &mut Vec<u8>, state: &mut DeltaState, lock: Lock) {
    write_block(out, state, lock.block);
    write_pc(out, state, lock.spin_pc);
    write_pc(out, state, lock.tas_pc);
    write_pc(out, state, lock.release_pc);
}

fn read_lock(
    d: &mut Decoder<'_>,
    state: &mut DeltaState,
    exposed: bool,
) -> Result<Lock, TraceError> {
    Ok(Lock {
        block: read_block(d, state)?,
        spin_pc: read_pc(d, state)?,
        tas_pc: read_pc(d, state)?,
        release_pc: read_pc(d, state)?,
        exposed,
    })
}

fn write_pc(out: &mut Vec<u8>, state: &mut DeltaState, pc: Pc) {
    let value = u64::from(pc.value());
    write_varint(out, zigzag(value.wrapping_sub(state.prev_pc) as i64));
    state.prev_pc = value;
}

fn read_pc(d: &mut Decoder<'_>, state: &mut DeltaState) -> Result<Pc, TraceError> {
    let delta = unzigzag(d.varint("pc delta")?);
    let value = state.prev_pc.wrapping_add(delta as u64);
    state.prev_pc = value;
    let pc = u32::try_from(value)
        .map_err(|_| TraceError::Corrupt(format!("pc {value:#x} exceeds u32")))?;
    Ok(Pc::new(pc))
}

fn write_block(out: &mut Vec<u8>, state: &mut DeltaState, block: BlockId) {
    let value = block.index();
    write_varint(out, zigzag(value.wrapping_sub(state.prev_block) as i64));
    state.prev_block = value;
}

fn read_block(d: &mut Decoder<'_>, state: &mut DeltaState) -> Result<BlockId, TraceError> {
    let delta = unzigzag(d.varint("block delta")?);
    let value = state.prev_block.wrapping_add(delta as u64);
    state.prev_block = value;
    Ok(BlockId::new(value))
}

/// LEB128 unsigned varint.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// ZigZag-maps a signed delta so small magnitudes stay small unsigned.
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// FNV-1a 64-bit over the body (cheap whole-file corruption detection).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Decoder<'_> {
    fn byte(&mut self, what: &str) -> Result<u8, TraceError> {
        let Some(&b) = self.buf.get(self.pos) else {
            return Err(TraceError::Corrupt(format!(
                "truncated while reading {what}"
            )));
        };
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, len: usize, what: &str) -> Result<&[u8], TraceError> {
        let Some(bytes) = self
            .pos
            .checked_add(len)
            .and_then(|end| self.buf.get(self.pos..end))
        else {
            return Err(TraceError::Corrupt(format!(
                "truncated while reading {what}"
            )));
        };
        self.pos += len;
        Ok(bytes)
    }

    fn varint(&mut self, what: &str) -> Result<u64, TraceError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte(what)?;
            if shift == 63 && byte > 1 {
                return Err(TraceError::Corrupt(format!("varint overflow in {what}")));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(TraceError::Corrupt(format!("varint too long in {what}")));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Think(5),
            Op::Read {
                pc: Pc::new(0x1000),
                block: BlockId::new(40),
            },
            Op::Write {
                pc: Pc::new(0x1004),
                block: BlockId::new(41),
            },
            Op::Lock(Lock::library(BlockId::new(7), 0x2000)),
            Op::Unlock(Lock::library(BlockId::new(7), 0x2000)),
            Op::Barrier(3),
            Op::FlagSet {
                pc: Pc::new(0x3000),
                block: BlockId::new(99),
            },
            Op::FlagWait {
                pc: Pc::new(0x3004),
                block: BlockId::new(99),
            },
            Op::Lock(Lock::ad_hoc(BlockId::new(8), 0x4000)),
            Op::Unlock(Lock::ad_hoc(BlockId::new(8), 0x4000)),
            Op::Think(0),
            Op::Read {
                pc: Pc::new(0),
                block: BlockId::new(u64::MAX),
            },
        ]
    }

    fn sample_trace() -> Trace {
        let mut writer = TraceWriter::new("sample", WorkloadParams::quick(2, 1));
        for op in sample_ops() {
            writer.push(0, op);
        }
        writer.push(
            1,
            Op::Read {
                pc: Pc::new(4),
                block: BlockId::new(1),
            },
        );
        writer.finish()
    }

    fn to_bytes(trace: &Trace) -> Vec<u8> {
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn varint_and_zigzag_round_trip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut d = Decoder { buf: &buf, pos: 0 };
            assert_eq!(d.varint("v").unwrap(), v);
            assert_eq!(d.pos, buf.len());
        }
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn every_op_kind_round_trips() {
        let trace = sample_trace();
        let back = Trace::read_from(&to_bytes(&trace)[..]).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.streams()[0], sample_ops());
    }

    #[test]
    fn header_metadata_round_trips() {
        for iterations in [None, Some(0), Some(7), Some(u32::MAX)] {
            let workload = WorkloadParams {
                nodes: 3,
                seed: u64::MAX,
                iterations,
            };
            let trace = TraceWriter::new("meta", workload).finish();
            let back = Trace::read_from(&to_bytes(&trace)[..]).unwrap();
            assert_eq!(back.workload(), workload);
            assert_eq!(back.name(), "meta");
            assert_eq!(back.streams().len(), 3);
        }
    }

    #[test]
    fn golden_prefix_is_stable() {
        // The first bytes of the format are load-bearing for external
        // producers: magic, version, then the varint-length-prefixed name.
        let bytes = to_bytes(&sample_trace());
        assert_eq!(&bytes[..7], b"LTRACE\0");
        assert_eq!(bytes[7], 1, "format version");
        assert_eq!(bytes[8], 6, "name length varint");
        assert_eq!(&bytes[9..15], b"sample");
    }

    #[test]
    fn replay_programs_emit_recorded_streams() {
        let trace = Arc::new(sample_trace());
        let mut programs = Trace::programs(&trace);
        assert_eq!(programs.len(), 2);
        for (node, program) in programs.iter_mut().enumerate() {
            assert_eq!(collect_ops(program.as_mut()), trace.streams()[node]);
        }
        // A second replay from the same trace is identical.
        let mut again = Trace::programs(&trace);
        assert_eq!(
            collect_ops(again[0].as_mut()),
            trace.streams()[0],
            "replay is repeatable"
        );
    }

    #[test]
    fn recording_a_benchmark_matches_its_programs() {
        let params = WorkloadParams::quick(3, 2);
        let trace = Trace::record(Benchmark::Tomcatv, &params);
        assert_eq!(trace.name(), "tomcatv");
        let mut direct = Benchmark::Tomcatv.programs(&params);
        for (node, program) in direct.iter_mut().enumerate() {
            assert_eq!(collect_ops(program.as_mut()), trace.streams()[node]);
        }
    }

    #[test]
    fn op_histogram_counts_by_kind() {
        let hist = sample_trace().op_histogram();
        let get = |name: &str| hist.iter().find(|(n, _)| *n == name).unwrap().1;
        assert_eq!(get("think"), 2);
        assert_eq!(get("read"), 3); // two on node 0, one on node 1
        assert_eq!(get("lock"), 2);
        assert_eq!(get("barrier"), 1);
        assert_eq!(hist.iter().map(|(_, c)| c).sum::<u64>(), 13);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            Trace::read_from(&b"NOTRACE\x01rest"[..]),
            Err(TraceError::BadMagic)
        ));
        assert!(matches!(
            Trace::read_from(&b"LT"[..]),
            Err(TraceError::BadMagic)
        ));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut bytes = to_bytes(&sample_trace());
        bytes[7] = 9;
        assert!(matches!(
            Trace::read_from(&bytes[..]),
            Err(TraceError::UnsupportedVersion(9))
        ));
    }

    #[test]
    fn corruption_fails_the_checksum() {
        let mut bytes = to_bytes(&sample_trace());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let err = Trace::read_from(&bytes[..]).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = to_bytes(&sample_trace());
        let err = Trace::read_from(&bytes[..bytes.len() - 9]).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
    }

    #[test]
    fn trailing_garbage_is_detected() {
        // Append bytes *inside* the checksummed region by re-checksumming.
        let trace = sample_trace();
        let mut body = Vec::new();
        trace.write_to(&mut body).unwrap();
        let payload_end = body.len() - 8;
        let mut tampered = body[..payload_end].to_vec();
        tampered.push(0xee);
        let digest = fnv1a(&tampered[8..]);
        tampered.extend_from_slice(&digest.to_le_bytes());
        let err = Trace::read_from(&tampered[..]).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    /// Builds a syntactically framed file (magic + version + body +
    /// correct checksum) around an arbitrary body — for crafting invalid
    /// bodies that still pass the outer integrity checks.
    fn frame(body: &[u8]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_MAGIC);
        bytes.push(TRACE_VERSION);
        bytes.extend_from_slice(body);
        bytes.extend_from_slice(&fnv1a(body).to_le_bytes());
        bytes
    }

    #[test]
    fn absurd_name_length_is_corrupt_not_a_panic() {
        // name_len = u64::MAX must not overflow the decoder's cursor.
        let mut body = Vec::new();
        write_varint(&mut body, u64::MAX);
        let err = Trace::read_from(&frame(&body)[..]).unwrap_err();
        assert!(matches!(err, TraceError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("name"), "{err}");
    }

    #[test]
    fn undersized_node_counts_are_corrupt() {
        for nodes in [0u64, 1] {
            let mut body = Vec::new();
            write_varint(&mut body, 1); // name_len
            body.push(b'x');
            write_varint(&mut body, nodes);
            write_varint(&mut body, 0); // seed
            body.push(0); // iters_flag
            let err = Trace::read_from(&frame(&body)[..]).unwrap_err();
            assert!(
                err.to_string().contains("at least 2"),
                "nodes={nodes}: {err}"
            );
        }
    }

    #[test]
    fn out_of_range_node_panics() {
        let trace = Arc::new(sample_trace());
        let result = std::panic::catch_unwind(|| TraceProgram::new(Arc::clone(&trace), 9));
        assert!(result.is_err());
    }
}
