//! [`WorkloadSource`]: one name for "anything that can drive a machine".
//!
//! The experiment and sweep drivers used to accept only the closed
//! [`Benchmark`] enum; the trace subsystem opens that surface. A source is
//! either a synthetic Table 2 kernel or a recorded [`Trace`], and the two
//! mix freely inside one sweep — an externally produced `.ltrace` file is
//! exactly as runnable as an in-tree benchmark.

use std::fmt;
use std::sync::Arc;

use crate::program::Program;
use crate::suite::{Benchmark, WorkloadParams};
use crate::trace::{StreamingTrace, Trace};

/// Error from building programs out of a [`WorkloadSource`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// Workloads need at least two nodes to share anything.
    TooFewNodes(u16),
    /// A trace was asked to replay at a geometry other than the one it was
    /// recorded on (the per-node streams *are* the workload; use
    /// [`WorkloadSource::effective_params`] to pin the recorded geometry).
    GeometryMismatch {
        /// The workload name recorded in the trace header.
        name: String,
        /// The geometry the trace was recorded on.
        recorded: u16,
        /// The geometry the caller requested.
        requested: u16,
    },
    /// A streaming trace's file could not be reopened (or re-read) when
    /// programs were built — streaming sources hold a path, not ops.
    Trace {
        /// The workload name recorded in the trace header.
        name: String,
        /// The underlying [`crate::TraceError`], rendered.
        message: String,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::TooFewNodes(n) => {
                write!(f, "workloads need at least 2 nodes, got {n}")
            }
            SourceError::GeometryMismatch {
                name,
                recorded,
                requested,
            } => write!(
                f,
                "trace `{name}` was recorded on {recorded} nodes and cannot replay on \
                 {requested} (traces replay at their recorded geometry)"
            ),
            SourceError::Trace { name, message } => {
                write!(f, "streaming trace `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for SourceError {}

/// Where a [`RunEstimate`] came from — surfaced by the sweep driver's
/// `--debug` schedule dump so operators can see *why* a run was ordered
/// where it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateSource {
    /// The op totals recorded in a trace file's header.
    TraceHeader,
    /// Summed [`Program::len_hint`]s of the synthetic kernel's scripts.
    Script,
}

impl fmt::Display for EstimateSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EstimateSource::TraceHeader => "trace header",
            EstimateSource::Script => "script",
        })
    }
}

/// An up-front estimate of how much work one run is: its total op count
/// across every node, and where that number came from.
///
/// Estimates drive longest-job-first sweep scheduling (see
/// `SweepSpec::schedule` in `ltp-system`); they never influence simulation
/// results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunEstimate {
    /// Total operations across every node.
    pub ops: u64,
    /// Provenance of the number.
    pub source: EstimateSource,
}

/// A workload the experiment driver can run: a synthetic benchmark, a
/// fully-decoded trace, or a streaming trace.
///
/// Synthetic sources honour the full [`WorkloadParams`] (nodes, seed,
/// iteration override). Both trace kinds pin their geometry at record
/// time — the per-node streams *are* the workload — so replay always uses
/// the recorded parameters; see [`WorkloadSource::effective_params`].
#[derive(Debug, Clone)]
pub enum WorkloadSource {
    /// One of the nine Table 2 kernels, generated at run time.
    Synthetic(Benchmark),
    /// A recorded trace, replayed verbatim (geometry pinned at record
    /// time). Shared via [`Arc`] so sweeping one trace under many policies
    /// never copies the streams.
    Trace(Arc<Trace>),
    /// A recorded trace replayed *incrementally from its file* with a
    /// bounded per-node decode window — the only way to run traces too
    /// large to materialize. Bit-identical to [`WorkloadSource::Trace`]
    /// replay of the same file.
    StreamingTrace(Arc<StreamingTrace>),
}

impl WorkloadSource {
    /// The workload's display name: the benchmark name, or the name
    /// recorded in the trace header.
    pub fn name(&self) -> &str {
        match self {
            WorkloadSource::Synthetic(benchmark) => benchmark.name(),
            WorkloadSource::Trace(trace) => trace.name(),
            WorkloadSource::StreamingTrace(trace) => trace.name(),
        }
    }

    /// The parameters a run of this source will actually use: `requested`
    /// for synthetic sources, the recorded parameters for traces.
    pub fn effective_params(&self, requested: WorkloadParams) -> WorkloadParams {
        match self {
            WorkloadSource::Synthetic(_) => requested,
            WorkloadSource::Trace(trace) => trace.workload(),
            WorkloadSource::StreamingTrace(trace) => trace.workload(),
        }
    }

    /// Builds one program per node.
    ///
    /// `params` should already be the [`WorkloadSource::effective_params`]
    /// for this source (the experiment driver guarantees that, which is why
    /// driver-level runs pin rather than reject a trace's geometry).
    ///
    /// # Errors
    ///
    /// Returns [`SourceError::TooFewNodes`] if `params.nodes < 2`,
    /// [`SourceError::GeometryMismatch`] if a trace is asked to replay at a
    /// geometry other than the one it was recorded on, and
    /// [`SourceError::Trace`] if a streaming trace's file cannot be
    /// reopened.
    pub fn programs(&self, params: &WorkloadParams) -> Result<Vec<Box<dyn Program>>, SourceError> {
        if params.nodes < 2 {
            return Err(SourceError::TooFewNodes(params.nodes));
        }
        let mismatch = |name: &str, recorded: u16| SourceError::GeometryMismatch {
            name: name.to_string(),
            recorded,
            requested: params.nodes,
        };
        match self {
            WorkloadSource::Synthetic(benchmark) => Ok(benchmark.programs(params)),
            WorkloadSource::Trace(trace) => {
                if params.nodes != trace.nodes() {
                    return Err(mismatch(trace.name(), trace.nodes()));
                }
                Ok(Trace::programs(trace))
            }
            WorkloadSource::StreamingTrace(trace) => {
                if params.nodes != trace.nodes() {
                    return Err(mismatch(trace.name(), trace.nodes()));
                }
                StreamingTrace::programs(trace).map_err(|e| SourceError::Trace {
                    name: trace.name().to_string(),
                    message: e.to_string(),
                })
            }
        }
    }

    /// Estimates the total op count of a run of this source at `params`
    /// (pass the [`WorkloadSource::effective_params`]), when that is known
    /// up front.
    ///
    /// Traces answer from their header totals without touching any op data;
    /// synthetic benchmarks build their (cheap, one-iteration-sized) scripts
    /// and sum [`Program::len_hint`]. `None` means the length is genuinely
    /// unknown — an openly generative program, or parameters the source
    /// cannot build under — and the caller should schedule conservatively.
    pub fn estimated_ops(&self, params: &WorkloadParams) -> Option<RunEstimate> {
        match self {
            WorkloadSource::Synthetic(benchmark) => {
                if params.nodes < 2 {
                    return None;
                }
                let mut total = 0u64;
                for program in benchmark.programs(params) {
                    total += program.len_hint()?;
                }
                Some(RunEstimate {
                    ops: total,
                    source: EstimateSource::Script,
                })
            }
            WorkloadSource::Trace(trace) => Some(RunEstimate {
                ops: trace.total_ops(),
                source: EstimateSource::TraceHeader,
            }),
            WorkloadSource::StreamingTrace(trace) => Some(RunEstimate {
                ops: trace.total_ops(),
                source: EstimateSource::TraceHeader,
            }),
        }
    }

    /// The underlying benchmark, if this is a synthetic source.
    pub fn as_benchmark(&self) -> Option<Benchmark> {
        match self {
            WorkloadSource::Synthetic(benchmark) => Some(*benchmark),
            WorkloadSource::Trace(_) | WorkloadSource::StreamingTrace(_) => None,
        }
    }
}

impl From<Benchmark> for WorkloadSource {
    fn from(benchmark: Benchmark) -> Self {
        WorkloadSource::Synthetic(benchmark)
    }
}

impl From<Arc<Trace>> for WorkloadSource {
    fn from(trace: Arc<Trace>) -> Self {
        WorkloadSource::Trace(trace)
    }
}

impl From<Trace> for WorkloadSource {
    fn from(trace: Trace) -> Self {
        WorkloadSource::Trace(Arc::new(trace))
    }
}

impl From<Arc<StreamingTrace>> for WorkloadSource {
    fn from(trace: Arc<StreamingTrace>) -> Self {
        WorkloadSource::StreamingTrace(trace)
    }
}

impl From<StreamingTrace> for WorkloadSource {
    fn from(trace: StreamingTrace) -> Self {
        WorkloadSource::StreamingTrace(Arc::new(trace))
    }
}

impl fmt::Display for WorkloadSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;

    #[test]
    fn synthetic_sources_pass_params_through() {
        let source = WorkloadSource::from(Benchmark::Em3d);
        assert_eq!(source.name(), "em3d");
        assert_eq!(source.as_benchmark(), Some(Benchmark::Em3d));
        let params = WorkloadParams::quick(4, 2);
        assert_eq!(source.effective_params(params), params);
        assert_eq!(source.programs(&params).unwrap().len(), 4);
    }

    #[test]
    fn trace_sources_pin_their_recorded_geometry() {
        let recorded = WorkloadParams::quick(3, 1);
        let source = WorkloadSource::from(Trace::record(Benchmark::Ocean, &recorded));
        assert_eq!(source.name(), "ocean");
        assert_eq!(source.as_benchmark(), None);
        // Whatever geometry a sweep requests, the trace replays as recorded.
        assert_eq!(
            source.effective_params(WorkloadParams::quick(16, 50)),
            recorded
        );
    }

    #[test]
    fn trace_replay_matches_the_synthetic_programs() {
        let params = WorkloadParams::quick(3, 2);
        let source = WorkloadSource::from(Trace::record(Benchmark::Moldyn, &params));
        let mut replayed = source.programs(&params).unwrap();
        let mut direct = Benchmark::Moldyn.programs(&params);
        for (r, d) in replayed.iter_mut().zip(direct.iter_mut()) {
            assert_eq!(collect_ops(r.as_mut()), collect_ops(d.as_mut()));
        }
    }

    #[test]
    fn streaming_sources_pin_geometry_and_replay_identically() {
        let params = WorkloadParams::quick(3, 2);
        let trace = Trace::record(Benchmark::Tomcatv, &params);
        let path =
            std::env::temp_dir().join(format!("ltp-source-stream-{}.ltrace", std::process::id()));
        trace.save(&path).unwrap();
        let source = WorkloadSource::from(StreamingTrace::open(&path).unwrap());
        assert_eq!(source.name(), "tomcatv");
        assert_eq!(source.as_benchmark(), None);
        assert_eq!(
            source.effective_params(WorkloadParams::quick(16, 9)),
            params,
            "streaming traces pin their recorded geometry"
        );
        let mut streamed = source.programs(&params).unwrap();
        for (node, program) in streamed.iter_mut().enumerate() {
            assert_eq!(collect_ops(program.as_mut()), trace.streams()[node]);
        }
        // Mismatched geometry is the same clean error as buffered traces.
        let err = source.programs(&WorkloadParams::quick(4, 2)).unwrap_err();
        assert!(matches!(err, SourceError::GeometryMismatch { .. }), "{err}");
        // A vanished file is a clean SourceError, not a panic.
        std::fs::remove_file(&path).unwrap();
        let err = source.programs(&params).unwrap_err();
        assert!(matches!(err, SourceError::Trace { .. }), "{err}");
        assert!(err.to_string().contains("tomcatv"), "{err}");
    }

    #[test]
    fn trace_programs_reject_mismatched_geometry_cleanly() {
        let source =
            WorkloadSource::from(Trace::record(Benchmark::Em3d, &WorkloadParams::quick(3, 1)));
        let err = source.programs(&WorkloadParams::quick(4, 1)).unwrap_err();
        assert_eq!(
            err,
            SourceError::GeometryMismatch {
                name: "em3d".to_string(),
                recorded: 3,
                requested: 4,
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("recorded on 3 nodes"), "{msg}");
        assert!(msg.contains("cannot replay on 4"), "{msg}");
        // Too-small geometries are also a clean error, for every source.
        let err = WorkloadSource::from(Benchmark::Em3d)
            .programs(&WorkloadParams::quick(1, 1))
            .unwrap_err();
        assert_eq!(err, SourceError::TooFewNodes(1));
    }
}
