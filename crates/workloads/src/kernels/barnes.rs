//! `barnes` — Barnes-Hut N-body simulation (SPLASH-2; paper input: 4K
//! particles, 21 iters).
//!
//! Paper §5.1: *"In barnes, the application's main data structure (an
//! octree) changes dynamically and frequently. Due to frequent
//! allocation/deallocation of dynamic memory, the last-touch signatures
//! associated with blocks become obsolete, reducing correct predictions and
//! increasing mispredictions. ... LTP and Last-PC achieve accuracies of 22%
//! and 20% respectively. Because barnes is lock-intensive, DSI manages to
//! predict invalidations after a critical section, achieving 42%."*
//!
//! Structure: a global pool of tree-cell blocks is re-bound every iteration
//! (seeded RNG), so the PC sequence touching a given *block* keeps changing
//! and learned signatures go stale. A small stable subset (two blocks per
//! node with fixed producer/consumer and fixed traces) provides the ≈20%
//! the predictors do catch. Tree updates go through a handful of heavily
//! contended library locks — the lock-intensity DSI exploits.

use ltp_core::{BlockId, Pc};
use ltp_sim::SimRng;

use crate::program::{Lock, LoopedScript, Op, Program};

/// PC of the tree-cell insertion store.
pub const PC_TREE_STORE: u32 = 0x8de88;
/// PC bases of the force-walk loads: the tree walk descends through code at
/// a different static site per tree level, so the trace vocabulary is wide
/// and the per-block traces rarely recur once the octree re-binds.
pub const PC_WALK_LOADS: [u32; 6] = [0x801a8, 0x8c240, 0x84f6c, 0x8a318, 0x832e4, 0x87d90];
/// PC of the stable-subtree load.
pub const PC_STABLE_LOAD: u32 = 0x8ce48;
/// PC of the force-walk acceleration update store.
pub const PC_WALK_STORE: u32 = 0x85b14;
/// PC base of the cell locks.
pub const PC_LOCK_BASE: u32 = 0x828dc;

/// Tree-cell blocks per node in the global pool.
const TREE_PER_NODE: u64 = 6;
/// Of those, how many keep a stable binding (the predictable fraction).
const STABLE_PER_NODE: u64 = 1;
/// Number of global cell locks (enough to keep contention moderate — the
/// lock-intensity DSI exploits comes from frequency, not queue length).
const CELL_LOCKS: u64 = 8;
/// Bodies inserted per node per iteration.
const INSERTS: usize = 2;
/// Force-walk path reads per node per iteration.
const WALKS: usize = 7;
/// Default iteration count (matches the paper's 21).
pub const DEFAULT_ITERS: u32 = 21;

fn tree_block(nodes: u16, idx: u64) -> u64 {
    idx % (u64::from(nodes) * TREE_PER_NODE)
}

fn lock_block(nodes: u16, l: u64) -> u64 {
    u64::from(nodes) * TREE_PER_NODE + l
}

/// Builds the per-node programs (the octree re-binding churn comes from
/// `seed`; identical seeds give identical runs).
pub fn programs(nodes: u16, iterations: u32, seed: u64) -> Vec<Box<dyn Program>> {
    let mut root_rng = SimRng::from_seed(seed ^ 0xBA41E5);
    let n = u64::from(nodes);
    (0..nodes)
        .map(|p| {
            let pu = u64::from(p);
            let mut rng = root_rng.derive(pu);
            let mut ops = vec![Op::Think(u64::from(p) * 21)];
            for _iter in 0..iterations {
                ops.push(Op::Barrier(0));
                // Build phase: insert bodies under cell locks. The first
                // insert always targets this node's stable cell; the rest
                // hit RNG-chosen cells (the re-binding churn).
                for i in 0..INSERTS {
                    let lock = Lock::library(
                        BlockId::new(lock_block(nodes, rng.below(CELL_LOCKS))),
                        PC_LOCK_BASE,
                    );
                    let target = if i == 0 {
                        pu * TREE_PER_NODE // stable binding
                    } else {
                        tree_block(nodes, rng.next_u64())
                    };
                    ops.push(Op::Lock(lock));
                    ops.push(Op::Write {
                        pc: Pc::new(PC_TREE_STORE),
                        block: BlockId::new(target),
                    });
                    ops.push(Op::Unlock(lock));
                    ops.push(Op::Think(30));
                }
                ops.push(Op::Barrier(1));
                // Force phase: walk random paths, plus one stable read of
                // the successor's stable cells (fixed trace every
                // iteration: the fraction LTP can learn).
                for s in 0..STABLE_PER_NODE {
                    ops.push(Op::Read {
                        pc: Pc::new(PC_STABLE_LOAD),
                        block: BlockId::new(((pu + 1) % n) * TREE_PER_NODE + s),
                    });
                }
                // Walks draw from a small per-iteration "hot" subtree with
                // replacement: blocks get revisited an unpredictable number
                // of times, so a predictor that fires after the first read
                // is frequently premature — the signature-staleness effect
                // of the rebuilt octree. A random third of the visits also
                // update the cell (body accelerations), which keeps the
                // directory's verification verdicts flowing.
                let hot: Vec<u64> = (0..4).map(|_| tree_block(nodes, rng.next_u64())).collect();
                for _ in 0..WALKS {
                    let a = hot[rng.below(hot.len() as u64) as usize];
                    let b = hot[rng.below(hot.len() as u64) as usize];
                    let pc_a = PC_WALK_LOADS[rng.below(PC_WALK_LOADS.len() as u64) as usize];
                    let pc_b = PC_WALK_LOADS[rng.below(PC_WALK_LOADS.len() as u64) as usize];
                    ops.push(Op::Read {
                        pc: Pc::new(pc_a),
                        block: BlockId::new(a),
                    });
                    ops.push(Op::Read {
                        pc: Pc::new(pc_b),
                        block: BlockId::new(b),
                    });
                    if rng.chance(2, 3) {
                        ops.push(Op::Write {
                            pc: Pc::new(PC_WALK_STORE),
                            block: BlockId::new(b),
                        });
                    }
                    ops.push(Op::Think(60));
                }
                ops.push(Op::Barrier(2));
            }
            Box::new(LoopedScript::new(ops, vec![], 0)) as Box<dyn Program>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;

    #[test]
    fn runs_are_seed_deterministic() {
        let mut a = programs(4, 2, 99);
        let mut b = programs(4, 2, 99);
        for (pa, pb) in a.iter_mut().zip(b.iter_mut()) {
            assert_eq!(collect_ops(pa.as_mut()), collect_ops(pb.as_mut()));
        }
    }

    #[test]
    fn different_seeds_rebind_differently() {
        let mut a = programs(4, 2, 1);
        let mut b = programs(4, 2, 2);
        let ops_a = collect_ops(a[0].as_mut());
        let ops_b = collect_ops(b[0].as_mut());
        assert_ne!(ops_a, ops_b, "the octree churn must depend on the seed");
    }

    #[test]
    fn stable_cells_are_touched_every_iteration() {
        let iters = 3;
        let mut progs = programs(3, iters, 7);
        let ops = collect_ops(progs[0].as_mut());
        let stable_writes = ops
            .iter()
            .filter(|op| matches!(op, Op::Write { block, .. } if block.index() == 0))
            .count();
        assert!(stable_writes >= iters as usize, "node 0's stable cell");
        let stable_reads = ops
            .iter()
            .filter(|op| matches!(op, Op::Read { pc, .. } if pc.value() == PC_STABLE_LOAD))
            .count();
        assert_eq!(stable_reads, (iters as u64 * STABLE_PER_NODE) as usize);
    }

    #[test]
    fn uses_few_contended_locks() {
        let mut progs = programs(8, 2, 3);
        let mut locks = std::collections::HashSet::new();
        for p in &mut progs {
            for op in collect_ops(p.as_mut()) {
                if let Op::Lock(l) = op {
                    assert!(l.exposed);
                    locks.insert(l.block);
                }
            }
        }
        assert!(locks.len() <= CELL_LOCKS as usize);
    }
}
