//! `ocean` — eddy-current ocean simulation with red/black SOR (SPLASH-2;
//! paper input: 128×128, 12 iters).
//!
//! Paper §5.1: *"Ocean implements a red/black SOR algorithm in a
//! computation phase encapsulated in a function invoked twice every
//! iteration. The resulting multiple touches by the function's PCs reduce
//! prediction accuracy in Last-PC to 40%. Sharing blocks in ocean often
//! spans beyond critical sections; a block's producer in a critical section
//! reads the block in the subsequent phase. As a result, DSI predicts only
//! 38% of the invalidations accurately and generates 20% mispredicted
//! invalidations."*
//!
//! Structure: border blocks receive two stores from the *same* stencil PC
//! in the red pass and two more in the black pass (the twice-invoked
//! function); a lock-protected work block is written in the critical
//! section and **read again after the release** — DSI flushes it at the
//! boundary and pays a premature miss; single-touch boundary-condition
//! blocks give Last-PC the fraction it does predict.

use super::{read_n, write_n};
use crate::program::{Lock, LoopedScript, Op, Program};

/// PC of the SOR stencil store (same function, red and black passes).
pub const PC_SOR_STORE: u32 = 0x51640;
/// PC of the border gather load.
pub const PC_BORDER_LOAD: u32 = 0x59728;
/// PC of the critical-section work store.
pub const PC_WORK_STORE: u32 = 0x56c00;
/// PC of the producer's post-critical-section re-read.
pub const PC_WORK_REREAD: u32 = 0x50820;
/// PC of the consumer's work-block load.
pub const PC_WORK_LOAD: u32 = 0x507a0;
/// PC of the single-touch boundary-condition store.
pub const PC_BC_STORE: u32 = 0x517fc;
/// PC of the consumer's post-barrier border re-read (the "sharing spans
/// beyond critical sections" access).
pub const PC_BORDER_REREAD: u32 = 0x53d6c;
/// PC of the single-touch boundary-condition load.
pub const PC_BC_LOAD: u32 = 0x537f8;
/// PC base of the per-node lock.
pub const PC_LOCK_BASE: u32 = 0x53b8c;

/// Border blocks per node written every iteration.
const BORDER_BLOCKS: u64 = 8;
/// Border blocks written only on alternate iterations (red vs black grid
/// parity): their consumers refetch without a version change half the time,
/// which is exactly the "varying sharing pattern" that defeats DSI's
/// versioning filter (§2.1).
const ALT_BORDER_BLOCKS: u64 = 5;
/// Single-touch boundary-condition blocks per node.
const BC_BLOCKS: u64 = 5;
/// Lock-protected work blocks per node.
const WORK_BLOCKS: u64 = 3;
/// One lock block per node.
const NODE_SPAN: u64 = BORDER_BLOCKS + ALT_BORDER_BLOCKS + BC_BLOCKS + WORK_BLOCKS + 1;
/// Default iteration count (paper: 12).
pub const DEFAULT_ITERS: u32 = 16;

fn border_block(node: u64, j: u64) -> u64 {
    node * NODE_SPAN + j
}

fn alt_border_block(node: u64, j: u64) -> u64 {
    node * NODE_SPAN + BORDER_BLOCKS + j
}

fn bc_block(node: u64, j: u64) -> u64 {
    node * NODE_SPAN + BORDER_BLOCKS + ALT_BORDER_BLOCKS + j
}

fn work_block(node: u64, j: u64) -> u64 {
    node * NODE_SPAN + BORDER_BLOCKS + ALT_BORDER_BLOCKS + BC_BLOCKS + j
}

fn lock_block(node: u64) -> u64 {
    node * NODE_SPAN + BORDER_BLOCKS + ALT_BORDER_BLOCKS + BC_BLOCKS + WORK_BLOCKS
}

/// Builds the per-node programs.
///
/// The loop body covers **two** SOR iterations (one red-parity, one
/// black-parity) so the alternating border strips are written only every
/// other iteration.
pub fn programs(nodes: u16, iterations: u32) -> Vec<Box<dyn Program>> {
    let n = u64::from(nodes);
    (0..nodes)
        .map(|p| {
            let pu = u64::from(p);
            let pred = (pu + n - 1) % n;
            let lock = Lock::library(ltp_core::BlockId::new(lock_block(pu)), PC_LOCK_BASE);
            let mut body = Vec::new();
            for parity in 0..2u64 {
                push_iteration(&mut body, pu, pred, lock, parity == 0);
            }
            Box::new(LoopedScript::new(
                vec![Op::Think(u64::from(p) * 17)],
                body,
                iterations.div_ceil(2),
            )) as Box<dyn Program>
        })
        .collect()
}

/// Appends one SOR iteration; `write_alt` selects the grid parity whose
/// alternating strips get updated.
fn push_iteration(body: &mut Vec<Op>, pu: u64, pred: u64, lock: Lock, write_alt: bool) {
    {
        // Critical section first: update the work blocks under the
        // lock.
        body.push(Op::Lock(lock));
        for j in 0..WORK_BLOCKS {
            write_n(body, PC_WORK_STORE, work_block(pu, j), 2);
        }
        body.push(Op::Unlock(lock));

        // Sharing spans beyond the critical section: the producer reads
        // its work blocks again after releasing the lock (DSI already
        // flushed them — a premature self-invalidation every time).
        for j in 0..WORK_BLOCKS {
            body.push(super::read(PC_WORK_REREAD, work_block(pu, j)));
        }

        // Red pass: the stencil function updates each border block
        // (2 elements per pass).
        for j in 0..BORDER_BLOCKS {
            write_n(body, PC_SOR_STORE, border_block(pu, j), 2);
            body.push(Op::Think(6));
        }

        // Black pass: the SAME function runs again over the borders —
        // identical PCs, two more stores per block.
        for j in 0..BORDER_BLOCKS {
            write_n(body, PC_SOR_STORE, border_block(pu, j), 2);
            body.push(Op::Think(6));
        }

        // Alternating strips: updated only on red-parity iterations.
        if write_alt {
            for j in 0..ALT_BORDER_BLOCKS {
                write_n(body, PC_SOR_STORE, alt_border_block(pu, j), 2);
            }
        }

        // Boundary conditions: single-touch stores.
        for j in 0..BC_BLOCKS {
            body.push(super::write(PC_BC_STORE, bc_block(pu, j)));
        }
        body.push(Op::Think(150));
        body.push(Op::Barrier(0));

        // Neighbour exchange: read the predecessor's borders (×2 — the
        // gather is also multi-element), its alternating strips (every
        // iteration, though they change only every other one), its
        // boundary conditions (single touch: Last-PC's bread and
        // butter) and its work blocks.
        for j in 0..BORDER_BLOCKS {
            read_n(body, PC_BORDER_LOAD, border_block(pred, j), 2);
            body.push(Op::Think(6));
        }
        for j in 0..ALT_BORDER_BLOCKS {
            read_n(body, PC_BORDER_LOAD, alt_border_block(pred, j), 2);
        }
        for j in 0..BC_BLOCKS {
            body.push(super::read(PC_BC_LOAD, bc_block(pred, j)));
        }
        for j in 0..WORK_BLOCKS {
            body.push(super::read(PC_WORK_LOAD, work_block(pred, j)));
        }
        body.push(Op::Barrier(1));

        // Sharing spans beyond the synchronization on the consumer side
        // as well: the next phase re-reads the borders and boundary
        // conditions it gathered before the barrier. DSI flushed them at
        // the barrier — another premature refetch — and the refetched
        // copy's version is unchanged, so its eventual invalidation goes
        // unpredicted.
        for j in 0..BORDER_BLOCKS / 2 {
            body.push(super::read(PC_BORDER_REREAD, border_block(pred, j)));
        }
        body.push(super::read(PC_BORDER_REREAD, bc_block(pred, 0)));
        body.push(Op::Think(40));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;

    #[test]
    fn borders_get_four_stores_by_one_pc_per_iteration() {
        // The loop body covers two SOR iterations (red/black parity).
        let mut progs = programs(2, 2);
        let ops = collect_ops(progs[0].as_mut());
        let b = border_block(0, 0);
        let stores = ops
            .iter()
            .filter(|op| {
                matches!(op, Op::Write { pc, block }
                    if block.index() == b && pc.value() == PC_SOR_STORE)
            })
            .count();
        assert_eq!(stores, 8, "2 iterations × (red ×2 + black ×2), same PC");
    }

    #[test]
    fn alternating_strips_written_every_other_iteration() {
        let mut progs = programs(2, 2);
        let ops = collect_ops(progs[0].as_mut());
        let alt = alt_border_block(0, 0);
        let writes = ops
            .iter()
            .filter(|op| matches!(op, Op::Write { block, .. } if block.index() == alt))
            .count();
        let reads_by_peer = {
            let mut peer = programs(2, 2);
            collect_ops(peer[1].as_mut())
                .iter()
                .filter(|op| matches!(op, Op::Read { block, .. } if block.index() == alt))
                .count()
        };
        assert_eq!(writes, 2, "written once per red iteration only");
        assert_eq!(reads_by_peer, 4, "read ×2 every iteration regardless");
    }

    #[test]
    fn producer_rereads_work_blocks_after_unlock() {
        let mut progs = programs(2, 1);
        let ops = collect_ops(progs[0].as_mut());
        let unlock_at = ops
            .iter()
            .position(|op| matches!(op, Op::Unlock(_)))
            .expect("unlock present");
        let reread_at = ops
            .iter()
            .position(|op| matches!(op, Op::Read { pc, .. } if pc.value() == PC_WORK_REREAD))
            .expect("re-read present");
        assert!(
            reread_at > unlock_at,
            "the re-read must come after the release (beyond the sync)"
        );
    }

    #[test]
    fn bc_blocks_are_single_touch_per_side() {
        let mut progs = programs(3, 2);
        let ops = collect_ops(progs[1].as_mut());
        let own_bc = bc_block(1, 0);
        let touches = ops
            .iter()
            .filter(|op| matches!(op, Op::Write { block, .. } if block.index() == own_bc))
            .count();
        assert_eq!(touches, 2, "owner writes its bc block once per iteration");
    }

    #[test]
    fn every_node_has_a_private_lock() {
        let mut progs = programs(4, 1);
        let mut locks = std::collections::HashSet::new();
        for p in &mut progs {
            for op in collect_ops(p.as_mut()) {
                if let Op::Lock(l) = op {
                    assert!(l.exposed, "ocean locks are library locks");
                    locks.insert(l.block);
                }
            }
        }
        assert_eq!(locks.len(), 4);
    }
}
