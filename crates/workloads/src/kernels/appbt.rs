//! `appbt` — NAS block-tridiagonal solver (paper input: 12×12×12 cubes,
//! 40 iters).
//!
//! Paper §5.1: *"In appbt, most last-touches to data blocks are spread among
//! different PCs. The application, however, uses spin-locks in a gaussian
//! elimination phase to synchronize processors. Last-PC predicts most of
//! the data block last-touches, but fails to predict the last-touches to
//! the spin-locks, achieving a prediction accuracy of 75%. Because the
//! spin-locks are not exposed to DSI, it fails to predict a large fraction
//! of the invalidations, only predicting 40% of them correctly. Moreover,
//! DSI predicts 25% of the invalidations prematurely."*
//!
//! Structure: a pipelined gaussian-elimination sweep hands rows from node
//! `p-1` to `p` through **ad-hoc flags** ([`Op::FlagSet`]/[`Op::FlagWait`]
//! — invisible to DSI). Row blocks are written by a multi-PC sequence
//! (`AW1, AW2, AW3` — distinct final PC: Last-PC friendly) and consumed
//! with an early probe + late read (the early probe makes DSI's
//! barrier-flushed copies premature). Half the rows end with a repeated
//! store PC, which only trace signatures can disambiguate — the gap between
//! Last-PC's 75% and LTP's ≈90%. Boundary-condition blocks exchanged across
//! the barrier give DSI the fraction it does predict.

use ltp_core::{BlockId, Pc};

use super::{read, write};
use crate::program::{LoopedScript, Op, Program};

/// PC of the consumer's early probe load.
pub const PC_EARLY_PROBE: u32 = 0x6815c;
/// PC of the consumer's post-flag late load.
pub const PC_LATE_LOAD: u32 = 0x69a1c;
/// PCs of the three-stage row update (distinct: Last-PC predicts these).
pub const PC_ROW_W1: u32 = 0x606c8;
/// Second stage.
pub const PC_ROW_W2: u32 = 0x68fac;
/// Third stage (unique final touch).
pub const PC_ROW_W3: u32 = 0x632e4;
/// PC of the flag signal store.
pub const PC_FLAG_SET: u32 = 0x6b74c;
/// PC of the flag spin load.
pub const PC_FLAG_WAIT: u32 = 0x6a65c;
/// PC of the boundary-condition store.
pub const PC_BC_STORE: u32 = 0x6b388;
/// PC of the boundary-condition load.
pub const PC_BC_LOAD: u32 = 0x68b80;

/// Row blocks per node (half end `…W2,W3`, half end `…W2,W2`).
const ROW_BLOCKS: u64 = 10;
/// Boundary-condition blocks per node.
const BC_BLOCKS: u64 = 6;
/// One flag block per node.
const NODE_SPAN: u64 = ROW_BLOCKS + BC_BLOCKS + 1;
/// Default iteration count (paper: 40, scaled).
pub const DEFAULT_ITERS: u32 = 20;

fn row_block(node: u64, j: u64) -> u64 {
    node * NODE_SPAN + j
}

fn bc_block(node: u64, j: u64) -> u64 {
    node * NODE_SPAN + ROW_BLOCKS + j
}

fn flag_block(node: u64) -> u64 {
    node * NODE_SPAN + ROW_BLOCKS + BC_BLOCKS
}

/// Builds the per-node programs.
pub fn programs(nodes: u16, iterations: u32) -> Vec<Box<dyn Program>> {
    let n = u64::from(nodes);
    (0..nodes)
        .map(|p| {
            let pu = u64::from(p);
            let pred = (pu + n - 1) % n;
            let mut body = Vec::new();

            // Early probe of the predecessor's rows (before the flag!) —
            // after DSI's barrier flush this refetch is premature.
            for j in 0..ROW_BLOCKS {
                body.push(read(PC_EARLY_PROBE, row_block(pred, j)));
            }

            // Wait for the predecessor's hand-off (ad-hoc, invisible to
            // DSI). Node 0 leads the sweep and never waits.
            if p != 0 {
                body.push(Op::FlagWait {
                    pc: Pc::new(PC_FLAG_WAIT),
                    block: BlockId::new(flag_block(pu)),
                });
            }

            // Consume the predecessor's rows for real.
            for j in 0..ROW_BLOCKS {
                body.push(read(PC_LATE_LOAD, row_block(pred, j)));
                body.push(Op::Think(10));
            }

            // Eliminate: update my rows with a multi-PC sequence. Half the
            // rows end with a distinct PC (W1,W2,W3 — Last-PC succeeds),
            // half end with a repeated PC (W1,W2,W2 — only LTP succeeds).
            for j in 0..ROW_BLOCKS {
                body.push(write(PC_ROW_W1, row_block(pu, j)));
                body.push(write(PC_ROW_W2, row_block(pu, j)));
                if j % 2 == 0 {
                    body.push(write(PC_ROW_W3, row_block(pu, j)));
                } else {
                    body.push(write(PC_ROW_W2, row_block(pu, j)));
                }
                body.push(Op::Think(12));
            }

            // Hand off to the successor (the last node wraps to complete
            // the ring in the next iteration — its set is consumed by node
            // 0's flag only if node 0 waited; node 0 never waits, so the
            // last node signals nobody).
            if pu + 1 < n {
                body.push(Op::FlagSet {
                    pc: Pc::new(PC_FLAG_SET),
                    block: BlockId::new(flag_block(pu + 1)),
                });
            }

            // Boundary conditions, then the iteration barrier (the only
            // synchronization DSI sees).
            for j in 0..BC_BLOCKS {
                body.push(write(PC_BC_STORE, bc_block(pu, j)));
            }
            body.push(Op::Think(100));
            body.push(Op::Barrier(0));
            for j in 0..BC_BLOCKS {
                body.push(read(PC_BC_LOAD, bc_block(pred, j)));
            }
            body.push(Op::Barrier(1));

            Box::new(LoopedScript::new(
                vec![Op::Think(u64::from(p) * 5)],
                body,
                iterations,
            )) as Box<dyn Program>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;

    #[test]
    fn flags_are_invisible_to_dsi() {
        let mut progs = programs(3, 1);
        for p in &mut progs {
            for op in collect_ops(p.as_mut()) {
                assert!(
                    !matches!(op, Op::Lock(_) | Op::Unlock(_)),
                    "appbt synchronizes with flags, not library locks"
                );
            }
        }
    }

    #[test]
    fn node_zero_leads_without_waiting() {
        let mut progs = programs(3, 1);
        let ops = collect_ops(progs[0].as_mut());
        assert!(!ops.iter().any(|op| matches!(op, Op::FlagWait { .. })));
        assert!(ops.iter().any(|op| matches!(op, Op::FlagSet { .. })));
    }

    #[test]
    fn half_the_rows_end_with_a_repeated_pc() {
        let mut progs = programs(2, 1);
        let ops = collect_ops(progs[0].as_mut());
        let last_store = |b: u64| -> Vec<u32> {
            ops.iter()
                .filter_map(|op| match op {
                    Op::Write { pc, block } if block.index() == b => Some(pc.value()),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(
            last_store(row_block(0, 0)),
            vec![PC_ROW_W1, PC_ROW_W2, PC_ROW_W3]
        );
        assert_eq!(
            last_store(row_block(0, 1)),
            vec![PC_ROW_W1, PC_ROW_W2, PC_ROW_W2]
        );
    }

    #[test]
    fn early_probe_precedes_the_flag_wait() {
        let mut progs = programs(3, 1);
        let ops = collect_ops(progs[1].as_mut());
        let probe = ops
            .iter()
            .position(|op| matches!(op, Op::Read { pc, .. } if pc.value() == PC_EARLY_PROBE))
            .unwrap();
        let wait = ops
            .iter()
            .position(|op| matches!(op, Op::FlagWait { .. }))
            .unwrap();
        assert!(probe < wait);
    }
}
