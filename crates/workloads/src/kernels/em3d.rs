//! `em3d` — electromagnetic wave propagation on a bipartite graph (Split-C
//! benchmark; paper input: 76800 nodes, degree 2, 15% remote, 50 iters).
//!
//! Paper §5.1: *"Em3d is the most well-behaved application ... computation
//! proceeds in a loop and the majority of the blocks are only touched once
//! prior to invalidation. The sharing patterns are static and repetitive
//! resulting in a high (>95%) prediction accuracy in all the predictors."*
//!
//! Structure: each node owns a slice of graph-node blocks. Every iteration
//! the owner updates each block once (one store), a barrier separates the
//! phases, and the two graph-neighbours (degree 2) each read the block once.
//! Every copy therefore carries a one-touch trace, the best case for every
//! predictor — while DSI's single bulk flush at the barrier produces the
//! directory queueing spike of Table 4.

use ltp_core::BlockId;

use super::{read, write};
use crate::program::{LoopedScript, Op, Program};

/// PC of the owner's update store.
pub const PC_UPDATE: u32 = 0x1a3b0;
/// PC of the consumer's gather load.
pub const PC_GATHER: u32 = 0x11c80;

/// Graph-node blocks owned per machine node.
const BLOCKS_PER_NODE: u64 = 32;
/// Degree of the bipartite graph (paper: 2).
const DEGREE: u64 = 2;
/// Default iteration count (matches the paper's 50; em3d is cheap enough
/// not to scale down, and the >95% accuracy claim needs the training
/// iterations amortized).
pub const DEFAULT_ITERS: u32 = 50;

/// Builds the per-node programs.
pub fn programs(nodes: u16, iterations: u32) -> Vec<Box<dyn Program>> {
    let n = u64::from(nodes);
    (0..nodes)
        .map(|p| {
            let pu = u64::from(p);
            let own = |j: u64| pu * BLOCKS_PER_NODE + j;
            let mut body = Vec::new();
            // Update phase: one store per owned block.
            for j in 0..BLOCKS_PER_NODE {
                body.push(write(PC_UPDATE, own(j)));
                body.push(Op::Think(12));
            }
            body.push(Op::Barrier(0));
            // Gather phase: read each neighbour slice once (degree 2).
            for d in 1..=DEGREE {
                let neighbour = (pu + d) % n;
                for j in 0..BLOCKS_PER_NODE {
                    body.push(read(PC_GATHER, neighbour * BLOCKS_PER_NODE + j));
                    body.push(Op::Think(12));
                }
            }
            body.push(Op::Barrier(1));
            Box::new(LoopedScript::new(
                vec![Op::Think(u64::from(p) * 7)],
                body,
                iterations,
            )) as Box<dyn Program>
        })
        .collect()
}

/// The block range this kernel uses (for tests and layout assertions).
pub fn block_span(nodes: u16) -> BlockId {
    BlockId::new(u64::from(nodes) * BLOCKS_PER_NODE)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;

    #[test]
    fn every_block_is_written_once_and_read_twice_per_iteration() {
        let nodes = 4u16;
        let mut programs = programs(nodes, 1);
        let mut writes = std::collections::HashMap::new();
        let mut reads = std::collections::HashMap::new();
        for p in &mut programs {
            for op in collect_ops(p.as_mut()) {
                match op {
                    Op::Write { block, .. } => *writes.entry(block).or_insert(0) += 1,
                    Op::Read { block, .. } => *reads.entry(block).or_insert(0) += 1,
                    _ => {}
                }
            }
        }
        for b in 0..block_span(nodes).index() {
            let b = ltp_core::BlockId::new(b);
            assert_eq!(writes.get(&b), Some(&1), "{b} writes");
            assert_eq!(reads.get(&b), Some(&2), "{b} reads (degree 2)");
        }
    }

    #[test]
    fn pcs_are_stable_across_iterations() {
        let mut programs = programs(2, 2);
        let ops = collect_ops(programs[0].as_mut());
        let pcs: std::collections::HashSet<u32> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Write { pc, .. } | Op::Read { pc, .. } => Some(pc.value()),
                _ => None,
            })
            .collect();
        assert_eq!(pcs.len(), 2, "exactly the two static instruction sites");
    }

    #[test]
    fn programs_are_deterministic() {
        let mut a = programs(3, 2);
        let mut b = programs(3, 2);
        for (pa, pb) in a.iter_mut().zip(b.iter_mut()) {
            assert_eq!(collect_ops(pa.as_mut()), collect_ops(pb.as_mut()));
        }
    }
}
