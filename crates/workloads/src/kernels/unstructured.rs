//! `unstructured` — computational fluid dynamics over an unstructured mesh
//! (paper input: mesh 2K, 30 iters).
//!
//! Paper §5.1: *"In unstructured, the main loop iterates over data values
//! computing a threshold"* — the same instruction touches a block several
//! times, killing Last-PC — and *"DSI only achieves 38% ... because DSI
//! does not select blocks with migratory sharing patterns."*
//!
//! Structure: edge-data blocks are shared by neighbouring node pairs and
//! migrate between them every iteration (read ×3 then write ×2 by one side,
//! then the other), so the dominant traffic is migratory and invisible to
//! DSI's versioning filter. A smaller producer-consumer set of node-
//! coordinate blocks (written ×2 by the owner, read ×4 by two neighbours)
//! provides the fraction DSI does catch.

use super::{read_n, write_n};
use crate::program::{LoopedScript, Op, Program};

/// PC of the edge-sweep load (threshold computation, ×3 per block).
pub const PC_EDGE_LOAD: u32 = 0x33924;
/// PC of the edge-sweep store (×2 per block).
pub const PC_EDGE_STORE: u32 = 0x323b8;
/// PC of the coordinate update store (×2 per block).
pub const PC_COORD_STORE: u32 = 0x3bc88;
/// PC of the coordinate gather load (×4 per block).
pub const PC_COORD_LOAD: u32 = 0x31a3c;

/// Edge blocks shared between node p and p+1.
const EDGE_BLOCKS: u64 = 10;
/// Coordinate blocks owned per node.
const COORD_BLOCKS: u64 = 5;
const NODE_SPAN: u64 = EDGE_BLOCKS + COORD_BLOCKS;
/// Default iteration count.
pub const DEFAULT_ITERS: u32 = 25;

fn edge_block(node: u64, j: u64) -> u64 {
    node * NODE_SPAN + j
}

fn coord_block(node: u64, j: u64) -> u64 {
    node * NODE_SPAN + EDGE_BLOCKS + j
}

/// Builds the per-node programs.
pub fn programs(nodes: u16, iterations: u32) -> Vec<Box<dyn Program>> {
    let n = u64::from(nodes);
    (0..nodes)
        .map(|p| {
            let pu = u64::from(p);
            let pred = (pu + n - 1) % n;
            let mut body = Vec::new();

            // Sweep over my own edges: threshold reads then accumulate.
            for j in 0..EDGE_BLOCKS {
                read_n(&mut body, PC_EDGE_LOAD, edge_block(pu, j), 3);
                write_n(&mut body, PC_EDGE_STORE, edge_block(pu, j), 2);
                body.push(Op::Think(15));
            }
            // Update my node coordinates.
            for j in 0..COORD_BLOCKS {
                write_n(&mut body, PC_COORD_STORE, coord_block(pu, j), 2);
            }
            body.push(Op::Barrier(0));

            // Sweep the shared edges from the other side (they migrate).
            for j in 0..EDGE_BLOCKS {
                read_n(&mut body, PC_EDGE_LOAD, edge_block(pred, j), 3);
                write_n(&mut body, PC_EDGE_STORE, edge_block(pred, j), 2);
                body.push(Op::Think(15));
            }
            // Gather neighbour coordinates (two neighbours, ×4 loads).
            for d in 1..=2u64 {
                let nb = (pu + d) % n;
                for j in 0..COORD_BLOCKS {
                    read_n(&mut body, PC_COORD_LOAD, coord_block(nb, j), 4);
                }
            }
            body.push(Op::Barrier(1));

            Box::new(LoopedScript::new(
                vec![Op::Think(u64::from(p) * 9)],
                body,
                iterations,
            )) as Box<dyn Program>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;

    #[test]
    fn edges_are_written_by_exactly_two_nodes() {
        let nodes = 4u16;
        let mut progs = programs(nodes, 1);
        let mut writers: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for (i, p) in progs.iter_mut().enumerate() {
            for op in collect_ops(p.as_mut()) {
                if let Op::Write { pc, block } = op {
                    if pc.value() == PC_EDGE_STORE {
                        writers.entry(block.index()).or_default().insert(i);
                    }
                }
            }
        }
        assert_eq!(writers.len(), (nodes as u64 * EDGE_BLOCKS) as usize);
        for (b, w) in writers {
            assert_eq!(w.len(), 2, "edge {b} must migrate between two nodes");
        }
    }

    #[test]
    fn edge_touch_counts_defeat_single_pc_prediction() {
        let mut progs = programs(3, 1);
        let ops = collect_ops(progs[0].as_mut());
        let own_edge = edge_block(0, 0);
        let touches: Vec<u32> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Read { pc, block } | Op::Write { pc, block } if block.index() == own_edge => {
                    Some(pc.value())
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            touches,
            vec![
                PC_EDGE_LOAD,
                PC_EDGE_LOAD,
                PC_EDGE_LOAD,
                PC_EDGE_STORE,
                PC_EDGE_STORE
            ],
            "the final store PC repeats: ambiguous for Last-PC"
        );
    }

    #[test]
    fn coord_blocks_have_two_remote_readers() {
        let nodes = 5u16;
        let mut progs = programs(nodes, 1);
        let mut readers: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for (i, p) in progs.iter_mut().enumerate() {
            for op in collect_ops(p.as_mut()) {
                if let Op::Read { pc, block } = op {
                    if pc.value() == PC_COORD_LOAD {
                        readers.entry(block.index()).or_default().insert(i);
                    }
                }
            }
        }
        for (b, r) in readers {
            assert_eq!(r.len(), 2, "coord block {b} readers");
        }
    }
}
