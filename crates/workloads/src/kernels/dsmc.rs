//! `dsmc` — discrete simulation Monte Carlo of gas particles (paper input:
//! 48600 molecules, 9720 cells, 400 iters).
//!
//! Paper §5.1: *"In dsmc communication occurs through message buffers
//! implemented through a library. Multiple calls to the messaging code in
//! the same computation phase result in multiple accesses to a block by the
//! same instruction, preventing Last-PC from accurately predicting
//! invalidations. Subsequent accesses to the main data structure beyond the
//! synchronization in the message buffers significantly reduce DSI's
//! ability to predict and result in a large number of mispredictions."*
//! §5.4: computation overlaps most invalidations, so self-invalidation
//! barely changes execution time.
//!
//! Structure: cell blocks are updated in two half-phases **straddling** the
//! lock-protected message exchange (DSI flushes them at the lock boundary
//! and the second half-phase pays premature misses); buffers are filled
//! through one library store PC (×4 per block, every neighbour, every call)
//! and drained by the consumer's library load PC after the barrier.

use ltp_core::BlockId;

use super::{read, read_n, write_n};
use crate::program::{Lock, LoopedScript, Op, Program};

/// PC of the library's buffer-fill store (shared by every call site).
pub const PC_LIB_STORE: u32 = 0x76b64;
/// PC of the library's buffer-drain load.
pub const PC_LIB_LOAD: u32 = 0x7386c;
/// PC of the first-half cell update store.
pub const PC_CELL_STORE_A: u32 = 0x772fc;
/// PC of the second-half cell update store (beyond the sync).
pub const PC_CELL_STORE_B: u32 = 0x796d8;
/// PC of the neighbour's boundary-cell load.
pub const PC_BOUNDARY_LOAD: u32 = 0x74734;
/// PC of the owner's post-barrier cell tally check.
pub const PC_CELL_CHECK: u32 = 0x75210;
/// PC base of the per-channel message lock.
pub const PC_LOCK_BASE: u32 = 0x7cf34;

/// Cell blocks per node.
const CELL_BLOCKS: u64 = 4;
/// Message-buffer blocks per outgoing channel (one per library call round).
const BUF_BLOCKS: u64 = 2;
/// Outgoing channels (neighbours messaged per iteration).
const CHANNELS: u64 = 2;
/// Per-node span: cells + channel buffers + channel locks.
const NODE_SPAN: u64 = CELL_BLOCKS + CHANNELS * BUF_BLOCKS + CHANNELS;
/// Default iteration count (paper: 400, scaled).
pub const DEFAULT_ITERS: u32 = 18;

fn cell_block(node: u64, j: u64) -> u64 {
    node * NODE_SPAN + j
}

fn buf_block(node: u64, channel: u64, j: u64) -> u64 {
    node * NODE_SPAN + CELL_BLOCKS + channel * BUF_BLOCKS + j
}

fn lock_block(node: u64, channel: u64) -> u64 {
    node * NODE_SPAN + CELL_BLOCKS + CHANNELS * BUF_BLOCKS + channel
}

/// Builds the per-node programs.
pub fn programs(nodes: u16, iterations: u32) -> Vec<Box<dyn Program>> {
    let n = u64::from(nodes);
    (0..nodes)
        .map(|p| {
            let pu = u64::from(p);
            let mut body = Vec::new();

            // Move particles: heavy local computation, then the first half
            // of the cell updates. Computation dominates (paper §5.4: dsmc
            // overlaps most invalidations, so self-invalidation is
            // execution-time-neutral).
            body.push(Op::Think(30_000));
            // Sample the neighbour's boundary cells at phase start — their
            // producer updates them *mid-phase*, so these copies are
            // invalidated with no synchronization boundary in between:
            // traffic DSI structurally cannot predict.
            let nb = (pu + 1) % n;
            for j in 0..CELL_BLOCKS {
                body.push(read(PC_BOUNDARY_LOAD, cell_block(nb, j)));
            }
            for j in 0..CELL_BLOCKS {
                write_n(&mut body, PC_CELL_STORE_A, cell_block(pu, j), 2);
            }

            // Message exchange through the library: same store PC for every
            // channel and every buffer block — and TWO calls per phase
            // ("multiple calls to the messaging code in the same computation
            // phase"), each call filling one buffer block per channel.
            for round in 0..BUF_BLOCKS {
                for c in 0..CHANNELS {
                    let lock = Lock::library(
                        BlockId::new(lock_block(pu, c)),
                        PC_LOCK_BASE + (c as u32) * 16,
                    );
                    body.push(Op::Lock(lock));
                    write_n(&mut body, PC_LIB_STORE, buf_block(pu, c, round), 2);
                    body.push(Op::Unlock(lock));
                }
                body.push(Op::Think(400)); // particle bookkeeping between calls
            }

            // Beyond the synchronization: the second half of the cell
            // updates — DSI flushed the cells at the lock boundary, so these
            // stores refetch prematurely.
            for j in 0..CELL_BLOCKS / 2 {
                write_n(&mut body, PC_CELL_STORE_B, cell_block(pu, j), 2);
            }
            body.push(Op::Think(12_000));
            body.push(Op::Barrier(0));

            // Drain incoming messages (channel c of the predecessor at
            // distance c+1).
            for c in 0..CHANNELS {
                let sender = (pu + n - (c + 1)) % n;
                for j in 0..BUF_BLOCKS {
                    read_n(&mut body, PC_LIB_LOAD, buf_block(sender, c, j), 2);
                }
            }
            // Re-sample two boundary cells beyond the barrier (sharing that
            // spans the synchronization, as with the cells above), and
            // tally-check two of my own cells — the barrier flushed them, so
            // this is another premature refetch for DSI.
            for j in 0..2u64.min(CELL_BLOCKS) {
                body.push(read(PC_BOUNDARY_LOAD, cell_block(nb, j)));
            }
            for j in 0..2u64.min(CELL_BLOCKS) {
                body.push(read(PC_CELL_CHECK, cell_block(pu, j)));
            }
            body.push(Op::Barrier(1));

            Box::new(LoopedScript::new(
                vec![Op::Think(u64::from(p) * 19)],
                body,
                iterations,
            )) as Box<dyn Program>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;

    #[test]
    fn library_store_pc_is_shared_across_channels() {
        let mut progs = programs(3, 1);
        let ops = collect_ops(progs[0].as_mut());
        let buf_stores: std::collections::HashSet<u64> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Write { pc, block } if pc.value() == PC_LIB_STORE => Some(block.index()),
                _ => None,
            })
            .collect();
        assert_eq!(
            buf_stores.len() as u64,
            CHANNELS * BUF_BLOCKS,
            "one PC fills every buffer block"
        );
    }

    #[test]
    fn cell_updates_straddle_the_message_locks() {
        let mut progs = programs(2, 1);
        let ops = collect_ops(progs[0].as_mut());
        let first_a = ops
            .iter()
            .position(|op| matches!(op, Op::Write { pc, .. } if pc.value() == PC_CELL_STORE_A))
            .unwrap();
        let last_unlock = ops
            .iter()
            .rposition(|op| matches!(op, Op::Unlock(_)))
            .unwrap();
        let first_b = ops
            .iter()
            .position(|op| matches!(op, Op::Write { pc, .. } if pc.value() == PC_CELL_STORE_B))
            .unwrap();
        assert!(first_a < last_unlock && last_unlock < first_b);
    }

    #[test]
    fn consumers_drain_the_right_buffers() {
        let nodes = 4u16;
        let mut progs = programs(nodes, 1);
        // Every buffer block written by someone must be read by someone.
        let mut written = std::collections::HashSet::new();
        let mut read_set = std::collections::HashSet::new();
        for p in &mut progs {
            for op in collect_ops(p.as_mut()) {
                match op {
                    Op::Write { pc, block } if pc.value() == PC_LIB_STORE => {
                        written.insert(block.index());
                    }
                    Op::Read { pc, block } if pc.value() == PC_LIB_LOAD => {
                        read_set.insert(block.index());
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(written, read_set);
    }
}
