//! `tomcatv` — vectorized mesh-generation stencil (SPEC; paper input:
//! 128×128, 50 iters).
//!
//! Paper §5.1: *"Tomcatv is a stencil computation in which multiple array
//! elements are stored in the same memory block resulting in multiple
//! references by the same instruction to the block"* — Last-PC collapses
//! (~2–3%) while trace signatures count the touches. §5.3 adds the global
//! table hazard: *"each neighbor reads two of each of left and right
//! neighbors' bordering columns. The computation requires reading the outer
//! column only once and the inner column twice, resulting in traces for the
//! outer column blocks becoming subtraces for the inner column blocks."*
//! DSI reaches only ≈72% because the residual reduction is migratory —
//! exclusive requests by the sole read-copy holder — which versioning
//! deliberately skips.
//!
//! Structure per machine node: four border-column strips (left/right ×
//! outer/inner) of `BORDER_BLOCKS` each, updated with 4 stores per block
//! (4 elements per 32-byte block) and read by exactly one neighbour — outer
//! blocks with 4 loads, inner blocks with 8 loads *by the same PC*, making
//! outer traces proper subtraces of inner ones. A per-node residual block
//! set migrates between neighbours with read-write-write touches.

use super::{read_n, write_n};
use crate::program::{LoopedScript, Op, Program};

/// PC of the stencil update store (4 elements per block).
pub const PC_STENCIL: u32 = 0x20664;
/// PC of the border gather load (outer ×4 / inner ×8 — §5.3 aliasing).
pub const PC_BORDER: u32 = 0x2bdd4;
/// PC of the residual-reduction load.
pub const PC_RES_LOAD: u32 = 0x24668;
/// PC of the residual-reduction store (two accumulated elements).
pub const PC_RES_STORE: u32 = 0x23eb0;

/// Blocks per border strip (outer or inner, one side).
const BORDER_BLOCKS: u64 = 4;
/// Residual blocks per node (tunes DSI's migratory blind spot to ≈28%).
const RES_BLOCKS: u64 = 6;
/// Blocks per node in the layout (4 strips + residuals).
const NODE_SPAN: u64 = 4 * BORDER_BLOCKS + RES_BLOCKS;
/// Default iteration count.
pub const DEFAULT_ITERS: u32 = 25;

/// Strip indices within a node's span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Strip {
    LeftOuter = 0,
    LeftInner = 1,
    RightOuter = 2,
    RightInner = 3,
}

fn strip_block(node: u64, strip: Strip, j: u64) -> u64 {
    node * NODE_SPAN + (strip as u64) * BORDER_BLOCKS + j
}

fn residual_block(node: u64, j: u64) -> u64 {
    node * NODE_SPAN + 4 * BORDER_BLOCKS + j
}

/// Builds the per-node programs.
pub fn programs(nodes: u16, iterations: u32) -> Vec<Box<dyn Program>> {
    let n = u64::from(nodes);
    (0..nodes)
        .map(|p| {
            let pu = u64::from(p);
            let left = (pu + n - 1) % n;
            let right = (pu + 1) % n;
            let mut body = Vec::new();

            // Stencil update: 4 stores per border block (one per element).
            for strip in [
                Strip::LeftOuter,
                Strip::LeftInner,
                Strip::RightOuter,
                Strip::RightInner,
            ] {
                for j in 0..BORDER_BLOCKS {
                    write_n(&mut body, PC_STENCIL, strip_block(pu, strip, j), 4);
                    body.push(Op::Think(8));
                }
            }
            body.push(Op::Think(120)); // interior (non-shared) computation
            body.push(Op::Barrier(0));

            // Border exchange: read the left neighbour's right strips and
            // the right neighbour's left strips. Outer ×4, inner ×8 — the
            // same load PC throughout (§5.3).
            for j in 0..BORDER_BLOCKS {
                read_n(
                    &mut body,
                    PC_BORDER,
                    strip_block(left, Strip::RightOuter, j),
                    4,
                );
                read_n(
                    &mut body,
                    PC_BORDER,
                    strip_block(left, Strip::RightInner, j),
                    8,
                );
                read_n(
                    &mut body,
                    PC_BORDER,
                    strip_block(right, Strip::LeftOuter, j),
                    4,
                );
                read_n(
                    &mut body,
                    PC_BORDER,
                    strip_block(right, Strip::LeftInner, j),
                    8,
                );
                body.push(Op::Think(10));
            }

            // Residual reduction, phase A: my residual blocks (migratory:
            // read, then accumulate two elements).
            for j in 0..RES_BLOCKS {
                body.push(super::read(PC_RES_LOAD, residual_block(pu, j)));
                write_n(&mut body, PC_RES_STORE, residual_block(pu, j), 2);
            }
            body.push(Op::Barrier(1));

            // Phase B: the predecessor's residual blocks migrate to me.
            for j in 0..RES_BLOCKS {
                body.push(super::read(PC_RES_LOAD, residual_block(left, j)));
                write_n(&mut body, PC_RES_STORE, residual_block(left, j), 2);
            }
            body.push(Op::Barrier(2));

            Box::new(LoopedScript::new(
                vec![Op::Think(u64::from(p) * 11)],
                body,
                iterations,
            )) as Box<dyn Program>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;
    use ltp_core::Pc;

    #[test]
    fn inner_border_reads_are_double_the_outer() {
        let mut programs = programs(4, 1);
        let ops = collect_ops(programs[0].as_mut());
        // Outer blocks of the right neighbour's left strip get 4 reads,
        // inner get 8, all through PC_BORDER.
        let mut per_block = std::collections::HashMap::new();
        for op in &ops {
            if let Op::Read { pc, block } = op {
                if pc.value() == PC_BORDER {
                    *per_block.entry(block.index()).or_insert(0u32) += 1;
                }
            }
        }
        let counts: Vec<u32> = {
            let mut v: Vec<u32> = per_block.values().copied().collect();
            v.sort_unstable();
            v
        };
        // 2 outer strips and 2 inner strips of BORDER_BLOCKS each: outer
        // blocks read ×4, inner ×8.
        let mut expected = vec![4u32; 2 * BORDER_BLOCKS as usize];
        expected.extend(vec![8u32; 2 * BORDER_BLOCKS as usize]);
        assert_eq!(counts, expected);
    }

    #[test]
    fn border_reads_share_one_pc() {
        let mut programs = programs(3, 1);
        let ops = collect_ops(programs[1].as_mut());
        let border_pcs: std::collections::HashSet<Pc> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Read { pc, block } if pc.value() == PC_BORDER => {
                    let _ = block;
                    Some(*pc)
                }
                _ => None,
            })
            .collect();
        assert_eq!(border_pcs.len(), 1, "subtrace aliasing needs one PC");
    }

    #[test]
    fn residual_blocks_visited_by_two_nodes() {
        let nodes = 4u16;
        let mut progs = programs(nodes, 1);
        let mut visitors: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for (i, p) in progs.iter_mut().enumerate() {
            for op in collect_ops(p.as_mut()) {
                if let Op::Write { pc, block } = op {
                    if pc.value() == PC_RES_STORE {
                        visitors.entry(block.index()).or_default().insert(i);
                    }
                }
            }
        }
        assert_eq!(visitors.len(), (nodes as usize) * RES_BLOCKS as usize);
        for (block, v) in visitors {
            assert_eq!(v.len(), 2, "residual {block} must migrate between 2 nodes");
        }
    }

    #[test]
    fn each_border_block_has_exactly_one_reader() {
        let nodes = 5u16;
        let mut progs = programs(nodes, 1);
        let mut readers: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for (i, p) in progs.iter_mut().enumerate() {
            for op in collect_ops(p.as_mut()) {
                if let Op::Read { pc, block } = op {
                    if pc.value() == PC_BORDER {
                        readers.entry(block.index()).or_default().insert(i);
                    }
                }
            }
        }
        for (block, r) in readers {
            assert_eq!(r.len(), 1, "border block {block} readers");
        }
    }
}
