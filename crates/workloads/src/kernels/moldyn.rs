//! `moldyn` — CHARMM-like molecular dynamics (paper input: 2048 particles,
//! 60 iters).
//!
//! Paper §5.1: *"Moldyn includes a reduction phase in which the same data
//! are read and modified multiple times in a small loop. Multiple references
//! by the same PC in the reduction phase reduce Last-PC's prediction
//! accuracy to less than 3%. Because the reduction phase results in
//! migratory sharing patterns, DSI only predicts 40% of the invalidations
//! correctly."* §5.4 adds that the *"high read sharing degree in moldyn
//! overlaps most of the invalidations"*, so self-invalidation barely moves
//! execution time.
//!
//! Structure: coordinate blocks are written ×2 by their owner and read ×2 by
//! `READ_DEGREE` consumers (high sharing degree, DSI-friendly
//! producer-consumer); force blocks migrate between neighbour pairs with a
//! read-modify ×3 small loop (`{FR,FW} ×3` — the Last-PC killer). Generous
//! think time models the force computation that hides invalidation latency.

use super::{read_n, write_n};
use crate::program::{LoopedScript, Op, Program};

/// PC of the coordinate update store.
pub const PC_COORD_STORE: u32 = 0x4ad3c;
/// PC of the coordinate gather load.
pub const PC_COORD_LOAD: u32 = 0x4bd9c;
/// PC of the reduction load (the small loop's read).
pub const PC_FORCE_LOAD: u32 = 0x4e464;
/// PC of the reduction store (the small loop's write).
///
/// Chosen so `(PC_FORCE_LOAD + PC_FORCE_STORE) * 2` is not ≡ 0 (mod 2^13):
/// the default 13-bit signature must not alias the reduction loop's own
/// prefixes (an instance of the Figure 7 width/aliasing trade-off that the
/// `fig7_signature_size` bench explores deliberately).
pub const PC_FORCE_STORE: u32 = 0x48ba4;

/// Coordinate blocks owned per node.
const COORD_BLOCKS: u64 = 3;
/// Force blocks migrating between p and p+1.
const FORCE_BLOCKS: u64 = 8;
/// How many nodes read each coordinate block (the "high read sharing
/// degree").
const READ_DEGREE: u64 = 2;
/// Read-modify repetitions in the reduction loop.
const REDUCTION_TRIPS: usize = 3;
const NODE_SPAN: u64 = COORD_BLOCKS + FORCE_BLOCKS;
/// Default iteration count.
pub const DEFAULT_ITERS: u32 = 20;

fn coord_block(node: u64, j: u64) -> u64 {
    node * NODE_SPAN + j
}

fn force_block(node: u64, j: u64) -> u64 {
    node * NODE_SPAN + COORD_BLOCKS + j
}

/// Builds the per-node programs.
pub fn programs(nodes: u16, iterations: u32) -> Vec<Box<dyn Program>> {
    let n = u64::from(nodes);
    (0..nodes)
        .map(|p| {
            let pu = u64::from(p);
            let pred = (pu + n - 1) % n;
            let mut body = Vec::new();

            // Position update (owner writes its coordinates).
            for j in 0..COORD_BLOCKS {
                write_n(&mut body, PC_COORD_STORE, coord_block(pu, j), 2);
            }
            // Long force computation: this think time is what overlaps the
            // coherence activity (paper §5.4) — it must dwarf the total
            // remote-miss stall per iteration for self-invalidation to be
            // execution-time-neutral, as the paper observes.
            body.push(Op::Think(45_000));
            body.push(Op::Barrier(0));

            // Gather neighbour coordinates (high read degree).
            for d in 1..=READ_DEGREE {
                let nb = (pu + d) % n;
                for j in 0..COORD_BLOCKS {
                    read_n(&mut body, PC_COORD_LOAD, coord_block(nb, j), 2);
                    body.push(Op::Think(40));
                }
            }

            // Reduction phase A: accumulate into my force blocks — the
            // small read-modify loop.
            for j in 0..FORCE_BLOCKS {
                for _ in 0..REDUCTION_TRIPS {
                    body.push(super::read(PC_FORCE_LOAD, force_block(pu, j)));
                    body.push(super::write(PC_FORCE_STORE, force_block(pu, j)));
                }
                body.push(Op::Think(25));
            }
            body.push(Op::Barrier(1));

            // Reduction phase B: the predecessor's force blocks migrate to
            // me and get the same treatment.
            for j in 0..FORCE_BLOCKS {
                for _ in 0..REDUCTION_TRIPS {
                    body.push(super::read(PC_FORCE_LOAD, force_block(pred, j)));
                    body.push(super::write(PC_FORCE_STORE, force_block(pred, j)));
                }
                body.push(Op::Think(25));
            }
            body.push(Op::Think(18_000));
            body.push(Op::Barrier(2));

            Box::new(LoopedScript::new(
                vec![Op::Think(u64::from(p) * 13)],
                body,
                iterations,
            )) as Box<dyn Program>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;

    #[test]
    fn reduction_loop_repeats_the_same_pc_pair() {
        let mut progs = programs(2, 1);
        let ops = collect_ops(progs[0].as_mut());
        let fb = force_block(0, 0);
        let touches: Vec<u32> = ops
            .iter()
            .filter_map(|op| match op {
                Op::Read { pc, block } | Op::Write { pc, block } if block.index() == fb => {
                    Some(pc.value())
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            touches,
            vec![
                PC_FORCE_LOAD,
                PC_FORCE_STORE,
                PC_FORCE_LOAD,
                PC_FORCE_STORE,
                PC_FORCE_LOAD,
                PC_FORCE_STORE
            ]
        );
    }

    #[test]
    fn force_blocks_migrate_between_two_nodes() {
        let nodes = 4u16;
        let mut progs = programs(nodes, 1);
        let mut writers: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for (i, p) in progs.iter_mut().enumerate() {
            for op in collect_ops(p.as_mut()) {
                if let Op::Write { pc, block } = op {
                    if pc.value() == PC_FORCE_STORE {
                        writers.entry(block.index()).or_default().insert(i);
                    }
                }
            }
        }
        for (b, w) in writers {
            assert_eq!(w.len(), 2, "force block {b}");
        }
    }

    #[test]
    fn think_time_dominates_op_stream() {
        // §5.4: computation must overlap invalidations, so think cycles
        // should dwarf the per-iteration memory-op count.
        let mut progs = programs(2, 1);
        let ops = collect_ops(progs[0].as_mut());
        let think: u64 = ops
            .iter()
            .filter_map(|op| match op {
                Op::Think(c) => Some(*c),
                _ => None,
            })
            .sum();
        let mem = ops
            .iter()
            .filter(|op| matches!(op, Op::Read { .. } | Op::Write { .. }))
            .count() as u64;
        assert!(think > mem * 40, "think {think} vs {mem} memory ops");
    }
}
