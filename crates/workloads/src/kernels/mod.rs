//! The nine synthetic kernels (paper Table 2).
//!
//! Each submodule reproduces one application's sharing pattern as analyzed
//! in §5.1 of the paper. The kernels share a small op-construction
//! vocabulary defined here.
//!
//! PC ranges are disjoint per kernel (0x1000 × kernel index) purely for
//! readability of traces; only one kernel runs per simulation.

pub mod appbt;
pub mod barnes;
pub mod dsmc;
pub mod em3d;
pub mod moldyn;
pub mod ocean;
pub mod raytrace;
pub mod tomcatv;
pub mod unstructured;

use ltp_core::{BlockId, Pc};

use crate::program::Op;

/// A read op (internal construction helper).
pub(crate) fn read(pc: u32, block: u64) -> Op {
    Op::Read {
        pc: Pc::new(pc),
        block: BlockId::new(block),
    }
}

/// A write op.
pub(crate) fn write(pc: u32, block: u64) -> Op {
    Op::Write {
        pc: Pc::new(pc),
        block: BlockId::new(block),
    }
}

/// Pushes `n` repetitions of a read (multiple elements per block touched by
/// the same instruction — the pattern that defeats Last-PC).
pub(crate) fn read_n(ops: &mut Vec<Op>, pc: u32, block: u64, n: usize) {
    for _ in 0..n {
        ops.push(read(pc, block));
    }
}

/// Pushes `n` repetitions of a write.
pub(crate) fn write_n(ops: &mut Vec<Op>, pc: u32, block: u64, n: usize) {
    for _ in 0..n {
        ops.push(write(pc, block));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_expected_ops() {
        assert_eq!(
            read(0x10, 5),
            Op::Read {
                pc: Pc::new(0x10),
                block: BlockId::new(5)
            }
        );
        assert_eq!(
            write(0x14, 6),
            Op::Write {
                pc: Pc::new(0x14),
                block: BlockId::new(6)
            }
        );
        let mut v = Vec::new();
        read_n(&mut v, 1, 2, 3);
        write_n(&mut v, 4, 5, 2);
        assert_eq!(v.len(), 5);
        assert!(matches!(v[2], Op::Read { .. }));
        assert!(matches!(v[4], Op::Write { .. }));
    }
}
