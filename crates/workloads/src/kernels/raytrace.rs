//! `raytrace` — parallel ray tracer with a global work pool (SPLASH-2;
//! paper input: car).
//!
//! Paper §5.1: *"In raytrace, there is a global workpool holding the jobs
//! that all processors work on. The workpool is protected by a lock.
//! Invalidations of the global workpool are on the execution's critical
//! path ... Because jobs are assigned to one processor at a given time,
//! memory blocks exhibit a migratory sharing pattern and as such DSI
//! exhibits a low prediction accuracy. Both Last-PC and LTP successfully
//! predict the migratory blocks, achieving an accuracy of 50%."* §5.4:
//! *"LTP performs slightly worse than DSI; LTP cannot correctly
//! self-invalidate the critical section locks because they spin a variable
//! number of times per visit."*
//!
//! Structure: one global lock guards a pool counter and descriptor blocks;
//! every processor repeatedly grabs a job (lock → counter read-modify-write
//! → descriptor reads, periodically descriptor writes → unlock) and then
//! renders it against a migrating job-data block with a seeded, variable
//! think time. Contention on the single lock produces variable-length spin
//! traces — the part no predictor gets right — while the pool counter and
//! job data are cleanly migratory.

use ltp_core::{BlockId, Pc};
use ltp_sim::SimRng;

use crate::program::{Lock, LoopedScript, Op, Program};

/// PC of the pool-counter load.
pub const PC_POOL_LOAD: u32 = 0x9b2b8;
/// PC of the pool-counter store.
pub const PC_POOL_STORE: u32 = 0x96c30;
/// PC of the descriptor load.
pub const PC_DESC_LOAD: u32 = 0x95718;
/// PC of the (periodic) descriptor store.
pub const PC_DESC_STORE: u32 = 0x94720;
/// PC of the job-data load.
pub const PC_JOB_LOAD: u32 = 0x927cc;
/// PC of the job-data store.
pub const PC_JOB_STORE: u32 = 0x9371c;
/// PC base of the pool lock.
pub const PC_LOCK_BASE: u32 = 0x9f508;

/// The pool counter block.
const POOL_COUNTER: u64 = 0;
/// Descriptor blocks following the counter.
const DESC_BLOCKS: u64 = 6;
/// The single global lock block.
const LOCK_BLOCK: u64 = 1 + DESC_BLOCKS;
/// First job-data block.
const JOB_DATA_BASE: u64 = LOCK_BLOCK + 1;
/// Jobs each node processes.
pub const JOBS_PER_NODE: u32 = 6;
/// A descriptor write happens every this many jobs (per node).
const DESC_WRITE_PERIOD: u32 = 4;

/// Builds the per-node programs.
pub fn programs(nodes: u16, jobs_per_node: u32, seed: u64) -> Vec<Box<dyn Program>> {
    let n = u64::from(nodes);
    let mut root_rng = SimRng::from_seed(seed ^ 0x4A77_AACE);
    (0..nodes)
        .map(|p| {
            let pu = u64::from(p);
            let mut rng = root_rng.derive(pu);
            let lock = Lock::library(BlockId::new(LOCK_BLOCK), PC_LOCK_BASE);
            let mut ops = vec![Op::Think(u64::from(p) * 31)];
            for k in 0..jobs_per_node {
                // Grab a job from the pool.
                ops.push(Op::Lock(lock));
                ops.push(Op::Read {
                    pc: Pc::new(PC_POOL_LOAD),
                    block: BlockId::new(POOL_COUNTER),
                });
                ops.push(Op::Write {
                    pc: Pc::new(PC_POOL_STORE),
                    block: BlockId::new(POOL_COUNTER),
                });
                for d in 0..DESC_BLOCKS {
                    ops.push(Op::Read {
                        pc: Pc::new(PC_DESC_LOAD),
                        block: BlockId::new(1 + d),
                    });
                }
                if k % DESC_WRITE_PERIOD == DESC_WRITE_PERIOD - 1 {
                    for d in 0..DESC_BLOCKS {
                        ops.push(Op::Write {
                            pc: Pc::new(PC_DESC_STORE),
                            block: BlockId::new(1 + d),
                        });
                    }
                }
                ops.push(Op::Unlock(lock));

                // Render the job: its data block migrates around the
                // machine as the pool hands work out.
                let data = JOB_DATA_BASE + ((pu + u64::from(k)) % n);
                ops.push(Op::Read {
                    pc: Pc::new(PC_JOB_LOAD),
                    block: BlockId::new(data),
                });
                ops.push(Op::Read {
                    pc: Pc::new(PC_JOB_LOAD),
                    block: BlockId::new(data),
                });
                ops.push(Op::Write {
                    pc: Pc::new(PC_JOB_STORE),
                    block: BlockId::new(data),
                });
                // Rendering time varies per job — this is what makes lock
                // spin counts (and thus lock-block traces) variable. Short
                // enough that the pool lock stays heavily contended (the
                // critical section IS raytrace's critical path).
                ops.push(Op::Think(rng.range(250, 900)));
            }
            Box::new(LoopedScript::new(ops, vec![], 0)) as Box<dyn Program>
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::collect_ops;

    #[test]
    fn one_global_lock_guards_the_pool() {
        let mut progs = programs(6, 3, 5);
        let mut locks = std::collections::HashSet::new();
        for p in &mut progs {
            for op in collect_ops(p.as_mut()) {
                if let Op::Lock(l) = op {
                    locks.insert(l.block);
                }
            }
        }
        assert_eq!(locks.len(), 1);
    }

    #[test]
    fn job_data_migrates_across_nodes() {
        let nodes = 4u16;
        let mut progs = programs(nodes, 4, 5);
        let mut writers: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for (i, p) in progs.iter_mut().enumerate() {
            for op in collect_ops(p.as_mut()) {
                if let Op::Write { pc, block } = op {
                    if pc.value() == PC_JOB_STORE {
                        writers.entry(block.index()).or_default().insert(i);
                    }
                }
            }
        }
        assert!(
            writers.values().all(|w| w.len() >= 2),
            "every job block must be written by several nodes: {writers:?}"
        );
    }

    #[test]
    fn think_times_vary_with_seed() {
        let mut a = programs(2, 4, 1);
        let mut b = programs(2, 4, 2);
        assert_ne!(collect_ops(a[0].as_mut()), collect_ops(b[0].as_mut()));
    }

    #[test]
    fn descriptor_writes_are_periodic() {
        let mut progs = programs(2, 8, 3);
        let ops = collect_ops(progs[0].as_mut());
        let desc_writes = ops
            .iter()
            .filter(|op| matches!(op, Op::Write { pc, .. } if pc.value() == PC_DESC_STORE))
            .count();
        assert_eq!(desc_writes as u64, 2 * DESC_BLOCKS, "8 jobs → 2 periods");
    }
}
