//! # `ltp-workloads` — the synthetic benchmark suite
//!
//! Nine shared-memory kernels reproducing the *sharing patterns and
//! instruction-reuse structure* of the applications in Table 2 of the ISCA
//! 2000 Last-Touch Prediction paper (appbt, barnes, dsmc, em3d, moldyn,
//! ocean, raytrace, tomcatv, unstructured). The real binaries ran on the
//! Wisconsin Wind Tunnel II; what the predictors care about is *which PC
//! sequences touch a block between coherence miss and invalidation, and who
//! asks for it next* — that is what each kernel here reproduces, using the
//! paper's own per-application analysis (§5.1) as the specification.
//!
//! See `DESIGN.md` §3.4 for the per-benchmark mechanism table and
//! [`Benchmark`] for the registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod program;
mod suite;

pub mod kernels;

pub use program::{collect_ops, Lock, LoopedScript, Op, Program};
pub use suite::{Benchmark, WorkloadParams};
