//! # `ltp-workloads` — the synthetic benchmark suite
//!
//! Nine shared-memory kernels reproducing the *sharing patterns and
//! instruction-reuse structure* of the applications in Table 2 of the ISCA
//! 2000 Last-Touch Prediction paper (appbt, barnes, dsmc, em3d, moldyn,
//! ocean, raytrace, tomcatv, unstructured). The real binaries ran on the
//! Wisconsin Wind Tunnel II; what the predictors care about is *which PC
//! sequences touch a block between coherence miss and invalidation, and who
//! asks for it next* — that is what each kernel here reproduces, using the
//! paper's own per-application analysis (§5.1) as the specification.
//!
//! See `DESIGN.md` §3.4 for the per-benchmark mechanism table and
//! [`Benchmark`] for the registry.
//!
//! Beyond the synthetic kernels, the [`trace`] module captures any
//! benchmark's per-node op streams into a compact versioned `.ltrace` file
//! ([`TraceWriter`], [`Trace`]) — loop-compressed in format v2 via a
//! per-stream repeat detector — and replays them either fully decoded
//! ([`TraceProgram`]) or incrementally from the file with a bounded
//! per-node window ([`StreamingTrace`], [`StreamingTraceProgram`]); a
//! [`WorkloadSource`] names any kind of workload — synthetic, recorded, or
//! streamed — so traces are first-class inputs to experiments and sweeps.
//! [`random_trace`] generates valid random workloads for fuzzing and
//! import testing.
//!
//! For offline predictor evaluation, [`replay`] drains a workload's
//! programs through an un-timed logical coherence model — same touches,
//! fills, invalidations, and verification verdicts as the full machine,
//! no cycle simulation — and [`ground_truth`] extracts per-node last-touch
//! ordinals for priming the `oracle` policy. This is the engine behind
//! `ltp predict`.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod program;
mod replay;
mod source;
mod suite;

pub mod kernels;
pub mod trace;

pub use program::{collect_ops, Lock, LoopedScript, Op, Program};
pub use replay::{ground_truth, replay, ReplayReport};
pub use source::{EstimateSource, RunEstimate, SourceError, WorkloadSource};
pub use suite::{Benchmark, WorkloadParams};
pub use trace::{
    random_trace, StreamingTrace, StreamingTraceProgram, Trace, TraceError, TraceProgram,
    TraceScanStats, TraceWriter,
};
