//! Programs: the instruction streams driving each simulated processor.
//!
//! A [`Program`] yields a sequence of [`Op`]s. Memory operations carry a
//! stable [`Pc`] per static instruction site — the identity the predictors
//! correlate on — plus the [`BlockId`] they touch. Synchronization appears
//! in two flavors:
//!
//! * [`Op::Lock`]/[`Op::Unlock`] with [`Lock::exposed`] = `true` — library
//!   locks whose boundaries are annotated for DSI (the paper's DSI requires
//!   all synchronization exposed to the hardware);
//! * the same with `exposed = false` — ad-hoc spin flags (e.g. `appbt`'s
//!   gaussian-elimination phase) that DSI cannot see, one of the paper's
//!   explanations for DSI's low appbt accuracy.
//!
//! Lock acquisition itself is executed by the system driver as a
//! test-and-test-and-set loop over the lock's shared block, so lock blocks
//! produce real coherence traffic (migratory upgrades, variable-length spin
//! traces) — essential to the `raytrace`/`barnes` results.

use std::fmt;

use ltp_core::{BlockId, Pc};

/// A lock variable living in one shared block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Lock {
    /// The block holding the lock word.
    pub block: BlockId,
    /// PC of the spin-test load.
    pub spin_pc: Pc,
    /// PC of the test-and-set RMW.
    pub tas_pc: Pc,
    /// PC of the releasing store.
    pub release_pc: Pc,
    /// Whether acquire/release boundaries are visible to DSI.
    pub exposed: bool,
}

impl Lock {
    /// Creates an exposed (library) lock with PCs derived from a base.
    pub fn library(block: BlockId, pc_base: u32) -> Self {
        Lock {
            block,
            spin_pc: Pc::new(pc_base),
            tas_pc: Pc::new(pc_base + 4),
            release_pc: Pc::new(pc_base + 8),
            exposed: true,
        }
    }

    /// Creates an ad-hoc spin flag invisible to DSI.
    pub fn ad_hoc(block: BlockId, pc_base: u32) -> Self {
        Lock {
            exposed: false,
            ..Lock::library(block, pc_base)
        }
    }
}

/// One operation of a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Local computation for the given number of cycles (everything that is
    /// not shared-memory traffic is abstracted into think time).
    Think(u64),
    /// A load from a shared block.
    Read {
        /// Static instruction site.
        pc: Pc,
        /// Block touched.
        block: BlockId,
    },
    /// A store to a shared block.
    Write {
        /// Static instruction site.
        pc: Pc,
        /// Block touched.
        block: BlockId,
    },
    /// Acquire a lock (expanded by the driver into a test-and-test-and-set
    /// loop over `lock.block`).
    Lock(Lock),
    /// Release a lock (a store to `lock.block`).
    Unlock(Lock),
    /// Wait until every node reaches the barrier with this identifier.
    Barrier(u32),
    /// Signal an ad-hoc flag: a store that advances the flag's generation.
    ///
    /// Flags are ordinary shared blocks; unlike [`Op::Lock`]/[`Op::Unlock`]
    /// with [`Lock::exposed`], flag synchronization is **never** visible to
    /// DSI — this is the `appbt` "spin-locks not exposed to DSI" mechanism.
    FlagSet {
        /// Static instruction site of the signalling store.
        pc: Pc,
        /// The flag block.
        block: BlockId,
    },
    /// Spin until the flag's generation exceeds the number of waits this
    /// node has already completed on it (pipeline handoff semantics).
    FlagWait {
        /// Static instruction site of the spin load.
        pc: Pc,
        /// The flag block.
        block: BlockId,
    },
}

/// A per-node instruction stream.
///
/// Programs are deterministic: any randomness must be fixed at construction
/// (from the experiment seed), so a given `(workload, seed, node)` always
/// yields the same stream.
pub trait Program: fmt::Debug + Send {
    /// Returns the next operation, or `None` when the program has finished.
    fn next_op(&mut self) -> Option<Op>;

    /// How many operations this program will emit in total, when known *up
    /// front and cheaply* (scripted workloads and trace replays know; openly
    /// generative programs return `None`, the default).
    ///
    /// The sweep driver uses this to schedule long runs first
    /// (longest-job-first cuts tail latency on mixed sweeps); it never
    /// affects results, only execution order. The hint must not change as
    /// the program is drained.
    fn len_hint(&self) -> Option<u64> {
        None
    }
}

/// A program that replays a fixed prologue and then loops a body a fixed
/// number of times.
///
/// This is the compact representation for the static-pattern benchmarks
/// (em3d, tomcatv, ocean, …): PCs and block addresses repeat identically
/// every iteration, which is precisely the repetitive behaviour last-touch
/// prediction exploits, while memory stays proportional to one iteration.
///
/// # Examples
///
/// ```
/// use ltp_core::{BlockId, Pc};
/// use ltp_workloads::{LoopedScript, Op, Program};
///
/// let mut p = LoopedScript::new(
///     vec![Op::Think(5)],
///     vec![Op::Read { pc: Pc::new(1), block: BlockId::new(0) }],
///     2,
/// );
/// assert_eq!(p.next_op(), Some(Op::Think(5)));
/// assert!(matches!(p.next_op(), Some(Op::Read { .. })));
/// assert!(matches!(p.next_op(), Some(Op::Read { .. })));
/// assert_eq!(p.next_op(), None);
/// ```
#[derive(Debug, Clone)]
pub struct LoopedScript {
    prologue: Vec<Op>,
    body: Vec<Op>,
    iterations: u32,
    cursor: usize,
    in_prologue: bool,
    iter_done: u32,
}

impl LoopedScript {
    /// Creates a script from a prologue, a loop body, and an iteration
    /// count.
    pub fn new(prologue: Vec<Op>, body: Vec<Op>, iterations: u32) -> Self {
        LoopedScript {
            prologue,
            body,
            iterations,
            cursor: 0,
            in_prologue: true,
            iter_done: 0,
        }
    }

    /// Total operations this script will emit.
    pub fn len_ops(&self) -> usize {
        self.prologue.len() + self.body.len() * self.iterations as usize
    }
}

impl Program for LoopedScript {
    fn len_hint(&self) -> Option<u64> {
        Some(self.len_ops() as u64)
    }

    fn next_op(&mut self) -> Option<Op> {
        loop {
            if self.in_prologue {
                if self.cursor < self.prologue.len() {
                    let op = self.prologue[self.cursor];
                    self.cursor += 1;
                    return Some(op);
                }
                self.in_prologue = false;
                self.cursor = 0;
            }
            if self.iter_done >= self.iterations || self.body.is_empty() {
                return None;
            }
            if self.cursor < self.body.len() {
                let op = self.body[self.cursor];
                self.cursor += 1;
                return Some(op);
            }
            self.cursor = 0;
            self.iter_done += 1;
        }
    }
}

/// Drains a program into a vector (test helper; beware large programs).
pub fn collect_ops(p: &mut dyn Program) -> Vec<Op> {
    std::iter::from_fn(|| p.next_op()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read(pc: u32, block: u64) -> Op {
        Op::Read {
            pc: Pc::new(pc),
            block: BlockId::new(block),
        }
    }

    #[test]
    fn looped_script_replays_body() {
        let mut p = LoopedScript::new(vec![Op::Think(1)], vec![read(1, 0), read(2, 1)], 3);
        let ops = collect_ops(&mut p);
        assert_eq!(ops.len(), 1 + 2 * 3);
        assert_eq!(ops[0], Op::Think(1));
        assert_eq!(ops[1], ops[3]);
        assert_eq!(ops[2], ops[4]);
    }

    #[test]
    fn zero_iterations_emit_only_prologue() {
        let mut p = LoopedScript::new(vec![Op::Think(9)], vec![read(1, 0)], 0);
        assert_eq!(collect_ops(&mut p), vec![Op::Think(9)]);
    }

    #[test]
    fn empty_body_terminates() {
        let mut p = LoopedScript::new(vec![], vec![], 100);
        assert_eq!(p.next_op(), None);
        assert_eq!(p.len_ops(), 0);
    }

    #[test]
    fn len_ops_matches_emission() {
        let mut p = LoopedScript::new(vec![Op::Think(1); 3], vec![read(1, 0); 4], 5);
        assert_eq!(p.len_ops(), 3 + 20);
        assert_eq!(collect_ops(&mut p).len(), 23);
    }

    #[test]
    fn lock_constructors() {
        let lib = Lock::library(BlockId::new(9), 0x100);
        assert!(lib.exposed);
        assert_eq!(lib.spin_pc, Pc::new(0x100));
        assert_eq!(lib.tas_pc, Pc::new(0x104));
        assert_eq!(lib.release_pc, Pc::new(0x108));
        let raw = Lock::ad_hoc(BlockId::new(9), 0x100);
        assert!(!raw.exposed);
        assert_eq!(raw.block, lib.block);
    }
}
