//! The node-side cache controller.
//!
//! Models the paper's *network cache* (§5: "we assume a large enough network
//! cache to eliminate all capacity/conflict traffic"): infinite capacity, so
//! every miss is a coherence miss and every eviction is an invalidation or a
//! self-invalidation — exactly the traffic the predictors reason about.
//!
//! [`NodeCache`] is a pure state machine: it decides protocol actions but
//! knows nothing about time. The event-driven composition (latencies, NI
//! contention, engine queueing) happens in `ltp-system`.

use std::collections::HashMap;

use ltp_core::{BlockId, FillInfo, FillKind, NodeId, VerifyOutcome};

use crate::msg::MsgKind;

/// One cached block copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Line {
    /// Write permission (Exclusive) vs read-only (Shared).
    pub exclusive: bool,
    /// Whether the copy has been written since fill (implies `exclusive`).
    pub dirty: bool,
    /// The data stamp (the per-block write counter used as simulated data;
    /// see the message-type docs in this crate).
    pub token: u64,
}

/// Outcome of a CPU access presented to the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access completes locally.
    Hit {
        /// Whether the line holds write permission after the access.
        exclusive: bool,
    },
    /// The access misses; the returned request must be sent to the home
    /// node and the CPU blocks until the fill.
    Miss(MsgKind),
}

/// What a fill reply told the cache (handed to the node for policy/metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillComplete {
    /// Fill metadata for the self-invalidation policy.
    pub info: FillInfo,
    /// Piggybacked verification verdict, if any.
    pub verify: Option<VerifyOutcome>,
    /// Whether the filled line has write permission.
    pub exclusive: bool,
    /// The data token observed (for coherence checking).
    pub token: u64,
}

/// Response to an external invalidation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvResponse {
    /// Whether a copy was present (false after a self-invalidation race).
    pub had_copy: bool,
    /// Writeback data when the invalidated copy was dirty.
    pub dirty_token: Option<u64>,
}

/// The outstanding miss for a block (one per block; the CPU blocks, so in
/// practice one per node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingTx {
    is_write: bool,
    /// A test-and-set fetch: the fill installs the line with write
    /// permission but does **not** apply the blocked store — the driver
    /// decides via [`NodeCache::try_tas`] whether the RMW succeeds.
    is_tas: bool,
}

/// An infinite-capacity network cache with MSI line states.
///
/// # Examples
///
/// ```
/// use ltp_core::{BlockId, NodeId};
/// use ltp_dsm::{AccessOutcome, MsgKind, NodeCache};
///
/// let mut cache = NodeCache::new(NodeId::new(0));
/// let b = BlockId::new(5);
/// // Cold read: coherence miss.
/// assert_eq!(cache.access(b, false), AccessOutcome::Miss(MsgKind::GetS));
/// ```
#[derive(Debug, Clone)]
pub struct NodeCache {
    node: NodeId,
    lines: HashMap<BlockId, Line>,
    pending: HashMap<BlockId, PendingTx>,
}

impl NodeCache {
    /// Creates an empty cache for `node`.
    pub fn new(node: NodeId) -> Self {
        NodeCache {
            node,
            lines: HashMap::new(),
            pending: HashMap::new(),
        }
    }

    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The cached line for `block`, if present.
    pub fn line(&self, block: BlockId) -> Option<Line> {
        self.lines.get(&block).copied()
    }

    /// Whether a miss is outstanding for `block`.
    pub fn is_pending(&self, block: BlockId) -> bool {
        self.pending.contains_key(&block)
    }

    /// Number of blocks currently cached.
    pub fn resident(&self) -> usize {
        self.lines.len()
    }

    /// Iterates the resident lines in arbitrary order (the checker/explorer
    /// inspection surface).
    pub fn lines(&self) -> impl Iterator<Item = (BlockId, Line)> + '_ {
        self.lines.iter().map(|(&b, &l)| (b, l))
    }

    /// Number of outstanding misses.
    pub fn pending_misses(&self) -> usize {
        self.pending.len()
    }

    /// Presents one CPU access.
    ///
    /// On a miss the returned request kind must be sent to the block's home
    /// and the access retried via [`NodeCache::apply_reply`] when the fill
    /// arrives.
    ///
    /// # Panics
    ///
    /// Panics (debug) if called while a miss is outstanding for `block`; the
    /// CPU model is in-order blocking, so this indicates a driver bug.
    pub fn access(&mut self, block: BlockId, is_write: bool) -> AccessOutcome {
        debug_assert!(
            !self.is_pending(block),
            "{}: access to {} while a miss is outstanding",
            self.node,
            block
        );
        match self.lines.get_mut(&block) {
            Some(line) if !is_write => AccessOutcome::Hit {
                exclusive: line.exclusive,
            },
            Some(line) if line.exclusive => {
                line.dirty = true;
                line.token += 1;
                AccessOutcome::Hit { exclusive: true }
            }
            Some(_) => {
                // Write to a Shared copy: upgrade in place.
                self.pending.insert(
                    block,
                    PendingTx {
                        is_write: true,
                        is_tas: false,
                    },
                );
                AccessOutcome::Miss(MsgKind::Upgrade)
            }
            None => {
                self.pending.insert(
                    block,
                    PendingTx {
                        is_write,
                        is_tas: false,
                    },
                );
                AccessOutcome::Miss(if is_write {
                    MsgKind::GetX
                } else {
                    MsgKind::GetS
                })
            }
        }
    }

    /// Presents the fetch half of a test-and-set RMW: acquires write
    /// permission for `block` without performing the store. A hit on an
    /// exclusive line completes locally; otherwise the returned request must
    /// be sent home and the fill applied via [`NodeCache::apply_reply`]. In
    /// both cases the driver then attempts the conditional store with
    /// [`NodeCache::try_tas`].
    ///
    /// # Panics
    ///
    /// Panics (debug) if a miss is already outstanding for `block`.
    pub fn access_tas(&mut self, block: BlockId) -> AccessOutcome {
        debug_assert!(
            !self.is_pending(block),
            "{}: tas on {} while a miss is outstanding",
            self.node,
            block
        );
        match self.lines.get(&block) {
            Some(line) if line.exclusive => AccessOutcome::Hit { exclusive: true },
            Some(_) => {
                self.pending.insert(
                    block,
                    PendingTx {
                        is_write: true,
                        is_tas: true,
                    },
                );
                AccessOutcome::Miss(MsgKind::Upgrade)
            }
            None => {
                self.pending.insert(
                    block,
                    PendingTx {
                        is_write: true,
                        is_tas: true,
                    },
                );
                AccessOutcome::Miss(MsgKind::GetX)
            }
        }
    }

    /// Attempts the conditional store of a test-and-set: succeeds iff the
    /// line is held exclusive with an even token (the lock-free parity),
    /// bumping the token to odd. The lock "value" is thus the block's write
    /// count — protocol-serialized state, so exactly one contender can
    /// observe even-and-exclusive between two releases.
    pub fn try_tas(&mut self, block: BlockId) -> bool {
        match self.lines.get_mut(&block) {
            Some(line) if line.exclusive && line.token % 2 == 0 => {
                line.token += 1;
                line.dirty = true;
                true
            }
            _ => false,
        }
    }

    /// Applies a fill reply (`DataS`, `DataX`, or `UpgradeAck`), completing
    /// the outstanding miss.
    ///
    /// # Panics
    ///
    /// Panics if no miss is outstanding for `block` or the reply kind is not
    /// a fill.
    pub fn apply_reply(&mut self, block: BlockId, kind: MsgKind) -> FillComplete {
        let tx = self
            .pending
            .remove(&block)
            .expect("fill reply without an outstanding miss");
        match kind {
            MsgKind::DataS {
                version,
                token,
                verify,
            } => {
                debug_assert!(!tx.is_write, "DataS for a write miss");
                self.lines.insert(
                    block,
                    Line {
                        exclusive: false,
                        dirty: false,
                        token,
                    },
                );
                FillComplete {
                    info: FillInfo {
                        kind: FillKind::Demand,
                        dir_version: version,
                        migratory_upgrade: false,
                    },
                    verify,
                    exclusive: false,
                    token,
                }
            }
            MsgKind::DataX {
                version,
                token,
                verify,
            } => {
                // A write fill performs the blocked store immediately — but a
                // test-and-set fill installs the granted value untouched: the
                // conditional store is the driver's `try_tas` decision.
                let token = if tx.is_write && !tx.is_tas {
                    token + 1
                } else {
                    token
                };
                self.lines.insert(
                    block,
                    Line {
                        exclusive: true,
                        dirty: tx.is_write && !tx.is_tas,
                        token,
                    },
                );
                FillComplete {
                    info: FillInfo {
                        kind: FillKind::Demand,
                        dir_version: version,
                        migratory_upgrade: false,
                    },
                    verify,
                    exclusive: true,
                    token,
                }
            }
            MsgKind::UpgradeAck {
                version,
                migratory,
                verify,
            } => {
                let line = self
                    .lines
                    .get_mut(&block)
                    .expect("upgrade ack without a cached line");
                line.exclusive = true;
                if !tx.is_tas {
                    line.dirty = true;
                    line.token += 1;
                }
                let token = line.token;
                FillComplete {
                    info: FillInfo {
                        kind: FillKind::Upgrade,
                        dir_version: version,
                        migratory_upgrade: migratory,
                    },
                    verify,
                    exclusive: true,
                    token,
                }
            }
            other => panic!("not a fill reply: {other:?}"),
        }
    }

    /// Handles an external invalidation, producing the `InvAck` parameters.
    ///
    /// If an upgrade was outstanding for the block, the Shared copy is
    /// invalidated and the transaction silently becomes a full write miss —
    /// the directory observes the same race and replies with `DataX`.
    pub fn handle_inv(&mut self, block: BlockId) -> InvResponse {
        match self.lines.remove(&block) {
            Some(line) => InvResponse {
                had_copy: true,
                dirty_token: line.dirty.then_some(line.token),
            },
            None => InvResponse {
                had_copy: false,
                dirty_token: None,
            },
        }
    }

    /// Self-invalidates `block` if it is cached with no outstanding
    /// transaction; returns the protocol notification to send home.
    ///
    /// Returns `None` (and does nothing) when the block is absent or mid
    /// transaction — bulk flush requests from DSI may name such blocks.
    ///
    /// An *exclusive* line always relinquishes with its token, even when
    /// clean: the directory records the owner's token on relinquish, and a
    /// losing test-and-set fill leaves the line exclusive-but-clean (the
    /// granted value installed, the conditional store skipped).
    pub fn self_invalidate(&mut self, block: BlockId) -> Option<MsgKind> {
        if self.is_pending(block) {
            return None;
        }
        let line = self.lines.remove(&block)?;
        Some(if line.exclusive {
            MsgKind::SelfInvDirty { token: line.token }
        } else {
            MsgKind::SelfInvClean
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_s(token: u64) -> MsgKind {
        MsgKind::DataS {
            version: 1,
            token,
            verify: None,
        }
    }

    fn data_x(token: u64) -> MsgKind {
        MsgKind::DataX {
            version: 2,
            token,
            verify: None,
        }
    }

    fn cache() -> NodeCache {
        NodeCache::new(NodeId::new(3))
    }

    #[test]
    fn cold_read_misses_then_hits() {
        let mut c = cache();
        let b = BlockId::new(1);
        assert_eq!(c.access(b, false), AccessOutcome::Miss(MsgKind::GetS));
        assert!(c.is_pending(b));
        let fill = c.apply_reply(b, data_s(7));
        assert!(!fill.exclusive);
        assert_eq!(fill.token, 7);
        assert_eq!(fill.info.kind, FillKind::Demand);
        assert_eq!(c.access(b, false), AccessOutcome::Hit { exclusive: false });
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn cold_write_misses_as_getx_and_bumps_token() {
        let mut c = cache();
        let b = BlockId::new(2);
        assert_eq!(c.access(b, true), AccessOutcome::Miss(MsgKind::GetX));
        let fill = c.apply_reply(b, data_x(10));
        assert!(fill.exclusive);
        assert_eq!(fill.token, 11, "the blocked store applies on fill");
        assert!(c.line(b).unwrap().dirty);
    }

    #[test]
    fn write_hit_on_exclusive_increments_token() {
        let mut c = cache();
        let b = BlockId::new(3);
        c.access(b, true);
        c.apply_reply(b, data_x(0));
        assert_eq!(c.access(b, true), AccessOutcome::Hit { exclusive: true });
        assert_eq!(c.line(b).unwrap().token, 2);
    }

    #[test]
    fn write_to_shared_copy_upgrades() {
        let mut c = cache();
        let b = BlockId::new(4);
        c.access(b, false);
        c.apply_reply(b, data_s(5));
        assert_eq!(c.access(b, true), AccessOutcome::Miss(MsgKind::Upgrade));
        let fill = c.apply_reply(
            b,
            MsgKind::UpgradeAck {
                version: 3,
                migratory: true,
                verify: None,
            },
        );
        assert_eq!(fill.info.kind, FillKind::Upgrade);
        assert!(fill.info.migratory_upgrade);
        assert_eq!(fill.token, 6, "upgrade applies the store");
        assert!(c.line(b).unwrap().exclusive);
    }

    #[test]
    fn invalidation_of_dirty_copy_returns_writeback() {
        let mut c = cache();
        let b = BlockId::new(5);
        c.access(b, true);
        c.apply_reply(b, data_x(0));
        let resp = c.handle_inv(b);
        assert!(resp.had_copy);
        assert_eq!(resp.dirty_token, Some(1));
        assert_eq!(c.line(b), None);
    }

    #[test]
    fn invalidation_of_clean_copy_has_no_writeback() {
        let mut c = cache();
        let b = BlockId::new(6);
        c.access(b, false);
        c.apply_reply(b, data_s(9));
        let resp = c.handle_inv(b);
        assert!(resp.had_copy);
        assert_eq!(resp.dirty_token, None);
    }

    #[test]
    fn invalidation_of_absent_block_acks_without_copy() {
        let mut c = cache();
        let resp = c.handle_inv(BlockId::new(7));
        assert!(!resp.had_copy);
    }

    #[test]
    fn upgrade_race_demotes_to_write_miss() {
        // The copy is invalidated while an upgrade is outstanding; the
        // directory replies DataX and the cache must accept it.
        let mut c = cache();
        let b = BlockId::new(8);
        c.access(b, false);
        c.apply_reply(b, data_s(4));
        assert_eq!(c.access(b, true), AccessOutcome::Miss(MsgKind::Upgrade));
        let resp = c.handle_inv(b);
        assert!(resp.had_copy);
        // The fill arrives as DataX instead of UpgradeAck.
        let fill = c.apply_reply(b, data_x(5));
        assert!(fill.exclusive);
        assert_eq!(fill.token, 6);
    }

    #[test]
    fn self_invalidate_clean_and_dirty() {
        let mut c = cache();
        let clean = BlockId::new(9);
        c.access(clean, false);
        c.apply_reply(clean, data_s(1));
        assert_eq!(c.self_invalidate(clean), Some(MsgKind::SelfInvClean));
        assert_eq!(c.line(clean), None);

        let dirty = BlockId::new(10);
        c.access(dirty, true);
        c.apply_reply(dirty, data_x(1));
        assert_eq!(
            c.self_invalidate(dirty),
            Some(MsgKind::SelfInvDirty { token: 2 })
        );
    }

    #[test]
    fn self_invalidate_skips_absent_and_pending_blocks() {
        let mut c = cache();
        assert_eq!(c.self_invalidate(BlockId::new(11)), None);
        let b = BlockId::new(12);
        c.access(b, false);
        assert!(c.is_pending(b));
        assert_eq!(c.self_invalidate(b), None);
    }

    #[test]
    fn tas_fetch_installs_granted_value_without_store() {
        let mut c = cache();
        let b = BlockId::new(14);
        assert_eq!(c.access_tas(b), AccessOutcome::Miss(MsgKind::GetX));
        let fill = c.apply_reply(b, data_x(4));
        assert!(fill.exclusive);
        assert_eq!(fill.token, 4, "tas fill does not apply the store");
        assert!(!c.line(b).unwrap().dirty);
        // Even token: the conditional store succeeds and claims the lock.
        assert!(c.try_tas(b));
        let line = c.line(b).unwrap();
        assert_eq!(line.token, 5);
        assert!(line.dirty);
        // Odd token: a second tas on the same copy fails (lock held).
        assert!(!c.try_tas(b));
    }

    #[test]
    fn tas_upgrade_keeps_shared_token() {
        let mut c = cache();
        let b = BlockId::new(15);
        c.access(b, false);
        c.apply_reply(b, data_s(7));
        assert_eq!(c.access_tas(b), AccessOutcome::Miss(MsgKind::Upgrade));
        let fill = c.apply_reply(
            b,
            MsgKind::UpgradeAck {
                version: 9,
                migratory: false,
                verify: None,
            },
        );
        assert_eq!(fill.token, 7, "upgrade-for-tas does not bump");
        assert!(!c.line(b).unwrap().dirty);
        assert!(!c.try_tas(b), "odd token observed: lock is held");
        assert_eq!(c.line(b).unwrap().token, 7);
    }

    #[test]
    fn tas_hit_on_exclusive_line_skips_the_network() {
        let mut c = cache();
        let b = BlockId::new(16);
        c.access(b, true);
        c.apply_reply(b, data_x(1)); // token 2 after the blocked store
        assert_eq!(c.access_tas(b), AccessOutcome::Hit { exclusive: true });
        assert!(c.try_tas(b));
        assert_eq!(c.line(b).unwrap().token, 3);
    }

    #[test]
    fn try_tas_fails_on_absent_or_shared_lines() {
        let mut c = cache();
        assert!(!c.try_tas(BlockId::new(17)));
        let b = BlockId::new(18);
        c.access(b, false);
        c.apply_reply(b, data_s(2));
        assert!(!c.try_tas(b), "shared copy holds no write permission");
    }

    #[test]
    #[should_panic(expected = "not a fill reply")]
    fn apply_reply_rejects_non_fill() {
        let mut c = cache();
        let b = BlockId::new(13);
        c.access(b, false);
        c.apply_reply(b, MsgKind::Inv);
    }
}
