//! # `ltp-dsm` — the CC-NUMA substrate
//!
//! The distributed-shared-memory machine the ISCA 2000 Last-Touch Prediction
//! paper evaluates on, rebuilt as composable, individually-tested state
//! machines:
//!
//! * [`SystemConfig`] — Table 1's machine parameters (32 nodes, 32-byte
//!   blocks, 104-cycle memory, 80-cycle network, ≈416-cycle round trip);
//! * [`NodeCache`] — the per-node network cache (infinite capacity: every
//!   miss is a coherence miss, as the paper assumes);
//! * [`Directory`] — the write-invalidate directory with transient states,
//!   self-invalidation race resolution, DSI write-versioning, the §4
//!   verification mask, and a selectable sharer representation
//!   ([`DirectoryKind`]: exact full map, coarse vector, or limited
//!   pointers) built on the allocation-free [`ltp_core::SharerSet`];
//! * [`ProtocolEngine`] — the two-stage pipelined engine whose queueing and
//!   service statistics regenerate Table 4;
//! * [`NetIface`] — network-interface contention (the paper's only modeled
//!   network contention point);
//! * [`Message`]/[`MsgKind`] — the protocol wire format.
//!
//! Everything here is *untimed* state-machine logic plus timing bookkeeping;
//! the discrete-event composition (who calls what when) lives in
//! `ltp-system`, which keeps each protocol corner unit-testable in
//! isolation.
//!
//! # Protocol summary
//!
//! Blocks are Idle, Shared, or Exclusive at the directory (§2). Reads to
//! Exclusive blocks *invalidate* the writer (the migratory-favoring variant
//! the paper evaluates). Upgrades by a sole sharer are flagged migratory —
//! the pattern DSI refuses to select. Self-invalidations (clean notification
//! or dirty writeback) move blocks to Idle early and enroll the node in the
//! block's verification mask, which later yields per-prediction
//! correct/premature verdicts and Table 4's timeliness.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod barrier;
mod cache;
mod config;
mod directory;
mod engine;
mod msg;
pub mod mutation;
mod network;

pub use barrier::CombiningTree;
pub use cache::{AccessOutcome, FillComplete, InvResponse, Line, NodeCache};
pub use config::{
    ConfigError, DirectoryKind, ParseDirectoryKindError, SystemConfig, SystemConfigBuilder,
};
pub use directory::{
    DirBlockView, DirCounters, DirEvent, DirStateView, DirStep, Directory, MaskEntryView,
    ServiceClass,
};
pub use engine::{EngineStats, ProtocolEngine};
pub use msg::{Message, MsgKind};
pub use network::NetIface;
