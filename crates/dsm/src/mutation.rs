//! Runtime-selectable protocol mutants for checker self-tests.
//!
//! The coherence sanitizer in `ltp-system` claims to flag protocol bugs. A
//! claim like that needs negative evidence: this module plants five known
//! bugs behind the `mutate` cargo feature, and `tests/mutation_check.rs`
//! (in the workspace root) asserts that each one trips the checker while
//! the unmutated build stays silent.
//!
//! Without the feature every hook below compiles to the identity/`false`
//! constant and the optimizer erases it; with the feature the active mutant
//! is selected at runtime through an atomic, so one test binary can drive
//! all mutants sequentially.

#[cfg(feature = "mutate")]
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// The plantable protocol bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// A cache swallows one invalidation acknowledgement: the home's Busy
    /// transaction never completes (message-conservation violation).
    DropInvAck,
    /// A node ignores the verification verdict piggybacked on one fill
    /// (verification-mask soundness violation).
    SkipFillVerify,
    /// A `coarse:K` directory expands each marked cluster one node too
    /// wide when collecting invalidation targets (sharer-decode violation).
    WidenCoarseDecode,
    /// Arrival event keys invert their source-node tiebreaker, so
    /// same-cycle deliveries to one node pop in the wrong order
    /// (shard-determinism violation).
    ReorderArrival,
    /// A `sparse:E` directory frees an evicted entry without invalidating
    /// its holders, leaving stale copies live in their caches
    /// (eviction-invalidation violation).
    SkipEvictionInv,
}

#[cfg(feature = "mutate")]
const fn code(m: Mutant) -> u8 {
    match m {
        Mutant::DropInvAck => 1,
        Mutant::SkipFillVerify => 2,
        Mutant::WidenCoarseDecode => 3,
        Mutant::ReorderArrival => 4,
        Mutant::SkipEvictionInv => 5,
    }
}

#[cfg(feature = "mutate")]
static ACTIVE: AtomicU8 = AtomicU8::new(0);
#[cfg(feature = "mutate")]
static FIRED: AtomicBool = AtomicBool::new(false);

/// Selects the active mutant (or none) and re-arms the fire-once latch.
/// Tests driving different mutants must serialize on an external lock.
#[cfg(feature = "mutate")]
pub fn set_active(m: Option<Mutant>) {
    FIRED.store(false, Ordering::SeqCst);
    ACTIVE.store(m.map_or(0, code), Ordering::SeqCst);
}

#[cfg(feature = "mutate")]
fn is_active(m: Mutant) -> bool {
    ACTIVE.load(Ordering::SeqCst) == code(m)
}

/// Fires `m` exactly once per [`set_active`] arming — used by mutants that
/// must corrupt a single protocol step rather than every step.
#[cfg(feature = "mutate")]
fn fire_once(m: Mutant) -> bool {
    is_active(m) && !FIRED.swap(true, Ordering::SeqCst)
}

/// The cluster-expansion span for a `coarse:K` invalidation round
/// (`K`, or one wider under [`Mutant::WidenCoarseDecode`]).
#[inline]
pub fn coarse_span(k: u16) -> u16 {
    #[cfg(feature = "mutate")]
    if is_active(Mutant::WidenCoarseDecode) {
        return k + 1;
    }
    k
}

/// Whether to swallow the next `InvAck` ([`Mutant::DropInvAck`], once).
#[inline]
pub fn fire_drop_invack() -> bool {
    #[cfg(feature = "mutate")]
    {
        fire_once(Mutant::DropInvAck)
    }
    #[cfg(not(feature = "mutate"))]
    {
        false
    }
}

/// Whether to drop the next piggybacked fill verdict
/// ([`Mutant::SkipFillVerify`], once).
#[inline]
pub fn fire_skip_fill_verify() -> bool {
    #[cfg(feature = "mutate")]
    {
        fire_once(Mutant::SkipFillVerify)
    }
    #[cfg(not(feature = "mutate"))]
    {
        false
    }
}

/// The source-node tiebreaker an arrival event key should carry
/// (`src`, or inverted under [`Mutant::ReorderArrival`]).
#[inline]
pub fn arrive_key_src(src: u16) -> u16 {
    #[cfg(feature = "mutate")]
    if is_active(Mutant::ReorderArrival) {
        return u16::MAX - src;
    }
    src
}

/// Whether to skip the next sparse eviction's invalidation round
/// ([`Mutant::SkipEvictionInv`], once).
#[inline]
pub fn fire_skip_eviction_inv() -> bool {
    #[cfg(feature = "mutate")]
    {
        fire_once(Mutant::SkipEvictionInv)
    }
    #[cfg(not(feature = "mutate"))]
    {
        false
    }
}
