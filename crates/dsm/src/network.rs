//! The point-to-point interconnect.
//!
//! Per Table 1 the network has a constant 80-cycle latency; contention is
//! modeled at the *network interfaces* (§5: "we assume a point-to-point
//! network with a constant latency but model contention at the network
//! interfaces"). Each node owns a [`NetIface`] that serializes outgoing
//! messages — a burst of self-invalidations (DSI's failure mode) therefore
//! drains one message per occupancy period, delaying everything behind it.
//!
//! Because the interface is a FIFO and the latency constant, message order
//! is preserved per (source, destination) pair — an ordering property the
//! directory relies on (a node's `SelfInv` always reaches home before that
//! node's subsequent request for the same block).

use ltp_sim::stats::Counter;
use ltp_sim::Cycle;

/// One node's outgoing network interface.
///
/// # Examples
///
/// ```
/// use ltp_dsm::NetIface;
/// use ltp_sim::Cycle;
///
/// let mut ni = NetIface::new(Cycle::new(8));
/// // Two messages handed over at the same instant serialize.
/// assert_eq!(ni.depart(Cycle::new(100)), Cycle::new(108));
/// assert_eq!(ni.depart(Cycle::new(100)), Cycle::new(116));
/// // After the burst drains, the interface is free again.
/// assert_eq!(ni.depart(Cycle::new(500)), Cycle::new(508));
/// ```
#[derive(Debug, Clone)]
pub struct NetIface {
    occupancy: Cycle,
    busy_until: Cycle,
    sent: Counter,
    max_backlog: Cycle,
}

impl NetIface {
    /// Creates an interface with the given per-message serialization time.
    pub fn new(occupancy: Cycle) -> Self {
        NetIface {
            occupancy,
            busy_until: Cycle::ZERO,
            sent: Counter::new(),
            max_backlog: Cycle::ZERO,
        }
    }

    /// Hands one message to the interface at `now`; returns its departure
    /// time (arrival at the destination is departure + network latency).
    pub fn depart(&mut self, now: Cycle) -> Cycle {
        let backlog = self.busy_until.saturating_sub(now);
        if backlog > self.max_backlog {
            self.max_backlog = backlog;
        }
        let start = now.max(self.busy_until);
        self.busy_until = start + self.occupancy;
        self.sent.incr();
        self.busy_until
    }

    /// Messages sent so far.
    pub fn sent(&self) -> u64 {
        self.sent.count()
    }

    /// The worst serialization backlog observed (a burstiness indicator).
    pub fn max_backlog(&self) -> Cycle {
        self.max_backlog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_bursts() {
        let mut ni = NetIface::new(Cycle::new(8));
        let t1 = ni.depart(Cycle::new(0));
        let t2 = ni.depart(Cycle::new(0));
        let t3 = ni.depart(Cycle::new(0));
        assert_eq!(
            (t1, t2, t3),
            (Cycle::new(8), Cycle::new(16), Cycle::new(24))
        );
        assert_eq!(ni.sent(), 3);
    }

    #[test]
    fn idles_between_messages() {
        let mut ni = NetIface::new(Cycle::new(8));
        ni.depart(Cycle::new(0));
        assert_eq!(ni.depart(Cycle::new(100)), Cycle::new(108));
    }

    #[test]
    fn fifo_order_preserved() {
        let mut ni = NetIface::new(Cycle::new(8));
        let a = ni.depart(Cycle::new(0));
        let b = ni.depart(Cycle::new(2));
        assert!(a < b, "handover order = departure order");
    }

    #[test]
    fn tracks_max_backlog() {
        let mut ni = NetIface::new(Cycle::new(10));
        for _ in 0..5 {
            ni.depart(Cycle::new(0));
        }
        assert_eq!(ni.max_backlog(), Cycle::new(40));
    }
}
