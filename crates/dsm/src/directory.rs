//! The full-map write-invalidate directory (paper §2, §4).
//!
//! Each home node runs a [`Directory`] holding, per block: the sharing state
//! (Idle / Shared / Exclusive, plus a transient Busy state while
//! invalidations are being collected), a full-map sharer set, the DSI
//! write-version number, the home copy of the data token, the §4
//! *verification mask* of self-invalidators, and a queue of requests shelved
//! while the block is Busy.
//!
//! The directory is a pure state machine: [`Directory::process`] consumes one
//! message and returns the messages to emit, the requests to re-inject, and
//! the service class for the protocol engine's timing model. All races the
//! protocol can produce — self-invalidations crossing invalidations,
//! upgrades racing writers, stale acknowledgements — are resolved here and
//! covered by unit tests.

use std::collections::{BTreeSet, HashMap, VecDeque};

use ltp_core::{BlockId, NodeId, VerifyOutcome};
use ltp_sim::stats::Counter;

use crate::msg::{Message, MsgKind};

/// Engine-time classification of one directory service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceClass {
    /// State bookkeeping only.
    Control,
    /// The service moved a data block (one memory access).
    Data,
}

/// Result of processing one message at the directory.
#[derive(Debug, Clone, Default)]
pub struct DirStep {
    /// Protocol messages to emit after the service completes.
    pub sends: Vec<Message>,
    /// Shelved requests to re-inject into the engine (the block left its
    /// Busy state).
    pub reinject: Vec<Message>,
    /// Timing class of this service.
    pub data_service: bool,
}

impl DirStep {
    fn control() -> Self {
        DirStep::default()
    }

    fn data() -> Self {
        DirStep {
            data_service: true,
            ..DirStep::default()
        }
    }
}

/// Stable + transient directory states for one block.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DirState {
    /// Only the home copy exists.
    Idle,
    /// Read-only copies at the listed nodes.
    Shared(BTreeSet<NodeId>),
    /// A writable copy at one node.
    Exclusive(NodeId),
    /// Collecting invalidation acks / writeback for an in-flight request.
    Busy(Busy),
}

/// The in-flight transaction while Busy.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Busy {
    requester: NodeId,
    /// Grant exclusive (GetX/Upgrade) vs read-only (GetS).
    want_exclusive: bool,
    /// Reply with `UpgradeAck` (requester kept its data) instead of `DataX`.
    upgrade_reply: bool,
    /// Nodes whose acknowledgement or writeback is still awaited.
    waiting: BTreeSet<NodeId>,
    /// Verification verdict to piggyback on the eventual reply.
    verify: Option<VerifyOutcome>,
}

/// One §4 verification-mask entry: a node that self-invalidated and awaits a
/// verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MaskEntry {
    node: NodeId,
    /// The copy relinquished was exclusive (writeback) vs read-only.
    relinquished_exclusive: bool,
    /// Whether the self-invalidation was processed in a stable state —
    /// i.e. it reached the directory *before* the conflicting request
    /// (Table 4's timeliness).
    timely: bool,
}

/// Per-block directory record.
#[derive(Debug, Clone)]
struct DirBlock {
    state: DirState,
    /// DSI write-version: incremented on every exclusive grant.
    version: u32,
    /// Home copy of the data token.
    token: u64,
    /// §4 verification mask.
    mask: Vec<MaskEntry>,
    /// Requests shelved while Busy.
    pending: VecDeque<Message>,
}

impl Default for DirBlock {
    fn default() -> Self {
        DirBlock {
            state: DirState::Idle,
            version: 0,
            token: 0,
            mask: Vec::new(),
            pending: VecDeque::new(),
        }
    }
}

/// Counters the directory keeps for reports and invariant checks.
#[derive(Debug, Clone, Default)]
pub struct DirCounters {
    /// Invalidation messages sent to sharers/owners on behalf of requests.
    pub invalidations_sent: Counter,
    /// Self-invalidations applied in a stable state (timely).
    pub self_inv_timely: Counter,
    /// Self-invalidations that arrived while the conflicting request was
    /// already in flight (late; they served as the awaited ack).
    pub self_inv_late: Counter,
    /// Stale messages ignored (acks for completed transactions etc.).
    pub stale_ignored: Counter,
}

/// A home node's directory.
///
/// # Examples
///
/// ```
/// use ltp_core::{BlockId, NodeId};
/// use ltp_dsm::{Directory, Message, MsgKind};
///
/// let home = NodeId::new(0);
/// let mut dir = Directory::new(home);
/// let b = BlockId::new(0);
/// // A cold read is served directly from home.
/// let step = dir.process(Message::new(NodeId::new(1), home, b, MsgKind::GetS));
/// assert_eq!(step.sends.len(), 1);
/// assert!(matches!(step.sends[0].kind, MsgKind::DataS { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    home: NodeId,
    blocks: HashMap<BlockId, DirBlock>,
    counters: DirCounters,
}

impl Directory {
    /// Creates the directory for home node `home`.
    pub fn new(home: NodeId) -> Self {
        Directory {
            home,
            blocks: HashMap::new(),
            counters: DirCounters::default(),
        }
    }

    /// The home node this directory serves.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Statistics counters.
    pub fn counters(&self) -> &DirCounters {
        &self.counters
    }

    /// The DSI write-version of `block` (0 if never written).
    pub fn version_of(&self, block: BlockId) -> u32 {
        self.blocks.get(&block).map_or(0, |b| b.version)
    }

    /// Whether `block` is in a stable Idle state (for tests/examples).
    pub fn is_idle(&self, block: BlockId) -> bool {
        self.blocks
            .get(&block)
            .is_none_or(|b| b.state == DirState::Idle)
    }

    /// Processes one incoming message; see module docs.
    ///
    /// # Panics
    ///
    /// Panics if `msg.dst` is not this directory's home or if a cache reply
    /// kind (`DataS` etc.) is delivered to the directory.
    pub fn process(&mut self, msg: Message) -> DirStep {
        assert_eq!(msg.dst, self.home, "message routed to the wrong home");
        match msg.kind {
            MsgKind::GetS | MsgKind::GetX | MsgKind::Upgrade => self.process_request(msg),
            MsgKind::SelfInvClean => self.process_self_inv(msg, None),
            MsgKind::SelfInvDirty { token } => self.process_self_inv(msg, Some(token)),
            MsgKind::InvAck {
                had_copy: _,
                dirty_token,
            } => self.process_inv_ack(msg, dirty_token),
            other => panic!("directory received non-protocol message {other:?}"),
        }
    }

    /// Resolves the verification mask against an arriving request. Returns
    /// the verdict to piggyback for the requester (if it was itself in the
    /// mask) plus zero-latency `VerifyCorrect` notifications for others.
    fn resolve_mask(
        &mut self,
        block: BlockId,
        requester: NodeId,
        write_request: bool,
    ) -> (Option<VerifyOutcome>, Vec<Message>) {
        let home = self.home;
        let entry = self.blocks.entry(block).or_default();
        let mut verify_for_requester = None;
        let mut notifications = Vec::new();
        entry.mask.retain(|m| {
            if m.node == requester {
                // The self-invalidator itself came back first: premature.
                verify_for_requester = Some(VerifyOutcome::Premature);
                false
            } else if m.relinquished_exclusive || write_request {
                // A conflicting access by another node: the relinquished copy
                // would have been invalidated anyway — correct.
                notifications.push(Message::new(
                    home,
                    m.node,
                    block,
                    MsgKind::VerifyCorrect { timely: m.timely },
                ));
                false
            } else {
                // Read-relinquisher observed by another reader: undecided.
                true
            }
        });
        (verify_for_requester, notifications)
    }

    fn process_request(&mut self, msg: Message) -> DirStep {
        let block = msg.block;
        // Shelve requests for Busy blocks (the pipelined engine holds off
        // conflicting transactions rather than NACKing).
        if let DirState::Busy(_) = self.blocks.entry(block).or_default().state {
            self.blocks
                .get_mut(&block)
                .expect("just inserted")
                .pending
                .push_back(msg);
            return DirStep::control();
        }

        let write_request = matches!(msg.kind, MsgKind::GetX | MsgKind::Upgrade);
        let (verify, mut notifications) = self.resolve_mask(block, msg.src, write_request);
        let home = self.home;
        let entry = self.blocks.get_mut(&block).expect("resolved above");

        let mut step = match (&mut entry.state, msg.kind) {
            // ---- reads ----------------------------------------------------
            (DirState::Idle, MsgKind::GetS) => {
                entry.state = DirState::Shared(BTreeSet::from([msg.src]));
                let mut s = DirStep::data();
                s.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::DataS {
                        version: entry.version,
                        token: entry.token,
                        verify,
                    },
                ));
                s
            }
            (DirState::Shared(sharers), MsgKind::GetS) => {
                sharers.insert(msg.src);
                let mut s = DirStep::data();
                s.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::DataS {
                        version: entry.version,
                        token: entry.token,
                        verify,
                    },
                ));
                s
            }
            (DirState::Exclusive(owner), MsgKind::GetS) => {
                // Migratory-favoring protocol (§2): a read invalidates the
                // writer's copy entirely.
                debug_assert_ne!(*owner, msg.src, "owner re-requesting its own block");
                let owner = *owner;
                entry.state = DirState::Busy(Busy {
                    requester: msg.src,
                    want_exclusive: false,
                    upgrade_reply: false,
                    waiting: BTreeSet::from([owner]),
                    verify,
                });
                self.counters.invalidations_sent.incr();
                let mut s = DirStep::control();
                s.sends.push(Message::new(home, owner, block, MsgKind::Inv));
                s
            }

            // ---- writes ---------------------------------------------------
            (DirState::Idle, MsgKind::GetX | MsgKind::Upgrade) => {
                // Upgrade on Idle: the requester's copy was invalidated while
                // the upgrade was in flight; serve it as a full write miss.
                entry.version += 1;
                entry.state = DirState::Exclusive(msg.src);
                let mut s = DirStep::data();
                s.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::DataX {
                        version: entry.version,
                        token: entry.token,
                        verify,
                    },
                ));
                s
            }
            (DirState::Shared(sharers), MsgKind::Upgrade) if sharers.contains(&msg.src) => {
                if sharers.len() == 1 {
                    // Sole sharer upgrading: the migratory pattern.
                    entry.version += 1;
                    entry.state = DirState::Exclusive(msg.src);
                    let mut s = DirStep::control();
                    s.sends.push(Message::new(
                        home,
                        msg.src,
                        block,
                        MsgKind::UpgradeAck {
                            version: entry.version,
                            migratory: true,
                            verify,
                        },
                    ));
                    s
                } else {
                    let waiting: BTreeSet<NodeId> =
                        sharers.iter().copied().filter(|&n| n != msg.src).collect();
                    let mut s = DirStep::control();
                    for &n in &waiting {
                        self.counters.invalidations_sent.incr();
                        s.sends.push(Message::new(home, n, block, MsgKind::Inv));
                    }
                    entry.state = DirState::Busy(Busy {
                        requester: msg.src,
                        want_exclusive: true,
                        upgrade_reply: true,
                        waiting,
                        verify,
                    });
                    s
                }
            }
            (DirState::Shared(sharers), MsgKind::GetX | MsgKind::Upgrade) => {
                // GetX, or an Upgrade from a node that lost its copy.
                let waiting: BTreeSet<NodeId> =
                    sharers.iter().copied().filter(|&n| n != msg.src).collect();
                if waiting.is_empty() {
                    entry.version += 1;
                    entry.state = DirState::Exclusive(msg.src);
                    let mut s = DirStep::data();
                    s.sends.push(Message::new(
                        home,
                        msg.src,
                        block,
                        MsgKind::DataX {
                            version: entry.version,
                            token: entry.token,
                            verify,
                        },
                    ));
                    s
                } else {
                    let mut s = DirStep::control();
                    for &n in &waiting {
                        self.counters.invalidations_sent.incr();
                        s.sends.push(Message::new(home, n, block, MsgKind::Inv));
                    }
                    entry.state = DirState::Busy(Busy {
                        requester: msg.src,
                        want_exclusive: true,
                        upgrade_reply: false,
                        waiting,
                        verify,
                    });
                    s
                }
            }
            (DirState::Exclusive(owner), MsgKind::GetX | MsgKind::Upgrade) => {
                debug_assert_ne!(*owner, msg.src, "owner re-requesting exclusively");
                let owner = *owner;
                entry.state = DirState::Busy(Busy {
                    requester: msg.src,
                    want_exclusive: true,
                    upgrade_reply: false,
                    waiting: BTreeSet::from([owner]),
                    verify,
                });
                self.counters.invalidations_sent.incr();
                let mut s = DirStep::control();
                s.sends.push(Message::new(home, owner, block, MsgKind::Inv));
                s
            }
            (DirState::Busy(_), _) => unreachable!("busy handled above"),
            (state, kind) => unreachable!("unhandled request {kind:?} in {state:?}"),
        };
        step.sends.append(&mut notifications);
        step
    }

    fn process_self_inv(&mut self, msg: Message, writeback: Option<u64>) -> DirStep {
        let block = msg.block;
        let home = self.home;
        let entry = self.blocks.entry(block).or_default();
        match &mut entry.state {
            DirState::Shared(sharers) if writeback.is_none() && sharers.contains(&msg.src) => {
                sharers.remove(&msg.src);
                if sharers.is_empty() {
                    entry.state = DirState::Idle;
                }
                entry.mask.push(MaskEntry {
                    node: msg.src,
                    relinquished_exclusive: false,
                    timely: true,
                });
                self.counters.self_inv_timely.incr();
                DirStep::control()
            }
            DirState::Exclusive(owner) if *owner == msg.src => {
                let token = writeback.expect("exclusive owner must write back");
                debug_assert!(token >= entry.token, "token regressed on writeback");
                entry.token = token;
                entry.state = DirState::Idle;
                entry.mask.push(MaskEntry {
                    node: msg.src,
                    relinquished_exclusive: true,
                    timely: true,
                });
                self.counters.self_inv_timely.incr();
                DirStep::data()
            }
            DirState::Busy(busy) if busy.waiting.contains(&msg.src) => {
                // The self-invalidation crossed the Inv we sent: it serves as
                // the awaited acknowledgement, but it is *late* — the
                // conflicting request was already being serviced.
                busy.waiting.remove(&msg.src);
                let requester = busy.requester;
                let relinq_ex = writeback.is_some();
                if let Some(token) = writeback {
                    debug_assert!(token >= entry.token, "token regressed on writeback");
                    entry.token = token;
                }
                self.counters.self_inv_late.incr();
                let mut step = if relinq_ex {
                    DirStep::data()
                } else {
                    DirStep::control()
                };
                // Verified immediately: the in-service request is the
                // conflicting access. (It cannot be the self-invalidator
                // itself — a node with a cached copy does not request.)
                debug_assert_ne!(requester, msg.src);
                step.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::VerifyCorrect { timely: false },
                ));
                self.finish_busy_if_ready(block, &mut step);
                step
            }
            _ => {
                // Stale: the copy was already invalidated by a crossing Inv.
                self.counters.stale_ignored.incr();
                DirStep::control()
            }
        }
    }

    fn process_inv_ack(&mut self, msg: Message, dirty_token: Option<u64>) -> DirStep {
        let block = msg.block;
        let entry = self.blocks.entry(block).or_default();
        match &mut entry.state {
            DirState::Busy(busy) if busy.waiting.contains(&msg.src) => {
                busy.waiting.remove(&msg.src);
                if let Some(token) = dirty_token {
                    debug_assert!(token >= entry.token, "token regressed on writeback");
                    entry.token = token;
                }
                let mut step = if dirty_token.is_some() {
                    DirStep::data()
                } else {
                    DirStep::control()
                };
                self.finish_busy_if_ready(block, &mut step);
                step
            }
            _ => {
                // An ack for a transaction a self-invalidation already
                // completed.
                self.counters.stale_ignored.incr();
                DirStep::control()
            }
        }
    }

    /// Completes the Busy transaction once every awaited ack arrived:
    /// sends the grant and re-injects shelved requests.
    fn finish_busy_if_ready(&mut self, block: BlockId, step: &mut DirStep) {
        let home = self.home;
        let entry = self.blocks.get_mut(&block).expect("busy block exists");
        let DirState::Busy(busy) = &entry.state else {
            return;
        };
        if !busy.waiting.is_empty() {
            return;
        }
        let busy = busy.clone();
        if busy.want_exclusive {
            entry.version += 1;
            entry.state = DirState::Exclusive(busy.requester);
            let kind = if busy.upgrade_reply {
                MsgKind::UpgradeAck {
                    version: entry.version,
                    migratory: false,
                    verify: busy.verify,
                }
            } else {
                MsgKind::DataX {
                    version: entry.version,
                    token: entry.token,
                    verify: busy.verify,
                }
            };
            step.sends
                .push(Message::new(home, busy.requester, block, kind));
        } else {
            entry.state = DirState::Shared(BTreeSet::from([busy.requester]));
            step.sends.push(Message::new(
                home,
                busy.requester,
                block,
                MsgKind::DataS {
                    version: entry.version,
                    token: entry.token,
                    verify: busy.verify,
                },
            ));
        }
        // The reply moves data (except pure upgrade acks).
        step.data_service |= !busy.upgrade_reply;
        step.reinject.extend(entry.pending.drain(..));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    fn msg(src: u16, block: u64, kind: MsgKind) -> Message {
        Message::new(n(src), n(0), b(block), kind)
    }

    fn dir() -> Directory {
        Directory::new(n(0))
    }

    #[test]
    fn cold_read_served_from_home() {
        let mut d = dir();
        let step = d.process(msg(1, 0, MsgKind::GetS));
        assert!(step.data_service);
        assert_eq!(step.sends.len(), 1);
        assert_eq!(step.sends[0].dst, n(1));
        assert!(matches!(
            step.sends[0].kind,
            MsgKind::DataS {
                version: 0,
                token: 0,
                verify: None
            }
        ));
    }

    #[test]
    fn write_increments_version() {
        let mut d = dir();
        let step = d.process(msg(1, 0, MsgKind::GetX));
        assert!(matches!(
            step.sends[0].kind,
            MsgKind::DataX { version: 1, .. }
        ));
        assert_eq!(d.version_of(b(0)), 1);
    }

    #[test]
    fn read_to_exclusive_invalidates_owner_then_replies() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetX));
        // P2 reads: owner P1 must be invalidated first.
        let step = d.process(msg(2, 0, MsgKind::GetS));
        assert_eq!(step.sends.len(), 1);
        assert_eq!(step.sends[0].dst, n(1));
        assert!(matches!(step.sends[0].kind, MsgKind::Inv));
        // P1's writeback completes the transaction.
        let step = d.process(msg(
            1,
            0,
            MsgKind::InvAck {
                had_copy: true,
                dirty_token: Some(5),
            },
        ));
        assert!(step.data_service);
        let reply = step.sends.last().unwrap();
        assert_eq!(reply.dst, n(2));
        assert!(matches!(reply.kind, MsgKind::DataS { token: 5, .. }));
        assert_eq!(d.counters().invalidations_sent.count(), 1);
    }

    #[test]
    fn write_to_shared_invalidates_all_readers() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(2, 0, MsgKind::GetS));
        d.process(msg(3, 0, MsgKind::GetS));
        let step = d.process(msg(4, 0, MsgKind::GetX));
        let inv_dsts: Vec<NodeId> = step.sends.iter().map(|m| m.dst).collect();
        assert_eq!(inv_dsts, vec![n(1), n(2), n(3)]);
        // Acks trickle in; the grant goes out with the last one.
        for src in [1, 2, 3] {
            let step = d.process(msg(
                src,
                0,
                MsgKind::InvAck {
                    had_copy: true,
                    dirty_token: None,
                },
            ));
            if src == 3 {
                assert!(matches!(
                    step.sends.last().unwrap().kind,
                    MsgKind::DataX { version: 1, .. }
                ));
            } else {
                assert!(step.sends.is_empty());
            }
        }
    }

    #[test]
    fn sole_sharer_upgrade_is_migratory() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        let step = d.process(msg(1, 0, MsgKind::Upgrade));
        assert!(matches!(
            step.sends[0].kind,
            MsgKind::UpgradeAck {
                migratory: true,
                version: 1,
                ..
            }
        ));
    }

    #[test]
    fn multi_sharer_upgrade_is_not_migratory() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(2, 0, MsgKind::GetS));
        let step = d.process(msg(1, 0, MsgKind::Upgrade));
        assert!(matches!(step.sends[0].kind, MsgKind::Inv));
        assert_eq!(step.sends[0].dst, n(2));
        let step = d.process(msg(
            2,
            0,
            MsgKind::InvAck {
                had_copy: true,
                dirty_token: None,
            },
        ));
        assert!(matches!(
            step.sends.last().unwrap().kind,
            MsgKind::UpgradeAck {
                migratory: false,
                ..
            }
        ));
    }

    #[test]
    fn busy_block_shelves_requests_and_reinjects() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetX));
        d.process(msg(2, 0, MsgKind::GetS)); // Busy now
        let step = d.process(msg(3, 0, MsgKind::GetS)); // shelved
        assert!(step.sends.is_empty());
        let step = d.process(msg(
            1,
            0,
            MsgKind::InvAck {
                had_copy: true,
                dirty_token: Some(1),
            },
        ));
        assert_eq!(step.reinject.len(), 1);
        assert_eq!(step.reinject[0].src, n(3));
    }

    #[test]
    fn self_inv_clean_clears_sharer_and_masks() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        let step = d.process(msg(1, 0, MsgKind::SelfInvClean));
        assert!(step.sends.is_empty());
        assert!(d.is_idle(b(0)));
        assert_eq!(d.counters().self_inv_timely.count(), 1);
        // A subsequent writer finds Idle: 2-hop grant + verification.
        let step = d.process(msg(2, 0, MsgKind::GetX));
        assert_eq!(step.sends.len(), 2);
        assert!(matches!(step.sends[0].kind, MsgKind::DataX { .. }));
        assert!(matches!(
            step.sends[1].kind,
            MsgKind::VerifyCorrect { timely: true }
        ));
        assert_eq!(step.sends[1].dst, n(1));
    }

    #[test]
    fn self_inv_dirty_writes_back_and_idles() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetX));
        let step = d.process(msg(1, 0, MsgKind::SelfInvDirty { token: 9 }));
        assert!(step.data_service);
        assert!(d.is_idle(b(0)));
        // The next reader gets the written-back data in 2 hops.
        let step = d.process(msg(2, 0, MsgKind::GetS));
        assert!(matches!(
            step.sends[0].kind,
            MsgKind::DataS { token: 9, .. }
        ));
        // …and the self-invalidator learns it was correct & timely.
        assert!(matches!(
            step.sends[1].kind,
            MsgKind::VerifyCorrect { timely: true }
        ));
    }

    #[test]
    fn premature_self_inv_detected_on_reuse() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetX));
        d.process(msg(1, 0, MsgKind::SelfInvDirty { token: 2 }));
        // The same node comes back before anyone else: premature.
        let step = d.process(msg(1, 0, MsgKind::GetX));
        assert!(matches!(
            step.sends[0].kind,
            MsgKind::DataX {
                verify: Some(VerifyOutcome::Premature),
                token: 2,
                ..
            }
        ));
    }

    #[test]
    fn read_relinquisher_confirmed_only_by_writer() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(2, 0, MsgKind::GetS));
        d.process(msg(1, 0, MsgKind::SelfInvClean));
        // Another reader does not resolve the verdict…
        let step = d.process(msg(3, 0, MsgKind::GetS));
        assert_eq!(step.sends.len(), 1, "no verification yet");
        // …a writer does. P2 and P3 still hold copies and get Invs; P1's
        // self-invalidation is confirmed.
        let step = d.process(msg(4, 0, MsgKind::GetX));
        let verify: Vec<&Message> = step
            .sends
            .iter()
            .filter(|m| matches!(m.kind, MsgKind::VerifyCorrect { .. }))
            .collect();
        assert_eq!(verify.len(), 1);
        assert_eq!(verify[0].dst, n(1));
        let invs = step
            .sends
            .iter()
            .filter(|m| matches!(m.kind, MsgKind::Inv))
            .count();
        assert_eq!(invs, 2);
    }

    #[test]
    fn self_inv_crossing_inv_counts_as_late_ack() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetX));
        // P2 wants the block: Inv sent to P1.
        d.process(msg(2, 0, MsgKind::GetS));
        // P1's self-invalidation was already in flight: it arrives instead of
        // the InvAck.
        let step = d.process(msg(1, 0, MsgKind::SelfInvDirty { token: 3 }));
        // It completes the transaction…
        let reply = step
            .sends
            .iter()
            .find(|m| matches!(m.kind, MsgKind::DataS { .. }))
            .expect("grant sent");
        assert_eq!(reply.dst, n(2));
        // …but is verified correct-late.
        assert!(step
            .sends
            .iter()
            .any(|m| matches!(m.kind, MsgKind::VerifyCorrect { timely: false }) && m.dst == n(1)));
        assert_eq!(d.counters().self_inv_late.count(), 1);
        // P1's InvAck for the crossed Inv arrives afterwards: ignored.
        let step = d.process(msg(
            1,
            0,
            MsgKind::InvAck {
                had_copy: false,
                dirty_token: None,
            },
        ));
        assert!(step.sends.is_empty());
        assert_eq!(d.counters().stale_ignored.count(), 1);
    }

    #[test]
    fn stale_self_inv_after_invalidation_is_ignored() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(1, 0, MsgKind::SelfInvClean));
        // A second (buggy/duplicate) self-inv is ignored.
        let step = d.process(msg(1, 0, MsgKind::SelfInvClean));
        assert!(step.sends.is_empty());
        assert_eq!(d.counters().stale_ignored.count(), 1);
    }

    #[test]
    fn upgrade_race_served_as_write_miss() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(2, 0, MsgKind::GetX));
        d.process(msg(
            1,
            0,
            MsgKind::InvAck {
                had_copy: true,
                dirty_token: None,
            },
        ));
        // P1 lost its copy to P2; P1's Upgrade (sent before the Inv arrived)
        // shows up now that the block is Exclusive(P2): treat as GetX.
        let step = d.process(msg(1, 0, MsgKind::Upgrade));
        assert!(matches!(step.sends[0].kind, MsgKind::Inv));
        assert_eq!(step.sends[0].dst, n(2));
        let step = d.process(msg(
            2,
            0,
            MsgKind::InvAck {
                had_copy: true,
                dirty_token: Some(4),
            },
        ));
        let grant = step.sends.last().unwrap();
        assert_eq!(grant.dst, n(1));
        assert!(matches!(grant.kind, MsgKind::DataX { token: 4, .. }));
    }

    #[test]
    fn token_flows_through_write_chain() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetX)); // P1 writes (token 1 at P1)
        d.process(msg(2, 0, MsgKind::GetX)); // P2 wants it
        let step = d.process(msg(
            1,
            0,
            MsgKind::InvAck {
                had_copy: true,
                dirty_token: Some(1),
            },
        ));
        assert!(
            matches!(
                step.sends.last().unwrap().kind,
                MsgKind::DataX { token: 1, .. }
            ),
            "P2 must observe P1's write"
        );
    }

    #[test]
    #[should_panic(expected = "wrong home")]
    fn misrouted_message_panics() {
        let mut d = dir();
        d.process(Message::new(n(1), n(5), b(0), MsgKind::GetS));
    }
}
