//! The write-invalidate directory (paper §2, §4) with selectable sharer
//! representations.
//!
//! Each home node runs a [`Directory`] holding, per block: the sharing state
//! (Idle / Shared / Exclusive, plus a transient Busy state while
//! invalidations are being collected), the sharer representation, the DSI
//! write-version number, the home copy of the data token, the §4
//! *verification mask* of self-invalidators, and a queue of requests shelved
//! while the block is Busy.
//!
//! Sharer tracking is built on [`ltp_core::SharerSet`] — a width-generic
//! hybrid set (inline up to eight sharers, heap bit-vector beyond, any
//! machine width) — interpreted according to the configured
//! [`DirectoryKind`]:
//!
//! * **`full`** — one bit per node, exact; the paper's organization and
//!   bit-identical to the original `BTreeSet` full map (both iterate
//!   ascending);
//! * **`coarse:K`** — one bit per `K`-node cluster. Invalidations go to
//!   every node of each marked cluster; a self-invalidating sharer cannot
//!   clear a cluster bit (its neighbours may still hold copies), so stale
//!   bits accrue *extra* invalidations, which nodes acknowledge without a
//!   copy;
//! * **`ptr:I`** — `Dir_I_B` limited pointers: up to `I` exact sharers,
//!   then a broadcast bit. Writes to overflowed blocks invalidate every
//!   node;
//! * **`sparse:E`** — a bounded directory-entry cache: at most `E` blocks
//!   per home may be tracked (non-Idle) at once. Tracked entries are exact
//!   full maps; allocating beyond `E` evicts the least-recently-used stable
//!   entry, invalidating its holders first (transient Evicting state) so
//!   the untracked block safely falls back to Idle. Memory state (version,
//!   token, verification mask) persists across evictions — only the
//!   *sharing* record is bounded.
//!
//! Over-invalidation is measurable: [`DirCounters::extra_invalidations`]
//! counts invalidations acknowledged without a copy,
//! [`DirCounters::broadcast_overflows`] counts pointer-array overflows, and
//! [`DirCounters::dir_evictions`]/[`DirCounters::eviction_invalidations`]
//! count sparse replacements and the invalidations they forced.
//!
//! The directory is a pure state machine: [`Directory::process`] consumes one
//! message and returns the messages to emit, the requests to re-inject, and
//! the service class for the protocol engine's timing model. All races the
//! protocol can produce — self-invalidations crossing invalidations,
//! upgrades racing writers, stale acknowledgements — are resolved here and
//! covered by unit tests.

use std::collections::{HashMap, VecDeque};

use ltp_core::{BlockId, NodeId, SharerSet, VerifyOutcome};
use ltp_sim::stats::Counter;

use crate::config::DirectoryKind;
use crate::msg::{Message, MsgKind};

/// Engine-time classification of one directory service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceClass {
    /// State bookkeeping only.
    Control,
    /// The service moved a data block (one memory access).
    Data,
}

/// A directory-side observation produced while processing one message.
///
/// These are the emission points of the probe API: every increment of the
/// report-level [`DirCounters`] (invalidations sent, over-invalidation
/// acks, broadcast overflows, stale ignores) has a matching event here, so
/// external observers (the `ltp-system` probe layer) see the same stream
/// those counters summarize. The directory-internal
/// `self_inv_timely`/`self_inv_late` bookkeeping has no event of its own —
/// node-side probes already see each self-invalidation and its verdict
/// (with the timeliness flag) directly. The block concerned is the
/// processed message's block; the home is the directory that emitted the
/// step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DirEvent {
    /// An invalidation was sent to `to` on behalf of the in-service request.
    InvalidationSent {
        /// The invalidated node.
        to: NodeId,
    },
    /// An invalidation acknowledgement was consumed by an in-flight
    /// transaction. `had_copy = false` marks an over-invalidation (imprecise
    /// sharer representation, or a self-invalidation crossing the `Inv`).
    InvalidationAcked {
        /// The acknowledging node.
        from: NodeId,
        /// Whether the node actually relinquished a cached copy.
        had_copy: bool,
    },
    /// A limited-pointer sharer array overflowed into broadcast mode.
    BroadcastOverflow,
    /// A stale message (ack or self-invalidation for an already-completed
    /// transaction) was ignored.
    StaleIgnored {
        /// The sender of the stale message.
        from: NodeId,
    },
    /// A sparse directory replaced a tracked entry to make room for the
    /// in-service request's block. Unlike the other events, the block
    /// concerned is the *victim*, not the processed message's block.
    EntryEvicted {
        /// The evicted block.
        block: BlockId,
        /// Invalidations sent to the victim's holders (0 if the mutation
        /// hook suppressed them).
        invalidations: u16,
    },
}

/// Result of processing one message at the directory.
#[derive(Debug, Clone, Default)]
pub struct DirStep {
    /// Protocol messages to emit after the service completes.
    pub sends: Vec<Message>,
    /// Shelved requests to re-inject into the engine (the block left its
    /// Busy state).
    pub reinject: Vec<Message>,
    /// Timing class of this service.
    pub data_service: bool,
    /// Observations made during this service, in occurrence order (see
    /// [`DirEvent`]).
    pub events: Vec<DirEvent>,
}

impl DirStep {
    fn control() -> Self {
        DirStep::default()
    }

    fn data() -> Self {
        DirStep {
            data_service: true,
            ..DirStep::default()
        }
    }
}

/// The per-block sharer representation: bit semantics depend on the
/// directory's [`DirectoryKind`] (node bits for `full`/`ptr`, cluster bits
/// for `coarse`), plus the limited-pointer broadcast flag.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Sharers {
    set: SharerSet,
    /// `ptr:I` only: the pointer array overflowed; `set` is no longer
    /// tracked and writes broadcast.
    broadcast: bool,
}

/// Stable + transient directory states for one block.
#[derive(Debug, Clone, PartialEq, Eq)]
enum DirState {
    /// Only the home copy exists.
    Idle,
    /// Read-only copies tracked by the sharer representation.
    Shared(Sharers),
    /// A writable copy at one node.
    Exclusive(NodeId),
    /// Collecting invalidation acks / writeback for an in-flight request.
    Busy(Busy),
    /// Sparse only: collecting invalidation acks for an evicted entry; the
    /// block falls back to Idle when the last holder has answered.
    Evicting {
        /// Nodes whose acknowledgement or writeback is still awaited.
        waiting: SharerSet,
    },
}

/// The in-flight transaction while Busy.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Busy {
    requester: NodeId,
    /// Grant exclusive (GetX/Upgrade) vs read-only (GetS).
    want_exclusive: bool,
    /// Reply with `UpgradeAck` (requester kept its data) instead of `DataX`.
    upgrade_reply: bool,
    /// Nodes whose acknowledgement or writeback is still awaited (always an
    /// exact node set: these are the invalidations actually sent).
    waiting: SharerSet,
    /// Verification verdict to piggyback on the eventual reply.
    verify: Option<VerifyOutcome>,
}

/// One §4 verification-mask entry: a node that self-invalidated and awaits a
/// verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MaskEntry {
    node: NodeId,
    /// The copy relinquished was exclusive (writeback) vs read-only.
    relinquished_exclusive: bool,
    /// Whether the self-invalidation was processed in a stable state —
    /// i.e. it reached the directory *before* the conflicting request
    /// (Table 4's timeliness).
    timely: bool,
}

/// Per-block directory record.
#[derive(Debug, Clone)]
struct DirBlock {
    state: DirState,
    /// DSI write-version: incremented on every exclusive grant.
    version: u32,
    /// Home copy of the data token.
    token: u64,
    /// §4 verification mask.
    mask: Vec<MaskEntry>,
    /// Requests shelved while Busy.
    pending: VecDeque<Message>,
    /// Nodes whose `InvAck` is still in flight for an invalidation that a
    /// crossing self-invalidation already answered. Such an orphaned ack
    /// must not be mistaken for the acknowledgement of a *later*
    /// invalidation of the same node (it would complete a Busy transaction
    /// while the targeted copy is still live, breaking SWMR).
    stale_acks: SharerSet,
    /// Sparse replacement recency: the directory's service tick of the last
    /// message processed for this block (inert outside `sparse:E`).
    last_use: u64,
}

impl Default for DirBlock {
    fn default() -> Self {
        DirBlock {
            state: DirState::Idle,
            version: 0,
            token: 0,
            mask: Vec::new(),
            pending: VecDeque::new(),
            stale_acks: SharerSet::new(),
            last_use: 0,
        }
    }
}

/// Counters the directory keeps for reports and invariant checks.
#[derive(Debug, Clone, Default)]
pub struct DirCounters {
    /// Invalidation messages sent to sharers/owners on behalf of requests.
    pub invalidations_sent: Counter,
    /// Invalidations acknowledged without a copy: the over-invalidation
    /// cost of an imprecise sharer representation (coarse clusters, limited
    /// -pointer broadcast) plus, rarely, self-invalidations crossing an
    /// invalidation in flight.
    pub extra_invalidations: Counter,
    /// Limited-pointer arrays that overflowed into broadcast mode.
    pub broadcast_overflows: Counter,
    /// Self-invalidations applied in a stable state (timely).
    pub self_inv_timely: Counter,
    /// Self-invalidations that arrived while the conflicting request was
    /// already in flight (late; they served as the awaited ack).
    pub self_inv_late: Counter,
    /// Stale messages ignored (acks for completed transactions etc.).
    pub stale_ignored: Counter,
    /// Sparse only: tracked entries replaced to make room for a new block.
    pub dir_evictions: Counter,
    /// Sparse only: invalidations forced by entry replacement (counted
    /// separately from request-driven `invalidations_sent`).
    pub eviction_invalidations: Counter,
}

/// Read-only snapshot of one block's sharing state (the checker/explorer
/// inspection surface; see [`Directory::view_of`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirStateView {
    /// Only the home copy exists.
    Idle,
    /// Read-only copies tracked by the sharer representation.
    Shared {
        /// The stored sharer bits (node bits for `full`/`ptr`, cluster bits
        /// for `coarse`).
        sharers: SharerSet,
        /// `ptr:I` only: the pointer array overflowed into broadcast mode.
        broadcast: bool,
    },
    /// A writable copy at one node.
    Exclusive(NodeId),
    /// Collecting invalidation acks / writeback for an in-flight request.
    Busy {
        /// The node whose request is in flight.
        requester: NodeId,
        /// Grant exclusive (GetX/Upgrade) vs read-only (GetS).
        want_exclusive: bool,
        /// Reply with `UpgradeAck` instead of `DataX`.
        upgrade_reply: bool,
        /// Nodes whose acknowledgement or writeback is still awaited.
        waiting: SharerSet,
        /// Verdict to piggyback on the eventual grant.
        verify: Option<VerifyOutcome>,
    },
    /// Sparse only: collecting invalidation acks for an evicted entry.
    Evicting {
        /// Nodes whose acknowledgement or writeback is still awaited.
        waiting: SharerSet,
    },
}

/// Read-only snapshot of one §4 verification-mask entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskEntryView {
    /// The self-invalidating node awaiting a verdict.
    pub node: NodeId,
    /// The copy relinquished was exclusive (writeback) vs read-only.
    pub relinquished_exclusive: bool,
    /// Whether the self-invalidation reached the directory in a stable state.
    pub timely: bool,
}

/// Read-only snapshot of one per-block directory record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirBlockView {
    /// The sharing state.
    pub state: DirStateView,
    /// DSI write-version (incremented on every exclusive grant).
    pub version: u32,
    /// Home copy of the data token.
    pub token: u64,
    /// §4 verification mask, in insertion order.
    pub mask: Vec<MaskEntryView>,
    /// Requests shelved while Busy, in arrival order.
    pub pending: Vec<Message>,
    /// Nodes owing an orphaned `InvAck` (their self-invalidation crossed an
    /// invalidation in flight).
    pub stale_acks: SharerSet,
}

fn view_block(rec: &DirBlock) -> DirBlockView {
    DirBlockView {
        state: match &rec.state {
            DirState::Idle => DirStateView::Idle,
            DirState::Shared(s) => DirStateView::Shared {
                sharers: s.set.clone(),
                broadcast: s.broadcast,
            },
            DirState::Exclusive(owner) => DirStateView::Exclusive(*owner),
            DirState::Busy(b) => DirStateView::Busy {
                requester: b.requester,
                want_exclusive: b.want_exclusive,
                upgrade_reply: b.upgrade_reply,
                waiting: b.waiting.clone(),
                verify: b.verify,
            },
            DirState::Evicting { waiting } => DirStateView::Evicting {
                waiting: waiting.clone(),
            },
        },
        version: rec.version,
        token: rec.token,
        mask: rec
            .mask
            .iter()
            .map(|m| MaskEntryView {
                node: m.node,
                relinquished_exclusive: m.relinquished_exclusive,
                timely: m.timely,
            })
            .collect(),
        pending: rec.pending.iter().copied().collect(),
        stale_acks: rec.stale_acks.clone(),
    }
}

// ---- representation helpers (free functions so callers can hold a mutable
// borrow of one block while reading the Copy kind/geometry) ----------------

/// The bit a node occupies in the stored set.
fn rep_bit(kind: DirectoryKind, node: NodeId) -> NodeId {
    match kind {
        DirectoryKind::Full | DirectoryKind::LimitedPtr { .. } | DirectoryKind::Sparse { .. } => {
            node
        }
        DirectoryKind::Coarse { cluster } => {
            NodeId::new((node.index() / cluster.max(1) as usize) as u16)
        }
    }
}

/// Whether the representation currently knows the exact sharer set.
fn rep_exact_now(kind: DirectoryKind, s: &Sharers) -> bool {
    match kind {
        DirectoryKind::Full | DirectoryKind::Sparse { .. } => true,
        DirectoryKind::Coarse { cluster } => cluster <= 1,
        DirectoryKind::LimitedPtr { .. } => !s.broadcast,
    }
}

/// Records `node` as a sharer; returns whether this insert overflowed a
/// limited-pointer array into broadcast mode.
fn rep_insert(kind: DirectoryKind, s: &mut Sharers, node: NodeId) -> bool {
    match kind {
        DirectoryKind::Full | DirectoryKind::Coarse { .. } | DirectoryKind::Sparse { .. } => {
            s.set.insert(rep_bit(kind, node));
            false
        }
        DirectoryKind::LimitedPtr { pointers } => {
            if s.broadcast {
                return false;
            }
            s.set.insert(node);
            if s.set.len() > pointers as usize {
                s.set.clear();
                s.broadcast = true;
                true
            } else {
                false
            }
        }
    }
}

/// Whether the representation admits `node` as a (possible) sharer.
fn rep_contains(kind: DirectoryKind, s: &Sharers, node: NodeId) -> bool {
    s.broadcast || s.set.contains(rep_bit(kind, node))
}

/// Forgets a departing sharer where the representation is exact; imprecise
/// representations (wide clusters, overflowed pointers) must keep the bit —
/// other nodes it covers may still hold copies.
fn rep_remove(kind: DirectoryKind, s: &mut Sharers, node: NodeId) {
    if rep_exact_now(kind, s) {
        s.set.remove(node);
    }
}

/// Whether the representation provably tracks no sharer at all.
fn rep_is_empty(s: &Sharers) -> bool {
    !s.broadcast && s.set.is_empty()
}

/// The sharer representation for a single fresh sharer.
fn rep_of(kind: DirectoryKind, node: NodeId) -> Sharers {
    let mut s = Sharers::default();
    rep_insert(kind, &mut s, node);
    s
}

/// The exact nodes an invalidation round must target: the representation
/// expanded to node granularity, minus the requester.
fn inv_targets(kind: DirectoryKind, total_nodes: u16, s: &Sharers, exclude: NodeId) -> SharerSet {
    let mut targets = SharerSet::new();
    match kind {
        DirectoryKind::Full | DirectoryKind::Sparse { .. } => targets = s.set.clone(),
        DirectoryKind::Coarse { cluster } => {
            let k = cluster.max(1);
            let span = crate::mutation::coarse_span(k);
            for c in &s.set {
                let base = c.index() as u16 * k;
                for node in base..(base + span).min(total_nodes) {
                    targets.insert(NodeId::new(node));
                }
            }
        }
        DirectoryKind::LimitedPtr { .. } => {
            if s.broadcast {
                for node in 0..total_nodes {
                    targets.insert(NodeId::new(node));
                }
            } else {
                targets = s.set.clone();
            }
        }
    }
    targets.remove(exclude);
    targets
}

/// A home node's directory.
///
/// # Examples
///
/// ```
/// use ltp_core::{BlockId, NodeId};
/// use ltp_dsm::{Directory, Message, MsgKind};
///
/// let home = NodeId::new(0);
/// let mut dir = Directory::new(home);
/// let b = BlockId::new(0);
/// // A cold read is served directly from home.
/// let step = dir.process(Message::new(NodeId::new(1), home, b, MsgKind::GetS));
/// assert_eq!(step.sends.len(), 1);
/// assert!(matches!(step.sends[0].kind, MsgKind::DataS { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    home: NodeId,
    kind: DirectoryKind,
    /// Machine size, needed to expand imprecise representations into
    /// invalidation targets.
    nodes: u16,
    blocks: HashMap<BlockId, DirBlock>,
    counters: DirCounters,
    /// Monotonic service tick stamped into each touched block's `last_use`
    /// (the sparse LRU clock; inert outside `sparse:E`).
    tick: u64,
}

impl Directory {
    /// Creates a full-map directory for home node `home` (any machine
    /// width — the full map never expands imprecise representations, so the
    /// node count is immaterial).
    pub fn new(home: NodeId) -> Self {
        Directory::with_kind(home, DirectoryKind::Full, u16::MAX)
    }

    /// Creates a directory with an explicit sharer organization for a
    /// `nodes`-node machine.
    ///
    /// # Panics
    ///
    /// Panics if the kind fails [`DirectoryKind::validate_for`] against
    /// `nodes`.
    pub fn with_kind(home: NodeId, kind: DirectoryKind, nodes: u16) -> Self {
        kind.validate_for(nodes)
            .expect("valid directory organization");
        Directory {
            home,
            kind,
            nodes,
            blocks: HashMap::new(),
            counters: DirCounters::default(),
            tick: 0,
        }
    }

    /// The home node this directory serves.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// The sharer organization this directory runs.
    pub fn kind(&self) -> DirectoryKind {
        self.kind
    }

    /// Statistics counters.
    pub fn counters(&self) -> &DirCounters {
        &self.counters
    }

    /// The DSI write-version of `block` (0 if never written).
    pub fn version_of(&self, block: BlockId) -> u32 {
        self.blocks.get(&block).map_or(0, |b| b.version)
    }

    /// Whether `block` is in a stable Idle state (for tests/examples).
    pub fn is_idle(&self, block: BlockId) -> bool {
        self.blocks
            .get(&block)
            .is_none_or(|b| b.state == DirState::Idle)
    }

    /// Read-only snapshot of one tracked block, if the directory has a
    /// record for it (the checker/explorer inspection surface).
    pub fn view_of(&self, block: BlockId) -> Option<DirBlockView> {
        self.blocks.get(&block).map(view_block)
    }

    /// Iterates read-only snapshots of every tracked block, in arbitrary
    /// order. Counters are deliberately excluded: two directories that agree
    /// on every view are protocol-equivalent.
    pub fn blocks_view(&self) -> impl Iterator<Item = (BlockId, DirBlockView)> + '_ {
        self.blocks.iter().map(|(&b, rec)| (b, view_block(rec)))
    }

    /// Processes one incoming message; see module docs.
    ///
    /// # Panics
    ///
    /// Panics if `msg.dst` is not this directory's home or if a cache reply
    /// kind (`DataS` etc.) is delivered to the directory.
    pub fn process(&mut self, msg: Message) -> DirStep {
        assert_eq!(msg.dst, self.home, "message routed to the wrong home");
        self.tick += 1;
        let tick = self.tick;
        self.blocks.entry(msg.block).or_default().last_use = tick;
        match msg.kind {
            MsgKind::GetS | MsgKind::GetX | MsgKind::Upgrade => self.process_request(msg),
            MsgKind::SelfInvClean => self.process_self_inv(msg, None),
            MsgKind::SelfInvDirty { token } => self.process_self_inv(msg, Some(token)),
            MsgKind::InvAck {
                had_copy,
                dirty_token,
            } => self.process_inv_ack(msg, had_copy, dirty_token),
            other => panic!("directory received non-protocol message {other:?}"),
        }
    }

    /// Resolves the verification mask against an arriving request. Returns
    /// the verdict to piggyback for the requester (if it was itself in the
    /// mask) plus zero-latency `VerifyCorrect` notifications for others.
    fn resolve_mask(
        &mut self,
        block: BlockId,
        requester: NodeId,
        write_request: bool,
    ) -> (Option<VerifyOutcome>, Vec<Message>) {
        let home = self.home;
        let entry = self.blocks.entry(block).or_default();
        let mut verify_for_requester = None;
        let mut notifications = Vec::new();
        entry.mask.retain(|m| {
            if m.node == requester {
                // The self-invalidator itself came back first: premature.
                verify_for_requester = Some(VerifyOutcome::Premature);
                false
            } else if m.relinquished_exclusive || write_request {
                // A conflicting access by another node: the relinquished copy
                // would have been invalidated anyway — correct.
                notifications.push(Message::new(
                    home,
                    m.node,
                    block,
                    MsgKind::VerifyCorrect { timely: m.timely },
                ));
                false
            } else {
                // Read-relinquisher observed by another reader: undecided.
                true
            }
        });
        (verify_for_requester, notifications)
    }

    /// Sparse replacement: if servicing a request for the untracked `block`
    /// would exceed the entry budget, evict the least-recently-used stable
    /// entry first — invalidating its holders (the block enters Evicting
    /// until they have all answered). Appends the eviction's sends/events
    /// to `step` and returns whether an eviction happened.
    ///
    /// If every tracked entry is transient (Busy/Evicting), the allocation
    /// proceeds anyway: in-flight transactions may transiently push
    /// occupancy past the budget, exactly as a hardware sparse directory
    /// holds overflow in its transaction buffers.
    fn evict_for(&mut self, block: BlockId, step: &mut DirStep) -> bool {
        let DirectoryKind::Sparse { entries } = self.kind else {
            return false;
        };
        let tracked = |state: &DirState| !matches!(state, DirState::Idle);
        if !matches!(
            self.blocks.get(&block).map(|r| &r.state),
            None | Some(DirState::Idle)
        ) {
            return false; // already tracked: no new entry needed
        }
        let occupied = self.blocks.values().filter(|r| tracked(&r.state)).count();
        if occupied < entries as usize {
            return false;
        }
        // Deterministic LRU over the stable entries (min service tick,
        // block id as the tie-break, independent of map iteration order).
        let victim = self
            .blocks
            .iter()
            .filter(|(&b, r)| {
                b != block && matches!(r.state, DirState::Shared(_) | DirState::Exclusive(_))
            })
            .min_by_key(|(&b, r)| (r.last_use, b))
            .map(|(&b, _)| b);
        let Some(victim) = victim else {
            return false;
        };
        let home = self.home;
        let rec = self.blocks.get_mut(&victim).expect("victim exists");
        // Sparse entries are exact full maps, so the holders to invalidate
        // are exactly the stored set (no exclusion: the evicted block is
        // not the requested one).
        let targets = match &rec.state {
            DirState::Shared(sharers) => sharers.set.clone(),
            DirState::Exclusive(owner) => SharerSet::from_node(*owner),
            _ => unreachable!("victims are stable"),
        };
        self.counters.dir_evictions.incr();
        if crate::mutation::fire_skip_eviction_inv() {
            // Seeded mutant: free the entry without invalidating holders,
            // leaving stale copies live in their caches.
            rec.state = DirState::Idle;
            step.events.push(DirEvent::EntryEvicted {
                block: victim,
                invalidations: 0,
            });
            return true;
        }
        for _ in 0..targets.len() {
            self.counters.eviction_invalidations.incr();
        }
        step.events.push(DirEvent::EntryEvicted {
            block: victim,
            invalidations: targets.len() as u16,
        });
        for n in &targets {
            step.sends.push(Message::new(home, n, victim, MsgKind::Inv));
        }
        rec.state = DirState::Evicting { waiting: targets };
        true
    }

    fn process_request(&mut self, msg: Message) -> DirStep {
        let block = msg.block;
        // Shelve requests for Busy/Evicting blocks (the pipelined engine
        // holds off conflicting transactions rather than NACKing).
        if matches!(
            self.blocks.entry(block).or_default().state,
            DirState::Busy(_) | DirState::Evicting { .. }
        ) {
            self.blocks
                .get_mut(&block)
                .expect("just inserted")
                .pending
                .push_back(msg);
            return DirStep::control();
        }

        let mut prelude = DirStep::control();
        self.evict_for(block, &mut prelude);

        let write_request = matches!(msg.kind, MsgKind::GetX | MsgKind::Upgrade);
        let (verify, mut notifications) = self.resolve_mask(block, msg.src, write_request);
        let home = self.home;
        let kind = self.kind;
        let total = self.nodes;
        let entry = self.blocks.get_mut(&block).expect("resolved above");

        let mut step = match (&mut entry.state, msg.kind) {
            // ---- reads ----------------------------------------------------
            (DirState::Idle, MsgKind::GetS) => {
                entry.state = DirState::Shared(rep_of(kind, msg.src));
                let mut s = DirStep::data();
                s.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::DataS {
                        version: entry.version,
                        token: entry.token,
                        verify,
                    },
                ));
                s
            }
            (DirState::Shared(sharers), MsgKind::GetS) => {
                let overflowed = rep_insert(kind, sharers, msg.src);
                let mut s = DirStep::data();
                if overflowed {
                    self.counters.broadcast_overflows.incr();
                    s.events.push(DirEvent::BroadcastOverflow);
                }
                s.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::DataS {
                        version: entry.version,
                        token: entry.token,
                        verify,
                    },
                ));
                s
            }
            (DirState::Exclusive(owner), MsgKind::GetS) => {
                // Migratory-favoring protocol (§2): a read invalidates the
                // writer's copy entirely.
                debug_assert_ne!(*owner, msg.src, "owner re-requesting its own block");
                let owner = *owner;
                entry.state = DirState::Busy(Busy {
                    requester: msg.src,
                    want_exclusive: false,
                    upgrade_reply: false,
                    waiting: SharerSet::from_node(owner),
                    verify,
                });
                self.counters.invalidations_sent.incr();
                let mut s = DirStep::control();
                s.events.push(DirEvent::InvalidationSent { to: owner });
                s.sends.push(Message::new(home, owner, block, MsgKind::Inv));
                s
            }

            // ---- writes ---------------------------------------------------
            (DirState::Idle, MsgKind::GetX | MsgKind::Upgrade) => {
                // Upgrade on Idle: the requester's copy was invalidated while
                // the upgrade was in flight; serve it as a full write miss.
                entry.version += 1;
                entry.state = DirState::Exclusive(msg.src);
                let mut s = DirStep::data();
                s.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::DataX {
                        version: entry.version,
                        token: entry.token,
                        verify,
                    },
                ));
                s
            }
            (DirState::Shared(sharers), MsgKind::Upgrade)
                if rep_exact_now(kind, sharers) && sharers.set.contains(msg.src) =>
            {
                // Only an exact representation can prove the requester still
                // holds its copy (and thus safely skip resending the data).
                if sharers.set.len() == 1 {
                    // Sole sharer upgrading: the migratory pattern.
                    entry.version += 1;
                    entry.state = DirState::Exclusive(msg.src);
                    let mut s = DirStep::control();
                    s.sends.push(Message::new(
                        home,
                        msg.src,
                        block,
                        MsgKind::UpgradeAck {
                            version: entry.version,
                            migratory: true,
                            verify,
                        },
                    ));
                    s
                } else {
                    let waiting = inv_targets(kind, total, sharers, msg.src);
                    let mut s = DirStep::control();
                    for n in &waiting {
                        self.counters.invalidations_sent.incr();
                        s.events.push(DirEvent::InvalidationSent { to: n });
                        s.sends.push(Message::new(home, n, block, MsgKind::Inv));
                    }
                    entry.state = DirState::Busy(Busy {
                        requester: msg.src,
                        want_exclusive: true,
                        upgrade_reply: true,
                        waiting,
                        verify,
                    });
                    s
                }
            }
            (DirState::Shared(sharers), MsgKind::GetX | MsgKind::Upgrade) => {
                // GetX; or an Upgrade from a node that lost its copy; or an
                // Upgrade under an imprecise representation (wide cluster,
                // overflowed pointers), which is served conservatively as a
                // full write miss — shared copies are clean, so the DataX
                // grant carries the same token an UpgradeAck would confirm.
                let waiting = inv_targets(kind, total, sharers, msg.src);
                if waiting.is_empty() {
                    entry.version += 1;
                    entry.state = DirState::Exclusive(msg.src);
                    let mut s = DirStep::data();
                    s.sends.push(Message::new(
                        home,
                        msg.src,
                        block,
                        MsgKind::DataX {
                            version: entry.version,
                            token: entry.token,
                            verify,
                        },
                    ));
                    s
                } else {
                    let mut s = DirStep::control();
                    for n in &waiting {
                        self.counters.invalidations_sent.incr();
                        s.events.push(DirEvent::InvalidationSent { to: n });
                        s.sends.push(Message::new(home, n, block, MsgKind::Inv));
                    }
                    entry.state = DirState::Busy(Busy {
                        requester: msg.src,
                        want_exclusive: true,
                        upgrade_reply: false,
                        waiting,
                        verify,
                    });
                    s
                }
            }
            (DirState::Exclusive(owner), MsgKind::GetX | MsgKind::Upgrade) => {
                debug_assert_ne!(*owner, msg.src, "owner re-requesting exclusively");
                let owner = *owner;
                entry.state = DirState::Busy(Busy {
                    requester: msg.src,
                    want_exclusive: true,
                    upgrade_reply: false,
                    waiting: SharerSet::from_node(owner),
                    verify,
                });
                self.counters.invalidations_sent.incr();
                let mut s = DirStep::control();
                s.events.push(DirEvent::InvalidationSent { to: owner });
                s.sends.push(Message::new(home, owner, block, MsgKind::Inv));
                s
            }
            (DirState::Busy(_) | DirState::Evicting { .. }, _) => {
                unreachable!("busy/evicting handled above")
            }
            (state, kind) => unreachable!("unhandled request {kind:?} in {state:?}"),
        };
        step.sends.append(&mut notifications);
        // An eviction prelude's invalidations/events precede the request's
        // own traffic within the same service.
        prelude.sends.append(&mut step.sends);
        prelude.events.append(&mut step.events);
        prelude.reinject.append(&mut step.reinject);
        prelude.data_service |= step.data_service;
        prelude
    }

    fn process_self_inv(&mut self, msg: Message, writeback: Option<u64>) -> DirStep {
        let block = msg.block;
        let home = self.home;
        let kind = self.kind;
        let entry = self.blocks.entry(block).or_default();
        match &mut entry.state {
            DirState::Shared(sharers)
                if writeback.is_none() && rep_contains(kind, sharers, msg.src) =>
            {
                rep_remove(kind, sharers, msg.src);
                if rep_is_empty(sharers) {
                    entry.state = DirState::Idle;
                }
                entry.mask.push(MaskEntry {
                    node: msg.src,
                    relinquished_exclusive: false,
                    timely: true,
                });
                self.counters.self_inv_timely.incr();
                DirStep::control()
            }
            DirState::Exclusive(owner) if *owner == msg.src => {
                let token = writeback.expect("exclusive owner must write back");
                debug_assert!(token >= entry.token, "token regressed on writeback");
                entry.token = token;
                entry.state = DirState::Idle;
                entry.mask.push(MaskEntry {
                    node: msg.src,
                    relinquished_exclusive: true,
                    timely: true,
                });
                self.counters.self_inv_timely.incr();
                DirStep::data()
            }
            DirState::Busy(busy) if busy.waiting.contains(msg.src) => {
                // The self-invalidation crossed the Inv we sent: it serves as
                // the awaited acknowledgement, but it is *late* — the
                // conflicting request was already being serviced.
                busy.waiting.remove(msg.src);
                let requester = busy.requester;
                let relinq_ex = writeback.is_some();
                // The Inv we sent will still be acknowledged (without a
                // copy); remember to discard that orphaned ack.
                entry.stale_acks.insert(msg.src);
                if let Some(token) = writeback {
                    debug_assert!(token >= entry.token, "token regressed on writeback");
                    entry.token = token;
                }
                self.counters.self_inv_late.incr();
                let mut step = if relinq_ex {
                    DirStep::data()
                } else {
                    DirStep::control()
                };
                // Verified immediately: the in-service request is the
                // conflicting access. (It cannot be the self-invalidator
                // itself — a node with a cached copy does not request.)
                debug_assert_ne!(requester, msg.src);
                step.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::VerifyCorrect { timely: false },
                ));
                self.finish_busy_if_ready(block, &mut step);
                step
            }
            DirState::Evicting { waiting } if waiting.contains(msg.src) => {
                // The self-invalidation crossed an eviction's Inv: same late
                // -ack treatment as the Busy case, but the entry just falls
                // back to Idle once the last holder has answered.
                waiting.remove(msg.src);
                let relinq_ex = writeback.is_some();
                entry.stale_acks.insert(msg.src);
                if let Some(token) = writeback {
                    debug_assert!(token >= entry.token, "token regressed on writeback");
                    entry.token = token;
                }
                self.counters.self_inv_late.incr();
                let mut step = if relinq_ex {
                    DirStep::data()
                } else {
                    DirStep::control()
                };
                step.sends.push(Message::new(
                    home,
                    msg.src,
                    block,
                    MsgKind::VerifyCorrect { timely: false },
                ));
                self.finish_evicting_if_ready(block, &mut step);
                step
            }
            _ => {
                // Stale: the copy was already invalidated by a crossing Inv.
                self.counters.stale_ignored.incr();
                let mut step = DirStep::control();
                step.events.push(DirEvent::StaleIgnored { from: msg.src });
                step
            }
        }
    }

    fn process_inv_ack(
        &mut self,
        msg: Message,
        had_copy: bool,
        dirty_token: Option<u64>,
    ) -> DirStep {
        let block = msg.block;
        let entry = self.blocks.entry(block).or_default();
        if entry.stale_acks.remove(msg.src) {
            // Orphaned ack for an invalidation a crossing self-invalidation
            // already answered; the node's copy was long gone.
            debug_assert!(!had_copy, "orphaned ack cannot carry a copy");
            self.counters.stale_ignored.incr();
            let mut step = DirStep::control();
            step.events.push(DirEvent::StaleIgnored { from: msg.src });
            return step;
        }
        match &mut entry.state {
            DirState::Busy(busy) if busy.waiting.contains(msg.src) => {
                busy.waiting.remove(msg.src);
                if !had_copy {
                    // The invalidated node held nothing: an over-invalidation
                    // (imprecise sharer representation) or a crossing
                    // self-invalidation.
                    self.counters.extra_invalidations.incr();
                }
                if let Some(token) = dirty_token {
                    debug_assert!(token >= entry.token, "token regressed on writeback");
                    entry.token = token;
                }
                let mut step = if dirty_token.is_some() {
                    DirStep::data()
                } else {
                    DirStep::control()
                };
                step.events.push(DirEvent::InvalidationAcked {
                    from: msg.src,
                    had_copy,
                });
                self.finish_busy_if_ready(block, &mut step);
                step
            }
            DirState::Evicting { waiting } if waiting.contains(msg.src) => {
                waiting.remove(msg.src);
                if !had_copy {
                    self.counters.extra_invalidations.incr();
                }
                if let Some(token) = dirty_token {
                    debug_assert!(token >= entry.token, "token regressed on writeback");
                    entry.token = token;
                }
                let mut step = if dirty_token.is_some() {
                    DirStep::data()
                } else {
                    DirStep::control()
                };
                step.events.push(DirEvent::InvalidationAcked {
                    from: msg.src,
                    had_copy,
                });
                self.finish_evicting_if_ready(block, &mut step);
                step
            }
            _ => {
                // An ack for a transaction a self-invalidation already
                // completed.
                self.counters.stale_ignored.incr();
                let mut step = DirStep::control();
                step.events.push(DirEvent::StaleIgnored { from: msg.src });
                step
            }
        }
    }

    /// Completes an eviction once every holder has answered: the entry
    /// falls back to Idle and shelved requests re-enter the engine.
    fn finish_evicting_if_ready(&mut self, block: BlockId, step: &mut DirStep) {
        let entry = self.blocks.get_mut(&block).expect("evicting block exists");
        let DirState::Evicting { waiting } = &entry.state else {
            return;
        };
        if !waiting.is_empty() {
            return;
        }
        entry.state = DirState::Idle;
        step.reinject.extend(entry.pending.drain(..));
    }

    /// Completes the Busy transaction once every awaited ack arrived:
    /// sends the grant and re-injects shelved requests.
    fn finish_busy_if_ready(&mut self, block: BlockId, step: &mut DirStep) {
        let home = self.home;
        let kind = self.kind;
        let entry = self.blocks.get_mut(&block).expect("busy block exists");
        let DirState::Busy(busy) = &entry.state else {
            return;
        };
        if !busy.waiting.is_empty() {
            return;
        }
        let busy = busy.clone();
        if busy.want_exclusive {
            entry.version += 1;
            entry.state = DirState::Exclusive(busy.requester);
            let reply = if busy.upgrade_reply {
                MsgKind::UpgradeAck {
                    version: entry.version,
                    migratory: false,
                    verify: busy.verify,
                }
            } else {
                MsgKind::DataX {
                    version: entry.version,
                    token: entry.token,
                    verify: busy.verify,
                }
            };
            step.sends
                .push(Message::new(home, busy.requester, block, reply));
        } else {
            entry.state = DirState::Shared(rep_of(kind, busy.requester));
            step.sends.push(Message::new(
                home,
                busy.requester,
                block,
                MsgKind::DataS {
                    version: entry.version,
                    token: entry.token,
                    verify: busy.verify,
                },
            ));
        }
        // The reply moves data (except pure upgrade acks).
        step.data_service |= !busy.upgrade_reply;
        step.reinject.extend(entry.pending.drain(..));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u16) -> NodeId {
        NodeId::new(i)
    }

    fn b(i: u64) -> BlockId {
        BlockId::new(i)
    }

    fn msg(src: u16, block: u64, kind: MsgKind) -> Message {
        Message::new(n(src), n(0), b(block), kind)
    }

    fn dir() -> Directory {
        Directory::new(n(0))
    }

    fn ack(had_copy: bool) -> MsgKind {
        MsgKind::InvAck {
            had_copy,
            dirty_token: None,
        }
    }

    #[test]
    fn cold_read_served_from_home() {
        let mut d = dir();
        let step = d.process(msg(1, 0, MsgKind::GetS));
        assert!(step.data_service);
        assert_eq!(step.sends.len(), 1);
        assert_eq!(step.sends[0].dst, n(1));
        assert!(matches!(
            step.sends[0].kind,
            MsgKind::DataS {
                version: 0,
                token: 0,
                verify: None
            }
        ));
    }

    #[test]
    fn write_increments_version() {
        let mut d = dir();
        let step = d.process(msg(1, 0, MsgKind::GetX));
        assert!(matches!(
            step.sends[0].kind,
            MsgKind::DataX { version: 1, .. }
        ));
        assert_eq!(d.version_of(b(0)), 1);
    }

    #[test]
    fn read_to_exclusive_invalidates_owner_then_replies() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetX));
        // P2 reads: owner P1 must be invalidated first.
        let step = d.process(msg(2, 0, MsgKind::GetS));
        assert_eq!(step.sends.len(), 1);
        assert_eq!(step.sends[0].dst, n(1));
        assert!(matches!(step.sends[0].kind, MsgKind::Inv));
        // P1's writeback completes the transaction.
        let step = d.process(msg(
            1,
            0,
            MsgKind::InvAck {
                had_copy: true,
                dirty_token: Some(5),
            },
        ));
        assert!(step.data_service);
        let reply = step.sends.last().unwrap();
        assert_eq!(reply.dst, n(2));
        assert!(matches!(reply.kind, MsgKind::DataS { token: 5, .. }));
        assert_eq!(d.counters().invalidations_sent.count(), 1);
    }

    #[test]
    fn write_to_shared_invalidates_all_readers() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(2, 0, MsgKind::GetS));
        d.process(msg(3, 0, MsgKind::GetS));
        let step = d.process(msg(4, 0, MsgKind::GetX));
        let inv_dsts: Vec<NodeId> = step.sends.iter().map(|m| m.dst).collect();
        assert_eq!(inv_dsts, vec![n(1), n(2), n(3)]);
        // Acks trickle in; the grant goes out with the last one.
        for src in [1, 2, 3] {
            let step = d.process(msg(src, 0, ack(true)));
            if src == 3 {
                assert!(matches!(
                    step.sends.last().unwrap().kind,
                    MsgKind::DataX { version: 1, .. }
                ));
            } else {
                assert!(step.sends.is_empty());
            }
        }
    }

    #[test]
    fn sole_sharer_upgrade_is_migratory() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        let step = d.process(msg(1, 0, MsgKind::Upgrade));
        assert!(matches!(
            step.sends[0].kind,
            MsgKind::UpgradeAck {
                migratory: true,
                version: 1,
                ..
            }
        ));
    }

    #[test]
    fn multi_sharer_upgrade_is_not_migratory() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(2, 0, MsgKind::GetS));
        let step = d.process(msg(1, 0, MsgKind::Upgrade));
        assert!(matches!(step.sends[0].kind, MsgKind::Inv));
        assert_eq!(step.sends[0].dst, n(2));
        let step = d.process(msg(2, 0, ack(true)));
        assert!(matches!(
            step.sends.last().unwrap().kind,
            MsgKind::UpgradeAck {
                migratory: false,
                ..
            }
        ));
    }

    #[test]
    fn busy_block_shelves_requests_and_reinjects() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetX));
        d.process(msg(2, 0, MsgKind::GetS)); // Busy now
        let step = d.process(msg(3, 0, MsgKind::GetS)); // shelved
        assert!(step.sends.is_empty());
        let step = d.process(msg(
            1,
            0,
            MsgKind::InvAck {
                had_copy: true,
                dirty_token: Some(1),
            },
        ));
        assert_eq!(step.reinject.len(), 1);
        assert_eq!(step.reinject[0].src, n(3));
    }

    #[test]
    fn self_inv_clean_clears_sharer_and_masks() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        let step = d.process(msg(1, 0, MsgKind::SelfInvClean));
        assert!(step.sends.is_empty());
        assert!(d.is_idle(b(0)));
        assert_eq!(d.counters().self_inv_timely.count(), 1);
        // A subsequent writer finds Idle: 2-hop grant + verification.
        let step = d.process(msg(2, 0, MsgKind::GetX));
        assert_eq!(step.sends.len(), 2);
        assert!(matches!(step.sends[0].kind, MsgKind::DataX { .. }));
        assert!(matches!(
            step.sends[1].kind,
            MsgKind::VerifyCorrect { timely: true }
        ));
        assert_eq!(step.sends[1].dst, n(1));
    }

    #[test]
    fn self_inv_dirty_writes_back_and_idles() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetX));
        let step = d.process(msg(1, 0, MsgKind::SelfInvDirty { token: 9 }));
        assert!(step.data_service);
        assert!(d.is_idle(b(0)));
        // The next reader gets the written-back data in 2 hops.
        let step = d.process(msg(2, 0, MsgKind::GetS));
        assert!(matches!(
            step.sends[0].kind,
            MsgKind::DataS { token: 9, .. }
        ));
        // …and the self-invalidator learns it was correct & timely.
        assert!(matches!(
            step.sends[1].kind,
            MsgKind::VerifyCorrect { timely: true }
        ));
    }

    #[test]
    fn premature_self_inv_detected_on_reuse() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetX));
        d.process(msg(1, 0, MsgKind::SelfInvDirty { token: 2 }));
        // The same node comes back before anyone else: premature.
        let step = d.process(msg(1, 0, MsgKind::GetX));
        assert!(matches!(
            step.sends[0].kind,
            MsgKind::DataX {
                verify: Some(VerifyOutcome::Premature),
                token: 2,
                ..
            }
        ));
    }

    #[test]
    fn read_relinquisher_confirmed_only_by_writer() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(2, 0, MsgKind::GetS));
        d.process(msg(1, 0, MsgKind::SelfInvClean));
        // Another reader does not resolve the verdict…
        let step = d.process(msg(3, 0, MsgKind::GetS));
        assert_eq!(step.sends.len(), 1, "no verification yet");
        // …a writer does. P2 and P3 still hold copies and get Invs; P1's
        // self-invalidation is confirmed.
        let step = d.process(msg(4, 0, MsgKind::GetX));
        let verify: Vec<&Message> = step
            .sends
            .iter()
            .filter(|m| matches!(m.kind, MsgKind::VerifyCorrect { .. }))
            .collect();
        assert_eq!(verify.len(), 1);
        assert_eq!(verify[0].dst, n(1));
        let invs = step
            .sends
            .iter()
            .filter(|m| matches!(m.kind, MsgKind::Inv))
            .count();
        assert_eq!(invs, 2);
    }

    #[test]
    fn self_inv_crossing_inv_counts_as_late_ack() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetX));
        // P2 wants the block: Inv sent to P1.
        d.process(msg(2, 0, MsgKind::GetS));
        // P1's self-invalidation was already in flight: it arrives instead of
        // the InvAck.
        let step = d.process(msg(1, 0, MsgKind::SelfInvDirty { token: 3 }));
        // It completes the transaction…
        let reply = step
            .sends
            .iter()
            .find(|m| matches!(m.kind, MsgKind::DataS { .. }))
            .expect("grant sent");
        assert_eq!(reply.dst, n(2));
        // …but is verified correct-late.
        assert!(step
            .sends
            .iter()
            .any(|m| matches!(m.kind, MsgKind::VerifyCorrect { timely: false }) && m.dst == n(1)));
        assert_eq!(d.counters().self_inv_late.count(), 1);
        // P1's InvAck for the crossed Inv arrives afterwards: ignored.
        let step = d.process(msg(1, 0, ack(false)));
        assert!(step.sends.is_empty());
        assert_eq!(d.counters().stale_ignored.count(), 1);
    }

    #[test]
    fn stale_self_inv_after_invalidation_is_ignored() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(1, 0, MsgKind::SelfInvClean));
        // A second (buggy/duplicate) self-inv is ignored.
        let step = d.process(msg(1, 0, MsgKind::SelfInvClean));
        assert!(step.sends.is_empty());
        assert_eq!(d.counters().stale_ignored.count(), 1);
    }

    #[test]
    fn upgrade_race_served_as_write_miss() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(2, 0, MsgKind::GetX));
        d.process(msg(1, 0, ack(true)));
        // P1 lost its copy to P2; P1's Upgrade (sent before the Inv arrived)
        // shows up now that the block is Exclusive(P2): treat as GetX.
        let step = d.process(msg(1, 0, MsgKind::Upgrade));
        assert!(matches!(step.sends[0].kind, MsgKind::Inv));
        assert_eq!(step.sends[0].dst, n(2));
        let step = d.process(msg(
            2,
            0,
            MsgKind::InvAck {
                had_copy: true,
                dirty_token: Some(4),
            },
        ));
        let grant = step.sends.last().unwrap();
        assert_eq!(grant.dst, n(1));
        assert!(matches!(grant.kind, MsgKind::DataX { token: 4, .. }));
    }

    #[test]
    fn token_flows_through_write_chain() {
        let mut d = dir();
        d.process(msg(1, 0, MsgKind::GetX)); // P1 writes (token 1 at P1)
        d.process(msg(2, 0, MsgKind::GetX)); // P2 wants it
        let step = d.process(msg(
            1,
            0,
            MsgKind::InvAck {
                had_copy: true,
                dirty_token: Some(1),
            },
        ));
        assert!(
            matches!(
                step.sends.last().unwrap().kind,
                MsgKind::DataX { token: 1, .. }
            ),
            "P2 must observe P1's write"
        );
    }

    #[test]
    #[should_panic(expected = "wrong home")]
    fn misrouted_message_panics() {
        let mut d = dir();
        d.process(Message::new(n(1), n(5), b(0), MsgKind::GetS));
    }

    // ---- coarse-vector organization --------------------------------------

    fn coarse(cluster: u16, nodes: u16) -> Directory {
        Directory::with_kind(n(0), DirectoryKind::Coarse { cluster }, nodes)
    }

    fn ptr(pointers: u16, nodes: u16) -> Directory {
        Directory::with_kind(n(0), DirectoryKind::LimitedPtr { pointers }, nodes)
    }

    #[test]
    fn coarse_write_broadcasts_to_whole_clusters() {
        let mut d = coarse(2, 6);
        d.process(msg(1, 0, MsgKind::GetS)); // cluster {0,1}
        d.process(msg(3, 0, MsgKind::GetS)); // cluster {2,3}
        let step = d.process(msg(5, 0, MsgKind::GetX));
        let inv_dsts: Vec<NodeId> = step.sends.iter().map(|m| m.dst).collect();
        assert_eq!(inv_dsts, vec![n(0), n(1), n(2), n(3)], "whole clusters");
        // Non-holders ack without a copy: counted as extra invalidations.
        for (src, had) in [(0, false), (1, true), (2, false), (3, true)] {
            let step = d.process(msg(src, 0, ack(had)));
            if src == 3 {
                assert!(matches!(
                    step.sends.last().unwrap().kind,
                    MsgKind::DataX { .. }
                ));
            }
        }
        assert_eq!(d.counters().extra_invalidations.count(), 2);
        assert_eq!(d.counters().invalidations_sent.count(), 4);
    }

    #[test]
    fn coarse_self_inv_cannot_clear_a_cluster_bit() {
        let mut d = coarse(2, 4);
        d.process(msg(1, 0, MsgKind::GetS));
        let step = d.process(msg(1, 0, MsgKind::SelfInvClean));
        assert!(step.sends.is_empty());
        assert!(!d.is_idle(b(0)), "cluster bit must stay set");
        // The next writer invalidates the stale cluster {0,1}; the
        // self-invalidator is verified correct along the way.
        let step = d.process(msg(2, 0, MsgKind::GetX));
        let invs: Vec<NodeId> = step
            .sends
            .iter()
            .filter(|m| matches!(m.kind, MsgKind::Inv))
            .map(|m| m.dst)
            .collect();
        assert_eq!(invs, vec![n(0), n(1)]);
        assert!(step
            .sends
            .iter()
            .any(|m| matches!(m.kind, MsgKind::VerifyCorrect { timely: true }) && m.dst == n(1)));
        d.process(msg(0, 0, ack(false)));
        let step = d.process(msg(1, 0, ack(false)));
        assert!(matches!(
            step.sends.last().unwrap().kind,
            MsgKind::DataX { .. }
        ));
        assert_eq!(d.counters().extra_invalidations.count(), 2);
    }

    #[test]
    fn coarse_upgrade_is_served_as_a_write_miss() {
        // Cluster width 2: the representation cannot prove P1 is the sole
        // sharer, so even a genuine sole-sharer upgrade must invalidate the
        // cluster and reply with data.
        let mut d = coarse(2, 4);
        d.process(msg(1, 0, MsgKind::GetS));
        let step = d.process(msg(1, 0, MsgKind::Upgrade));
        let invs: Vec<NodeId> = step
            .sends
            .iter()
            .filter(|m| matches!(m.kind, MsgKind::Inv))
            .map(|m| m.dst)
            .collect();
        assert_eq!(invs, vec![n(0)], "cluster partner invalidated, not P1");
        let step = d.process(msg(0, 0, ack(false)));
        assert!(
            matches!(step.sends.last().unwrap().kind, MsgKind::DataX { .. }),
            "imprecise representations grant data, never UpgradeAck"
        );
    }

    #[test]
    fn coarse_cluster_1_behaves_like_full_map() {
        let mut full = dir();
        let mut c1 = coarse(1, 8);
        for d in [&mut full, &mut c1] {
            d.process(msg(1, 0, MsgKind::GetS));
            d.process(msg(2, 0, MsgKind::GetS));
            let step = d.process(msg(1, 0, MsgKind::Upgrade));
            assert_eq!(step.sends.len(), 1);
            assert_eq!(step.sends[0].dst, n(2));
            let step = d.process(msg(2, 0, ack(true)));
            assert!(matches!(
                step.sends.last().unwrap().kind,
                MsgKind::UpgradeAck {
                    migratory: false,
                    ..
                }
            ));
            assert_eq!(d.counters().extra_invalidations.count(), 0);
        }
    }

    // ---- limited-pointer organization ------------------------------------

    #[test]
    fn ptr_exact_fit_matches_full_map() {
        let mut d = ptr(2, 8);
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(2, 0, MsgKind::GetS));
        let step = d.process(msg(3, 0, MsgKind::GetX));
        let inv_dsts: Vec<NodeId> = step.sends.iter().map(|m| m.dst).collect();
        assert_eq!(inv_dsts, vec![n(1), n(2)], "exact pointers, no broadcast");
        assert_eq!(d.counters().broadcast_overflows.count(), 0);
        d.process(msg(1, 0, ack(true)));
        d.process(msg(2, 0, ack(true)));
        assert_eq!(d.counters().extra_invalidations.count(), 0);
    }

    #[test]
    fn ptr_overflow_broadcasts_on_write() {
        let mut d = ptr(2, 5);
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(2, 0, MsgKind::GetS));
        d.process(msg(3, 0, MsgKind::GetS)); // third sharer: overflow
        assert_eq!(d.counters().broadcast_overflows.count(), 1);
        let step = d.process(msg(4, 0, MsgKind::GetX));
        let inv_dsts: Vec<NodeId> = step.sends.iter().map(|m| m.dst).collect();
        assert_eq!(
            inv_dsts,
            vec![n(0), n(1), n(2), n(3)],
            "broadcast to everyone but the requester"
        );
        for (src, had) in [(0, false), (1, true), (2, true), (3, true)] {
            d.process(msg(src, 0, ack(had)));
        }
        assert_eq!(d.counters().extra_invalidations.count(), 1, "only P0");
    }

    #[test]
    fn ptr_exact_self_inv_frees_a_pointer() {
        let mut d = ptr(1, 4);
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(1, 0, MsgKind::SelfInvClean));
        assert!(d.is_idle(b(0)), "the only pointer was removed");
        // A new sharer reuses the freed pointer without overflow.
        d.process(msg(2, 0, MsgKind::GetS));
        assert_eq!(d.counters().broadcast_overflows.count(), 0);
    }

    #[test]
    fn ptr_overflowed_upgrade_is_served_as_a_write_miss() {
        let mut d = ptr(1, 3);
        d.process(msg(1, 0, MsgKind::GetS));
        d.process(msg(2, 0, MsgKind::GetS)); // overflow at the second sharer
        assert_eq!(d.counters().broadcast_overflows.count(), 1);
        let step = d.process(msg(1, 0, MsgKind::Upgrade));
        let invs: Vec<NodeId> = step
            .sends
            .iter()
            .filter(|m| matches!(m.kind, MsgKind::Inv))
            .map(|m| m.dst)
            .collect();
        assert_eq!(invs, vec![n(0), n(2)], "broadcast minus the requester");
        d.process(msg(0, 0, ack(false)));
        let step = d.process(msg(2, 0, ack(true)));
        assert!(matches!(
            step.sends.last().unwrap().kind,
            MsgKind::DataX { .. }
        ));
    }
}
