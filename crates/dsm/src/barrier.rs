//! Combining-tree barrier bookkeeping.
//!
//! The seed simulator tracked global barriers with one central wait-set: a
//! flat list of arrived nodes compared against the live population after
//! every record. That is faithful to a small machine, but a 4096-node
//! barrier funnelling every arrival through one counter is exactly the
//! hot-spot combining trees were invented to avoid (Yew, Tzeng & Lawrie),
//! and the flat scan costs O(n) per release. This module replaces the
//! wait-set with a software combining tree of configurable fan-in: leaves
//! are processors, each internal node counts arrivals from its subtree, and
//! a subtree propagates one combined arrival to its parent when it
//! completes. Arrival cost is O(log_f n); a release resets only the
//! O(n/(f-1)) internal counters.
//!
//! Timing is unchanged by design: the tree is *bookkeeping* folded at shard
//! window boundaries, and releases are still scheduled on the window grid
//! (the boundary cycle `end`), which is what keeps sharded runs
//! bit-identical to serial runs — and to the pre-tree central wait-set.
//!
//! Population shrink: a processor that finishes its program permanently
//! [`retire`](CombiningTree::retire)s its leaf. Retiring decrements the
//! expected count along the leaf's path; an empty subtree detaches from its
//! parent, and a retire that makes a partially-arrived subtree complete
//! propagates upward exactly like an arrival (a finish can be what releases
//! a barrier).

/// One internal node of the combining tree.
///
/// `expected` is the number of *live* children (children whose subtree
/// still contains at least one unfinished leaf); `arrived` counts children
/// whose subtrees have fully arrived this episode. Within one episode a
/// leaf either arrives or retires — a waiting processor cannot finish — so
/// `arrived` never exceeds `expected`.
#[derive(Debug, Clone, Copy, Default)]
struct TreeNode {
    arrived: u32,
    expected: u32,
}

/// A software combining tree over `leaves` processors with fan-in `fanin`.
///
/// One *episode* is one barrier: leaves [`arrive`](CombiningTree::arrive)
/// until the root completes (the call returns `true`), after which
/// [`reset_episode`](CombiningTree::reset_episode) re-arms the counters for
/// the next barrier. Retirement is permanent and spans episodes.
#[derive(Debug)]
pub struct CombiningTree {
    fanin: usize,
    /// `levels[0]` groups leaves; each higher level groups the one below;
    /// the last level is the single root.
    levels: Vec<Vec<TreeNode>>,
    live: u32,
}

impl CombiningTree {
    /// Builds the tree for `leaves` processors with the given fan-in
    /// (at least 2; [`SystemConfig`](crate::SystemConfig) enforces this at
    /// configuration time, this constructor enforces it at the API edge).
    pub fn new(leaves: u16, fanin: u16) -> Self {
        assert!(fanin >= 2, "combining-tree fan-in must be at least 2");
        assert!(leaves >= 1, "a barrier needs at least one processor");
        let fanin = usize::from(fanin);
        let mut levels = Vec::new();
        let mut width = usize::from(leaves);
        loop {
            let groups = width.div_ceil(fanin);
            levels.push(
                (0..groups)
                    .map(|g| TreeNode {
                        arrived: 0,
                        expected: (width - g * fanin).min(fanin) as u32,
                    })
                    .collect(),
            );
            if groups == 1 {
                break;
            }
            width = groups;
        }
        CombiningTree {
            fanin,
            levels,
            live: u32::from(leaves),
        }
    }

    /// Unfinished processors still participating in barriers.
    pub fn live(&self) -> u32 {
        self.live
    }

    /// Tree height (number of counter levels): `ceil(log_f leaves)`, min 1.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Records `leaf`'s arrival at the current barrier. Returns `true` when
    /// this arrival completes the root — every live leaf has arrived.
    pub fn arrive(&mut self, leaf: u16) -> bool {
        let idx = usize::from(leaf) / self.fanin;
        let node = &mut self.levels[0][idx];
        debug_assert!(node.arrived < node.expected, "leaf arrived twice");
        node.arrived += 1;
        if node.arrived < node.expected {
            return false;
        }
        self.propagate_from(0, idx)
    }

    /// Permanently removes `leaf` (its processor finished). Returns `true`
    /// when the shrink completes a partially-arrived barrier — the callers'
    /// job is to ignore that signal when no barrier is collecting.
    pub fn retire(&mut self, leaf: u16) -> bool {
        debug_assert!(self.live > 0, "retire on an empty tree");
        self.live -= 1;
        let mut idx = usize::from(leaf);
        for lvl in 0..self.levels.len() {
            idx /= self.fanin;
            let node = &mut self.levels[lvl][idx];
            debug_assert!(node.expected > 0, "retire under an empty subtree");
            node.expected -= 1;
            if node.expected == 0 {
                // The whole subtree is finished: detach it from its parent
                // (the next loop iteration decrements the parent's expected
                // count). `arrived` must be 0 here — an arrived leaf is
                // waiting and cannot finish.
                debug_assert_eq!(node.arrived, 0, "detaching an arrived subtree");
                continue;
            }
            if node.arrived == node.expected {
                // The shrink completed this subtree: the waiters above no
                // longer wait on anything below, so propagate the combined
                // arrival upward.
                return self.propagate_from(lvl, idx);
            }
            return false;
        }
        // Every leaf retired: the machine is empty, nothing to release.
        false
    }

    /// Re-arms every counter for the next barrier. Expected counts (the
    /// live population structure) persist.
    pub fn reset_episode(&mut self) {
        for level in &mut self.levels {
            for node in level {
                node.arrived = 0;
            }
        }
    }

    /// Propagates the completion of subtree (`lvl`, `idx`) toward the root.
    /// Returns `true` when the root itself completes.
    fn propagate_from(&mut self, mut lvl: usize, mut idx: usize) -> bool {
        loop {
            if lvl + 1 == self.levels.len() {
                return true;
            }
            lvl += 1;
            idx /= self.fanin;
            let node = &mut self.levels[lvl][idx];
            node.arrived += 1;
            debug_assert!(node.arrived <= node.expected, "over-arrived subtree");
            if node.arrived < node.expected {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives `order` arrivals and asserts only the last completes.
    fn run_episode(tree: &mut CombiningTree, order: &[u16]) {
        for (i, &leaf) in order.iter().enumerate() {
            let done = tree.arrive(leaf);
            assert_eq!(
                done,
                i + 1 == order.len(),
                "arrival {i} of {} misfired",
                order.len()
            );
        }
        tree.reset_episode();
    }

    #[test]
    fn completes_only_on_the_last_arrival() {
        for n in [1u16, 2, 3, 4, 5, 16, 17, 63, 64, 65, 257] {
            for f in [2u16, 3, 4, 8] {
                let mut tree = CombiningTree::new(n, f);
                let order: Vec<u16> = (0..n).collect();
                run_episode(&mut tree, &order);
                // A second episode on the re-armed counters.
                let reversed: Vec<u16> = (0..n).rev().collect();
                run_episode(&mut tree, &reversed);
            }
        }
    }

    #[test]
    fn depth_is_logarithmic() {
        assert_eq!(CombiningTree::new(1, 4).depth(), 1);
        assert_eq!(CombiningTree::new(4, 4).depth(), 1);
        assert_eq!(CombiningTree::new(5, 4).depth(), 2);
        assert_eq!(CombiningTree::new(16, 4).depth(), 2);
        assert_eq!(CombiningTree::new(17, 4).depth(), 3);
        assert_eq!(CombiningTree::new(4096, 4).depth(), 6);
        assert_eq!(CombiningTree::new(4096, 2).depth(), 12);
    }

    #[test]
    fn a_finish_can_release_the_barrier() {
        // 6 leaves, fan-in 2: leaves 0..4 arrive, then 4 and 5 finish —
        // the second retire must complete the episode.
        let mut tree = CombiningTree::new(6, 2);
        for leaf in 0..4 {
            assert!(!tree.arrive(leaf));
        }
        assert!(!tree.retire(4));
        assert!(tree.retire(5));
        assert_eq!(tree.live(), 4);
        tree.reset_episode();
        // The shrunken population still barriers correctly.
        run_episode(&mut tree, &[3, 1, 0, 2]);
    }

    #[test]
    fn retired_subtrees_detach() {
        // Fan-in 2 over 8 leaves: retire an entire half of the machine,
        // then barrier with the surviving half.
        let mut tree = CombiningTree::new(8, 2);
        for leaf in 4..8 {
            assert!(!tree.retire(leaf));
        }
        assert_eq!(tree.live(), 4);
        run_episode(&mut tree, &[0, 1, 2, 3]);
        run_episode(&mut tree, &[3, 2, 1, 0]);
    }

    #[test]
    fn single_survivor_self_releases() {
        let mut tree = CombiningTree::new(3, 4);
        assert!(!tree.retire(0));
        assert!(!tree.retire(2));
        assert!(tree.arrive(1));
        tree.reset_episode();
        assert!(tree.arrive(1));
    }

    #[test]
    fn retiring_the_last_leaf_is_not_a_release() {
        let mut tree = CombiningTree::new(2, 2);
        assert!(!tree.retire(0));
        assert!(!tree.retire(1), "an empty machine releases nothing");
        assert_eq!(tree.live(), 0);
    }

    #[test]
    #[should_panic(expected = "fan-in must be at least 2")]
    fn fanin_below_two_is_rejected() {
        let _ = CombiningTree::new(8, 1);
    }
}
