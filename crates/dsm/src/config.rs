//! System configuration (paper Table 1).
//!
//! [`SystemConfig`] gathers every timing and geometry parameter of the
//! simulated CC-NUMA machine. [`SystemConfig::isca00`] reproduces Table 1 of
//! the paper:
//!
//! | parameter | value |
//! |---|---|
//! | nodes | 32 |
//! | processor speed | 600 MHz |
//! | cache block size | 32 bytes |
//! | local memory / network-cache access | 104 cycles |
//! | network latency | 80 cycles |
//! | round-trip miss latency | ≈416 cycles |
//! | remote-to-local access ratio | ≈4 |
//!
//! The builder validates its inputs ([C-VALIDATE]) and the defaults decompose
//! the 416-cycle round trip as: NI serialization (8) + network (80) +
//! directory service (24 control + 104 memory) + NI (8) + network (80) +
//! requester-side network-cache fill (104) + issue/fill overhead ≈ 409.
//!
//! [C-VALIDATE]: https://rust-lang.github.io/api-guidelines/dependability.html

use std::fmt;

use ltp_core::{BlockId, NodeId};
use ltp_sim::Cycle;

/// Error produced by [`SystemConfigBuilder::build`] on invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The machine needs at least two nodes to share anything.
    TooFewNodes(u16),
    /// A timing parameter that must be nonzero was zero.
    ZeroTiming(&'static str),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewNodes(n) => {
                write!(f, "a DSM needs at least 2 nodes, got {n}")
            }
            ConfigError::ZeroTiming(what) => {
                write!(f, "timing parameter `{what}` must be nonzero")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full machine configuration. Construct via [`SystemConfig::builder`] or
/// [`SystemConfig::isca00`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    nodes: u16,
    block_bytes: u32,
    cpu_hit: Cycle,
    mem_access: Cycle,
    dir_control: Cycle,
    net_latency: Cycle,
    ni_occupancy: Cycle,
    pipeline_stages: u32,
}

impl SystemConfig {
    /// The paper's Table 1 machine: 32 nodes, 32-byte blocks, 104-cycle
    /// memory, 80-cycle network, two-stage pipelined protocol engines.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltp_dsm::SystemConfig;
    ///
    /// let cfg = SystemConfig::isca00();
    /// assert_eq!(cfg.nodes(), 32);
    /// // Remote read round trip ≈ 416 cycles (Table 1).
    /// let rt = cfg.remote_round_trip_estimate();
    /// assert!((380..=440).contains(&rt.as_u64()), "round trip {rt}");
    /// ```
    pub fn isca00() -> Self {
        SystemConfig::builder()
            .build()
            .expect("ISCA'00 defaults are valid")
    }

    /// Starts a builder preloaded with the ISCA'00 defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// Coherence block size in bytes (32 in the paper).
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Processor-cache hit latency.
    pub fn cpu_hit(&self) -> Cycle {
        self.cpu_hit
    }

    /// One local-memory / network-cache access (Table 1: 104 cycles).
    pub fn mem_access(&self) -> Cycle {
        self.mem_access
    }

    /// Protocol-engine occupancy for a control-only message.
    pub fn dir_control(&self) -> Cycle {
        self.dir_control
    }

    /// Service time for a directory operation that moves data (control +
    /// one memory access).
    pub fn dir_data_service(&self) -> Cycle {
        self.dir_control + self.mem_access
    }

    /// One-way point-to-point network latency (Table 1: 80 cycles).
    pub fn net_latency(&self) -> Cycle {
        self.net_latency
    }

    /// Network-interface serialization time per message (the contention
    /// point the paper models).
    pub fn ni_occupancy(&self) -> Cycle {
        self.ni_occupancy
    }

    /// Depth of the pipelined protocol engine (Table 1 note: an "aggressive
    /// two-stage pipelined protocol engine").
    pub fn pipeline_stages(&self) -> u32 {
        self.pipeline_stages
    }

    /// The home node of `block`: blocks are interleaved round-robin across
    /// nodes, the common fine-grain DSM layout.
    pub fn home_of(&self, block: BlockId) -> NodeId {
        NodeId::new((block.index() % u64::from(self.nodes)) as u16)
    }

    /// Back-of-envelope remote read round trip for an Idle block, used to
    /// sanity-check against Table 1's 416 cycles.
    pub fn remote_round_trip_estimate(&self) -> Cycle {
        self.cpu_hit
            + self.ni_occupancy
            + self.net_latency
            + self.dir_data_service()
            + self.ni_occupancy
            + self.net_latency
            + self.mem_access
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::isca00()
    }
}

/// Builder for [`SystemConfig`] (all setters take `&mut self` and return it,
/// so one-liners and stepwise configuration both work).
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    nodes: u16,
    block_bytes: u32,
    cpu_hit: u64,
    mem_access: u64,
    dir_control: u64,
    net_latency: u64,
    ni_occupancy: u64,
    pipeline_stages: u32,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        SystemConfigBuilder {
            nodes: 32,
            block_bytes: 32,
            cpu_hit: 1,
            mem_access: 104,
            dir_control: 24,
            net_latency: 80,
            ni_occupancy: 8,
            pipeline_stages: 2,
        }
    }
}

impl SystemConfigBuilder {
    /// Sets the node count.
    pub fn nodes(&mut self, nodes: u16) -> &mut Self {
        self.nodes = nodes;
        self
    }

    /// Sets the block size in bytes.
    pub fn block_bytes(&mut self, bytes: u32) -> &mut Self {
        self.block_bytes = bytes;
        self
    }

    /// Sets the processor-cache hit latency in cycles.
    pub fn cpu_hit(&mut self, cycles: u64) -> &mut Self {
        self.cpu_hit = cycles;
        self
    }

    /// Sets the local-memory access time in cycles.
    pub fn mem_access(&mut self, cycles: u64) -> &mut Self {
        self.mem_access = cycles;
        self
    }

    /// Sets the control-message engine occupancy in cycles.
    pub fn dir_control(&mut self, cycles: u64) -> &mut Self {
        self.dir_control = cycles;
        self
    }

    /// Sets the one-way network latency in cycles.
    pub fn net_latency(&mut self, cycles: u64) -> &mut Self {
        self.net_latency = cycles;
        self
    }

    /// Sets the per-message NI serialization time in cycles.
    pub fn ni_occupancy(&mut self, cycles: u64) -> &mut Self {
        self.ni_occupancy = cycles;
        self
    }

    /// Sets the protocol-engine pipeline depth (≥1).
    pub fn pipeline_stages(&mut self, stages: u32) -> &mut Self {
        self.pipeline_stages = stages;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if fewer than 2 nodes are configured or any
    /// required timing parameter is zero.
    pub fn build(&self) -> Result<SystemConfig, ConfigError> {
        if self.nodes < 2 {
            return Err(ConfigError::TooFewNodes(self.nodes));
        }
        for (name, v) in [
            ("mem_access", self.mem_access),
            ("dir_control", self.dir_control),
            ("net_latency", self.net_latency),
            ("cpu_hit", self.cpu_hit),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroTiming(name));
            }
        }
        if self.pipeline_stages == 0 {
            return Err(ConfigError::ZeroTiming("pipeline_stages"));
        }
        Ok(SystemConfig {
            nodes: self.nodes,
            block_bytes: self.block_bytes,
            cpu_hit: Cycle::new(self.cpu_hit),
            mem_access: Cycle::new(self.mem_access),
            dir_control: Cycle::new(self.dir_control),
            net_latency: Cycle::new(self.net_latency),
            ni_occupancy: Cycle::new(self.ni_occupancy),
            pipeline_stages: self.pipeline_stages,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isca00_matches_table1() {
        let cfg = SystemConfig::isca00();
        assert_eq!(cfg.nodes(), 32);
        assert_eq!(cfg.block_bytes(), 32);
        assert_eq!(cfg.mem_access(), Cycle::new(104));
        assert_eq!(cfg.net_latency(), Cycle::new(80));
        assert_eq!(cfg.pipeline_stages(), 2);
    }

    #[test]
    fn round_trip_near_416() {
        let rt = SystemConfig::isca00().remote_round_trip_estimate().as_u64();
        assert!((380..=440).contains(&rt), "estimate {rt} not near 416");
    }

    #[test]
    fn remote_to_local_ratio_near_4() {
        let cfg = SystemConfig::isca00();
        let ratio =
            cfg.remote_round_trip_estimate().as_u64() as f64 / cfg.mem_access().as_u64() as f64;
        assert!((3.0..=5.0).contains(&ratio), "ratio {ratio} not ≈4");
    }

    #[test]
    fn homes_are_round_robin() {
        let cfg = SystemConfig::isca00();
        assert_eq!(cfg.home_of(BlockId::new(0)), NodeId::new(0));
        assert_eq!(cfg.home_of(BlockId::new(31)), NodeId::new(31));
        assert_eq!(cfg.home_of(BlockId::new(32)), NodeId::new(0));
        assert_eq!(cfg.home_of(BlockId::new(65)), NodeId::new(1));
    }

    #[test]
    fn builder_validates_nodes() {
        let err = SystemConfig::builder().nodes(1).build().unwrap_err();
        assert_eq!(err, ConfigError::TooFewNodes(1));
        assert!(err.to_string().contains("at least 2"));
    }

    #[test]
    fn builder_validates_timing() {
        let err = SystemConfig::builder().net_latency(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroTiming("net_latency"));
        let err = SystemConfig::builder()
            .pipeline_stages(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroTiming("pipeline_stages"));
    }

    #[test]
    fn builder_customization() {
        let cfg = SystemConfig::builder()
            .nodes(4)
            .mem_access(50)
            .net_latency(10)
            .build()
            .unwrap();
        assert_eq!(cfg.nodes(), 4);
        assert_eq!(cfg.mem_access(), Cycle::new(50));
        assert_eq!(cfg.dir_data_service(), Cycle::new(74));
    }

    #[test]
    fn default_is_isca00() {
        assert_eq!(SystemConfig::default(), SystemConfig::isca00());
    }
}
