//! System configuration (paper Table 1).
//!
//! [`SystemConfig`] gathers every timing and geometry parameter of the
//! simulated CC-NUMA machine. [`SystemConfig::isca00`] reproduces Table 1 of
//! the paper:
//!
//! | parameter | value |
//! |---|---|
//! | nodes | 32 |
//! | processor speed | 600 MHz |
//! | cache block size | 32 bytes |
//! | local memory / network-cache access | 104 cycles |
//! | network latency | 80 cycles |
//! | round-trip miss latency | ≈416 cycles |
//! | remote-to-local access ratio | ≈4 |
//!
//! The builder validates its inputs ([C-VALIDATE]) and the defaults decompose
//! the 416-cycle round trip as: NI serialization (8) + network (80) +
//! directory service (24 control + 104 memory) + NI (8) + network (80) +
//! requester-side network-cache fill (104) + issue/fill overhead ≈ 409.
//!
//! [C-VALIDATE]: https://rust-lang.github.io/api-guidelines/dependability.html

use std::fmt;
use std::str::FromStr;

use ltp_core::{BlockId, NodeId};
use ltp_sim::Cycle;

/// Error produced by [`SystemConfigBuilder::build`] on invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The machine needs at least two nodes to share anything.
    TooFewNodes(u16),
    /// A timing parameter that must be nonzero was zero.
    ZeroTiming(&'static str),
    /// The directory organization parameter is out of range.
    BadDirectory(&'static str),
    /// The combining-tree barrier fan-in must be at least 2.
    BadBarrierFanin(u16),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewNodes(n) => {
                write!(f, "a DSM needs at least 2 nodes, got {n}")
            }
            ConfigError::BadBarrierFanin(f_in) => {
                write!(
                    f,
                    "combining-tree barrier fan-in must be at least 2, got {f_in}"
                )
            }
            ConfigError::ZeroTiming(what) => {
                write!(f, "timing parameter `{what}` must be nonzero")
            }
            ConfigError::BadDirectory(what) => {
                write!(f, "directory organization: {what}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The directory's sharer-representation organization.
///
/// The paper evaluates a 32-node full-map directory; at the 1024–4096-node
/// geometries the roadmap targets, an exact bit per node per block is the
/// classic directory-storage scaling problem, and the classic answers are
/// selectable here:
///
/// * [`DirectoryKind::Full`] — one bit per node, exact (the paper's
///   organization and the default);
/// * [`DirectoryKind::Coarse`] — one bit per `cluster`-node group
///   (Gupta et al.'s *coarse vector*): invalidations broadcast to every
///   node of each marked cluster, and individual departures (self
///   invalidations) cannot clear a shared cluster bit, so stale clusters
///   accumulate *extra* invalidations;
/// * [`DirectoryKind::LimitedPtr`] — `Dir_i_B` limited pointers: up to
///   `pointers` exact sharers, falling back to broadcast-on-write once the
///   pointer array overflows;
/// * [`DirectoryKind::Sparse`] — a bounded directory-entry *cache* of
///   `entries` blocks per home (the SGI-Origin-style sparse directory):
///   entries are exact full maps, but allocating a record for a new block
///   when all `entries` are occupied evicts the least-recently-used stable
///   entry, invalidating its sharers first so the untracked block can fall
///   back to Idle safely.
///
/// Over-invalidation is observable in the run report:
/// `extra_invalidations` counts invalidations acknowledged without a copy,
/// `broadcast_overflows` counts limited-pointer overflow events, and
/// `dir_evictions`/`eviction_invalidations` count sparse replacements and
/// the invalidations they forced.
///
/// The spec-string grammar is `full`, `coarse:<K>`, `ptr:<I>`, `sparse:<E>`:
///
/// ```
/// use ltp_dsm::DirectoryKind;
///
/// assert_eq!("full".parse(), Ok(DirectoryKind::Full));
/// assert_eq!("coarse:4".parse(), Ok(DirectoryKind::Coarse { cluster: 4 }));
/// assert_eq!("ptr:8".parse(), Ok(DirectoryKind::LimitedPtr { pointers: 8 }));
/// assert_eq!("sparse:64".parse(), Ok(DirectoryKind::Sparse { entries: 64 }));
/// assert_eq!(DirectoryKind::Coarse { cluster: 4 }.to_string(), "coarse:4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DirectoryKind {
    /// Exact full-map bit vector (the paper's Table 1 machine).
    #[default]
    Full,
    /// Coarse vector: one presence bit per `cluster` consecutive nodes.
    Coarse {
        /// Nodes per presence bit (`coarse:1` is exactly [`DirectoryKind::Full`]).
        cluster: u16,
    },
    /// `Dir_i_B` limited pointers with broadcast on overflow.
    LimitedPtr {
        /// Exact sharers tracked before falling back to broadcast.
        pointers: u16,
    },
    /// Sparse directory: a bounded entry cache with eviction-driven
    /// invalidation.
    Sparse {
        /// Non-Idle blocks tracked per home before replacements evict.
        entries: u16,
    },
}

impl DirectoryKind {
    /// Whether this organization always knows the exact sharer set.
    ///
    /// `full`, `coarse:1`, and `sparse:E` (whose *tracked* entries are exact
    /// full maps) are always exact; `ptr:I` is exact until its pointer array
    /// overflows; wider coarse clusters are never exact.
    pub fn always_exact(self) -> bool {
        match self {
            DirectoryKind::Full => true,
            DirectoryKind::Coarse { cluster } => cluster <= 1,
            DirectoryKind::LimitedPtr { .. } => false,
            DirectoryKind::Sparse { .. } => true,
        }
    }

    /// Validates the organization parameters in isolation (machine-size
    /// checks live in [`DirectoryKind::validate_for`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadDirectory`] when a cluster width, pointer
    /// count, or entry count is zero.
    pub fn validate(self) -> Result<(), ConfigError> {
        match self {
            DirectoryKind::Full => Ok(()),
            DirectoryKind::Coarse { cluster: 0 } => Err(ConfigError::BadDirectory(
                "coarse cluster width must be at least 1",
            )),
            DirectoryKind::Coarse { .. } => Ok(()),
            DirectoryKind::LimitedPtr { pointers: 0 } => Err(ConfigError::BadDirectory(
                "limited-pointer directories need at least 1 pointer",
            )),
            DirectoryKind::LimitedPtr { .. } => Ok(()),
            DirectoryKind::Sparse { entries: 0 } => Err(ConfigError::BadDirectory(
                "sparse directories need at least 1 entry",
            )),
            DirectoryKind::Sparse { .. } => Ok(()),
        }
    }

    /// Validates the organization parameters against a concrete machine
    /// size: a cluster width or pointer count larger than the machine would
    /// be inert misconfiguration, so it is rejected here (the sharer
    /// representation itself is width-generic and imposes no cap).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::BadDirectory`] when the parameters fail
    /// [`DirectoryKind::validate`] or exceed `nodes`.
    pub fn validate_for(self, nodes: u16) -> Result<(), ConfigError> {
        self.validate()?;
        match self {
            DirectoryKind::Coarse { cluster } if cluster > nodes => Err(ConfigError::BadDirectory(
                "coarse cluster width exceeds the node count",
            )),
            DirectoryKind::LimitedPtr { pointers } if pointers > nodes => Err(
                ConfigError::BadDirectory("limited-pointer count exceeds the node count"),
            ),
            _ => Ok(()),
        }
    }
}

impl fmt::Display for DirectoryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // `pad` honors width/alignment flags so table columns line up.
        match self {
            DirectoryKind::Full => f.pad("full"),
            DirectoryKind::Coarse { cluster } => f.pad(&format!("coarse:{cluster}")),
            DirectoryKind::LimitedPtr { pointers } => f.pad(&format!("ptr:{pointers}")),
            DirectoryKind::Sparse { entries } => f.pad(&format!("sparse:{entries}")),
        }
    }
}

/// Error from parsing a [`DirectoryKind`] spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDirectoryKindError {
    spec: String,
    reason: &'static str,
}

impl fmt::Display for ParseDirectoryKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid directory spec `{}`: {} (expected full | coarse:<K> | ptr:<I> | sparse:<E>)",
            self.spec, self.reason
        )
    }
}

impl std::error::Error for ParseDirectoryKindError {}

impl FromStr for DirectoryKind {
    type Err = ParseDirectoryKindError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let err = |reason| ParseDirectoryKindError {
            spec: spec.to_string(),
            reason,
        };
        let (name, param) = match spec.split_once(':') {
            Some((name, param)) => (name.trim(), Some(param.trim())),
            None => (spec.trim(), None),
        };
        let parse_param = |what| -> Result<u16, ParseDirectoryKindError> {
            let raw = param.ok_or_else(|| err(what))?;
            let value: u16 = raw.parse().map_err(|_| err(what))?;
            if value == 0 {
                return Err(err(what));
            }
            Ok(value)
        };
        match name {
            "full" => {
                if param.is_some() {
                    return Err(err("`full` takes no parameter"));
                }
                Ok(DirectoryKind::Full)
            }
            "coarse" => Ok(DirectoryKind::Coarse {
                cluster: parse_param("needs a cluster width of at least 1")?,
            }),
            "ptr" => Ok(DirectoryKind::LimitedPtr {
                pointers: parse_param("needs a pointer count of at least 1")?,
            }),
            "sparse" => Ok(DirectoryKind::Sparse {
                entries: parse_param("needs an entry count of at least 1")?,
            }),
            _ => Err(err("unknown organization")),
        }
    }
}

/// Full machine configuration. Construct via [`SystemConfig::builder`] or
/// [`SystemConfig::isca00`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    nodes: u16,
    block_bytes: u32,
    cpu_hit: Cycle,
    mem_access: Cycle,
    dir_control: Cycle,
    net_latency: Cycle,
    ni_occupancy: Cycle,
    pipeline_stages: u32,
    directory: DirectoryKind,
    barrier_fanin: u16,
}

impl SystemConfig {
    /// The paper's Table 1 machine: 32 nodes, 32-byte blocks, 104-cycle
    /// memory, 80-cycle network, two-stage pipelined protocol engines.
    ///
    /// # Examples
    ///
    /// ```
    /// use ltp_dsm::SystemConfig;
    ///
    /// let cfg = SystemConfig::isca00();
    /// assert_eq!(cfg.nodes(), 32);
    /// // Remote read round trip ≈ 416 cycles (Table 1).
    /// let rt = cfg.remote_round_trip_estimate();
    /// assert!((380..=440).contains(&rt.as_u64()), "round trip {rt}");
    /// ```
    pub fn isca00() -> Self {
        SystemConfig::builder()
            .build()
            .expect("ISCA'00 defaults are valid")
    }

    /// Starts a builder preloaded with the ISCA'00 defaults.
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder::default()
    }

    /// Number of nodes in the machine.
    pub fn nodes(&self) -> u16 {
        self.nodes
    }

    /// Coherence block size in bytes (32 in the paper).
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Processor-cache hit latency.
    pub fn cpu_hit(&self) -> Cycle {
        self.cpu_hit
    }

    /// One local-memory / network-cache access (Table 1: 104 cycles).
    pub fn mem_access(&self) -> Cycle {
        self.mem_access
    }

    /// Protocol-engine occupancy for a control-only message.
    pub fn dir_control(&self) -> Cycle {
        self.dir_control
    }

    /// Service time for a directory operation that moves data (control +
    /// one memory access).
    pub fn dir_data_service(&self) -> Cycle {
        self.dir_control + self.mem_access
    }

    /// One-way point-to-point network latency (Table 1: 80 cycles).
    pub fn net_latency(&self) -> Cycle {
        self.net_latency
    }

    /// Network-interface serialization time per message (the contention
    /// point the paper models).
    pub fn ni_occupancy(&self) -> Cycle {
        self.ni_occupancy
    }

    /// Depth of the pipelined protocol engine (Table 1 note: an "aggressive
    /// two-stage pipelined protocol engine").
    pub fn pipeline_stages(&self) -> u32 {
        self.pipeline_stages
    }

    /// The directory sharer-representation organization.
    pub fn directory(&self) -> DirectoryKind {
        self.directory
    }

    /// Fan-in of the combining-tree barrier (arrivals combined per tree
    /// node; the tree has O(log_fanin n) depth).
    pub fn barrier_fanin(&self) -> u16 {
        self.barrier_fanin
    }

    /// The home node of `block`: blocks are interleaved round-robin across
    /// nodes, the common fine-grain DSM layout.
    pub fn home_of(&self, block: BlockId) -> NodeId {
        NodeId::new((block.index() % u64::from(self.nodes)) as u16)
    }

    /// The smallest possible latency of any message between two *distinct*
    /// nodes: one NI serialization plus one network hop. Home-local
    /// (`src == dst`) traffic is faster, but it never crosses a shard
    /// boundary, so this bound is the safe lookahead for conservative
    /// time-stepped parallel simulation (`ltp-system`'s shard engine).
    pub fn min_cross_node_latency(&self) -> Cycle {
        self.ni_occupancy + self.net_latency
    }

    /// Back-of-envelope remote read round trip for an Idle block, used to
    /// sanity-check against Table 1's 416 cycles.
    pub fn remote_round_trip_estimate(&self) -> Cycle {
        self.cpu_hit
            + self.ni_occupancy
            + self.net_latency
            + self.dir_data_service()
            + self.ni_occupancy
            + self.net_latency
            + self.mem_access
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::isca00()
    }
}

/// Builder for [`SystemConfig`] (all setters take `&mut self` and return it,
/// so one-liners and stepwise configuration both work).
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    nodes: u16,
    block_bytes: u32,
    cpu_hit: u64,
    mem_access: u64,
    dir_control: u64,
    net_latency: u64,
    ni_occupancy: u64,
    pipeline_stages: u32,
    directory: DirectoryKind,
    barrier_fanin: u16,
}

impl Default for SystemConfigBuilder {
    fn default() -> Self {
        SystemConfigBuilder {
            nodes: 32,
            block_bytes: 32,
            cpu_hit: 1,
            mem_access: 104,
            dir_control: 24,
            net_latency: 80,
            ni_occupancy: 8,
            pipeline_stages: 2,
            directory: DirectoryKind::Full,
            barrier_fanin: 4,
        }
    }
}

impl SystemConfigBuilder {
    /// Sets the node count.
    pub fn nodes(&mut self, nodes: u16) -> &mut Self {
        self.nodes = nodes;
        self
    }

    /// Sets the block size in bytes.
    pub fn block_bytes(&mut self, bytes: u32) -> &mut Self {
        self.block_bytes = bytes;
        self
    }

    /// Sets the processor-cache hit latency in cycles.
    pub fn cpu_hit(&mut self, cycles: u64) -> &mut Self {
        self.cpu_hit = cycles;
        self
    }

    /// Sets the local-memory access time in cycles.
    pub fn mem_access(&mut self, cycles: u64) -> &mut Self {
        self.mem_access = cycles;
        self
    }

    /// Sets the control-message engine occupancy in cycles.
    pub fn dir_control(&mut self, cycles: u64) -> &mut Self {
        self.dir_control = cycles;
        self
    }

    /// Sets the one-way network latency in cycles.
    pub fn net_latency(&mut self, cycles: u64) -> &mut Self {
        self.net_latency = cycles;
        self
    }

    /// Sets the per-message NI serialization time in cycles.
    pub fn ni_occupancy(&mut self, cycles: u64) -> &mut Self {
        self.ni_occupancy = cycles;
        self
    }

    /// Sets the protocol-engine pipeline depth (≥1).
    pub fn pipeline_stages(&mut self, stages: u32) -> &mut Self {
        self.pipeline_stages = stages;
        self
    }

    /// Sets the directory sharer-representation organization.
    pub fn directory(&mut self, directory: DirectoryKind) -> &mut Self {
        self.directory = directory;
        self
    }

    /// Sets the combining-tree barrier fan-in (≥2, default 4).
    pub fn barrier_fanin(&mut self, fanin: u16) -> &mut Self {
        self.barrier_fanin = fanin;
        self
    }

    /// Validates and produces the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if fewer than 2 nodes are configured, any
    /// required timing parameter is zero, the directory organization is
    /// malformed or sized beyond the node count, or the barrier fan-in is
    /// below 2. The node count itself is unbounded up to `u16::MAX` — the
    /// sharer representation is width-generic.
    pub fn build(&self) -> Result<SystemConfig, ConfigError> {
        if self.nodes < 2 {
            return Err(ConfigError::TooFewNodes(self.nodes));
        }
        if self.barrier_fanin < 2 {
            return Err(ConfigError::BadBarrierFanin(self.barrier_fanin));
        }
        self.directory.validate_for(self.nodes)?;
        for (name, v) in [
            ("mem_access", self.mem_access),
            ("dir_control", self.dir_control),
            ("net_latency", self.net_latency),
            ("cpu_hit", self.cpu_hit),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroTiming(name));
            }
        }
        if self.pipeline_stages == 0 {
            return Err(ConfigError::ZeroTiming("pipeline_stages"));
        }
        Ok(SystemConfig {
            nodes: self.nodes,
            block_bytes: self.block_bytes,
            cpu_hit: Cycle::new(self.cpu_hit),
            mem_access: Cycle::new(self.mem_access),
            dir_control: Cycle::new(self.dir_control),
            net_latency: Cycle::new(self.net_latency),
            ni_occupancy: Cycle::new(self.ni_occupancy),
            pipeline_stages: self.pipeline_stages,
            directory: self.directory,
            barrier_fanin: self.barrier_fanin,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isca00_matches_table1() {
        let cfg = SystemConfig::isca00();
        assert_eq!(cfg.nodes(), 32);
        assert_eq!(cfg.block_bytes(), 32);
        assert_eq!(cfg.mem_access(), Cycle::new(104));
        assert_eq!(cfg.net_latency(), Cycle::new(80));
        assert_eq!(cfg.pipeline_stages(), 2);
    }

    #[test]
    fn round_trip_near_416() {
        let rt = SystemConfig::isca00().remote_round_trip_estimate().as_u64();
        assert!((380..=440).contains(&rt), "estimate {rt} not near 416");
    }

    #[test]
    fn remote_to_local_ratio_near_4() {
        let cfg = SystemConfig::isca00();
        let ratio =
            cfg.remote_round_trip_estimate().as_u64() as f64 / cfg.mem_access().as_u64() as f64;
        assert!((3.0..=5.0).contains(&ratio), "ratio {ratio} not ≈4");
    }

    #[test]
    fn homes_are_round_robin() {
        let cfg = SystemConfig::isca00();
        assert_eq!(cfg.home_of(BlockId::new(0)), NodeId::new(0));
        assert_eq!(cfg.home_of(BlockId::new(31)), NodeId::new(31));
        assert_eq!(cfg.home_of(BlockId::new(32)), NodeId::new(0));
        assert_eq!(cfg.home_of(BlockId::new(65)), NodeId::new(1));
    }

    #[test]
    fn builder_validates_nodes() {
        let err = SystemConfig::builder().nodes(1).build().unwrap_err();
        assert_eq!(err, ConfigError::TooFewNodes(1));
        assert!(err.to_string().contains("at least 2"));
    }

    #[test]
    fn builder_validates_timing() {
        let err = SystemConfig::builder().net_latency(0).build().unwrap_err();
        assert_eq!(err, ConfigError::ZeroTiming("net_latency"));
        let err = SystemConfig::builder()
            .pipeline_stages(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroTiming("pipeline_stages"));
    }

    #[test]
    fn builder_customization() {
        let cfg = SystemConfig::builder()
            .nodes(4)
            .mem_access(50)
            .net_latency(10)
            .build()
            .unwrap();
        assert_eq!(cfg.nodes(), 4);
        assert_eq!(cfg.mem_access(), Cycle::new(50));
        assert_eq!(cfg.dir_data_service(), Cycle::new(74));
    }

    #[test]
    fn default_is_isca00() {
        assert_eq!(SystemConfig::default(), SystemConfig::isca00());
    }

    #[test]
    fn default_directory_is_full_map() {
        assert_eq!(SystemConfig::isca00().directory(), DirectoryKind::Full);
    }

    #[test]
    fn builder_accepts_any_machine_width() {
        // The 256-node ceiling is gone: 257 (the old first-illegal width),
        // 1024, and 4096 all build.
        for nodes in [256u16, 257, 1024, 4096] {
            let cfg = SystemConfig::builder()
                .nodes(nodes)
                .directory(DirectoryKind::Coarse { cluster: 8 })
                .build()
                .unwrap();
            assert_eq!(cfg.nodes(), nodes);
            assert_eq!(cfg.directory(), DirectoryKind::Coarse { cluster: 8 });
        }
    }

    #[test]
    fn directory_parameters_validate_against_the_node_count() {
        // 257-node edge: a 257-wide cluster or pointer array is exactly as
        // large as the machine — legal — while 258 exceeds it.
        for kind in [
            DirectoryKind::Coarse { cluster: 257 },
            DirectoryKind::LimitedPtr { pointers: 257 },
        ] {
            SystemConfig::builder()
                .nodes(257)
                .directory(kind)
                .build()
                .unwrap_or_else(|e| panic!("{kind} on 257 nodes must build: {e}"));
            let err = SystemConfig::builder()
                .nodes(257)
                .directory(match kind {
                    DirectoryKind::Coarse { .. } => DirectoryKind::Coarse { cluster: 258 },
                    _ => DirectoryKind::LimitedPtr { pointers: 258 },
                })
                .build()
                .unwrap_err();
            assert!(matches!(err, ConfigError::BadDirectory(_)));
            assert!(err.to_string().contains("node count"), "{err}");
        }
        // Sparse entry counts are a cache size, not a node index: any
        // nonzero value is legal regardless of machine width.
        SystemConfig::builder()
            .nodes(4)
            .directory(DirectoryKind::Sparse { entries: 4096 })
            .build()
            .unwrap();
    }

    #[test]
    fn builder_rejects_malformed_directories() {
        for kind in [
            DirectoryKind::Coarse { cluster: 0 },
            DirectoryKind::LimitedPtr { pointers: 0 },
            DirectoryKind::Sparse { entries: 0 },
            DirectoryKind::Coarse { cluster: 300 },
            DirectoryKind::LimitedPtr { pointers: 300 },
        ] {
            // Default 32-node builder: zero params are always bad, and
            // 300 > 32 exceeds the node count.
            let err = SystemConfig::builder().directory(kind).build().unwrap_err();
            assert!(matches!(err, ConfigError::BadDirectory(_)), "{kind}");
        }
    }

    #[test]
    fn builder_validates_barrier_fanin() {
        for bad in [0u16, 1] {
            let err = SystemConfig::builder()
                .barrier_fanin(bad)
                .build()
                .unwrap_err();
            assert_eq!(err, ConfigError::BadBarrierFanin(bad));
            assert!(err.to_string().contains("at least 2"));
        }
        let cfg = SystemConfig::builder().barrier_fanin(2).build().unwrap();
        assert_eq!(cfg.barrier_fanin(), 2);
        assert_eq!(SystemConfig::isca00().barrier_fanin(), 4, "default fan-in");
    }

    #[test]
    fn directory_kind_parses_and_round_trips() {
        for spec in [
            "full",
            "coarse:4",
            "ptr:8",
            "coarse:256",
            "coarse:4096",
            "sparse:64",
        ] {
            let kind: DirectoryKind = spec.parse().unwrap();
            assert_eq!(kind.to_string(), spec);
            kind.validate().unwrap();
        }
        for bad in [
            "", "coarse", "ptr", "ptr:0", "sparse", "sparse:0", "full:3", "dir",
        ] {
            assert!(bad.parse::<DirectoryKind>().is_err(), "`{bad}` must fail");
        }
        let msg = "ptr:x".parse::<DirectoryKind>().unwrap_err().to_string();
        assert!(msg.contains("ptr:x"), "{msg}");
        assert!(
            msg.contains("full | coarse:<K> | ptr:<I> | sparse:<E>"),
            "{msg}"
        );
    }

    #[test]
    fn directory_kind_display_honors_padding() {
        assert_eq!(
            format!("{:<10}|", DirectoryKind::Coarse { cluster: 4 }),
            "coarse:4  |"
        );
        assert_eq!(format!("{:>6}|", DirectoryKind::Full), "  full|");
    }

    #[test]
    fn exactness_classification() {
        assert!(DirectoryKind::Full.always_exact());
        assert!(DirectoryKind::Coarse { cluster: 1 }.always_exact());
        assert!(!DirectoryKind::Coarse { cluster: 4 }.always_exact());
        assert!(!DirectoryKind::LimitedPtr { pointers: 4 }.always_exact());
        assert!(
            DirectoryKind::Sparse { entries: 8 }.always_exact(),
            "sparse tracked entries are exact full maps"
        );
    }
}
