//! Coherence protocol messages.
//!
//! The full-map write-invalidate protocol exchanges the message kinds below.
//! Data-bearing messages carry a `token` — a monotonically increasing
//! per-block write stamp used as simulated "data" so every run doubles as a
//! coherence checker (readers must observe the newest token the directory
//! serialized; the directory asserts token monotonicity on writebacks).

use ltp_core::{BlockId, NodeId, VerifyOutcome};

/// The wire kinds of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Read miss: request a read-only copy.
    GetS,
    /// Write miss: request an exclusive (writable) copy.
    GetX,
    /// Write hit on a Shared copy: request an in-place upgrade.
    Upgrade,
    /// Self-invalidation of a clean read-only copy (a sharer-bit clear).
    SelfInvClean,
    /// Self-invalidation writeback of a dirty exclusive copy.
    SelfInvDirty {
        /// Data stamp being written back.
        token: u64,
    },
    /// Directory → cacher: invalidate your copy (and write back if dirty).
    Inv,
    /// Cacher → directory: invalidation acknowledged.
    InvAck {
        /// Whether a copy was actually present (false after a self-inv race).
        had_copy: bool,
        /// Writeback data when the invalidated copy was dirty.
        dirty_token: Option<u64>,
    },
    /// Read-only data reply.
    DataS {
        /// Directory write-version (DSI's versioning input).
        version: u32,
        /// Data stamp.
        token: u64,
        /// Piggybacked verification verdict for an earlier self-invalidation
        /// by the requester (paper §4).
        verify: Option<VerifyOutcome>,
    },
    /// Exclusive data reply.
    DataX {
        /// Directory write-version after this grant.
        version: u32,
        /// Data stamp.
        token: u64,
        /// Piggybacked verification verdict.
        verify: Option<VerifyOutcome>,
    },
    /// Upgrade grant (no data movement).
    UpgradeAck {
        /// Directory write-version after this grant.
        version: u32,
        /// True when the requester held the only read-only copy — the
        /// migratory pattern DSI deliberately skips.
        migratory: bool,
        /// Piggybacked verification verdict.
        verify: Option<VerifyOutcome>,
    },
    /// Meta notification: an earlier self-invalidation by the destination
    /// was verified correct. `timely` records whether it reached the
    /// directory before the conflicting request (Table 4's timeliness).
    ///
    /// Hardware would piggyback this bit on a later message; here it rides
    /// the ordinary network path (NI serialization + constant latency) like
    /// every other message, which only affects confidence-counter update
    /// timing — off the critical path (documented deviation, DESIGN.md §7).
    /// Routing it through the network keeps every cross-node interaction
    /// under the shard engine's lookahead bound.
    VerifyCorrect {
        /// Whether the self-invalidation arrived before the consumer's
        /// request.
        timely: bool,
    },
}

impl MsgKind {
    /// Whether this kind carries a data payload (a full cache block on the
    /// wire and one memory access at the directory).
    pub fn carries_data(self) -> bool {
        matches!(
            self,
            MsgKind::SelfInvDirty { .. }
                | MsgKind::DataS { .. }
                | MsgKind::DataX { .. }
                | MsgKind::InvAck {
                    dirty_token: Some(_),
                    ..
                }
        )
    }

    /// Whether this kind is a demand request that starts a directory
    /// transaction.
    pub fn is_request(self) -> bool {
        matches!(self, MsgKind::GetS | MsgKind::GetX | MsgKind::Upgrade)
    }
}

/// One protocol message in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Sending node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Subject block.
    pub block: BlockId,
    /// Payload kind.
    pub kind: MsgKind,
}

impl Message {
    /// Creates a message.
    pub fn new(src: NodeId, dst: NodeId, block: BlockId, kind: MsgKind) -> Self {
        Message {
            src,
            dst,
            block,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_classification() {
        assert!(MsgKind::DataS {
            version: 0,
            token: 0,
            verify: None
        }
        .carries_data());
        assert!(MsgKind::SelfInvDirty { token: 3 }.carries_data());
        assert!(MsgKind::InvAck {
            had_copy: true,
            dirty_token: Some(1)
        }
        .carries_data());
        assert!(!MsgKind::GetS.carries_data());
        assert!(!MsgKind::Inv.carries_data());
        assert!(!MsgKind::SelfInvClean.carries_data());
        assert!(!MsgKind::InvAck {
            had_copy: false,
            dirty_token: None
        }
        .carries_data());
    }

    #[test]
    fn request_classification() {
        assert!(MsgKind::GetS.is_request());
        assert!(MsgKind::GetX.is_request());
        assert!(MsgKind::Upgrade.is_request());
        assert!(!MsgKind::Inv.is_request());
        assert!(!MsgKind::SelfInvClean.is_request());
    }

    #[test]
    fn message_construction() {
        let m = Message::new(
            NodeId::new(1),
            NodeId::new(2),
            BlockId::new(3),
            MsgKind::GetS,
        );
        assert_eq!(m.src, NodeId::new(1));
        assert_eq!(m.dst, NodeId::new(2));
        assert_eq!(m.block, BlockId::new(3));
    }
}
