//! The pipelined protocol engine — where Table 4's queueing happens.
//!
//! Each home node's directory is fronted by a [`ProtocolEngine`]: a FIFO of
//! arrived messages drained by a pipelined server. The paper models "an
//! aggressive two-stage pipelined protocol engine" to be fair to DSI's bursty
//! traffic; accordingly a service occupies the engine for
//! `service_time / pipeline_stages` (the initiation interval) while the
//! message's effects complete after the full `service_time`.
//!
//! The engine records, per message, its *queueing delay* (arrival →
//! service start) and *service time* — exactly the two Table 4 columns.

use std::collections::VecDeque;

use ltp_sim::stats::MeanAccumulator;
use ltp_sim::Cycle;

use crate::msg::Message;

/// Queueing and service statistics for one engine.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Per-message queueing delay (cycles).
    pub queueing: MeanAccumulator,
    /// Per-message service time (cycles).
    pub service: MeanAccumulator,
}

/// A home node's protocol engine: FIFO + pipelined server + statistics.
///
/// The engine does not know message semantics; the machine driver pops a
/// message when the engine is ready, asks the directory to process it, and
/// reports the resulting service time back via [`ProtocolEngine::begin_service`].
///
/// # Examples
///
/// ```
/// use ltp_core::{BlockId, NodeId};
/// use ltp_dsm::{Message, MsgKind, ProtocolEngine};
/// use ltp_sim::Cycle;
///
/// let mut eng = ProtocolEngine::new(2);
/// let m = Message::new(NodeId::new(1), NodeId::new(0), BlockId::new(0), MsgKind::GetS);
/// assert!(eng.enqueue(Cycle::new(100), m), "engine was idle: caller schedules a drain");
/// let (msg, queued) = eng.dequeue(Cycle::new(100)).unwrap();
/// assert_eq!(queued, Cycle::ZERO, "serviced the cycle it arrived");
/// let done = eng.begin_service(Cycle::new(100), Cycle::new(128));
/// assert_eq!(done, Cycle::new(228));
/// assert_eq!(msg.kind, MsgKind::GetS);
/// ```
#[derive(Debug, Clone)]
pub struct ProtocolEngine {
    queue: VecDeque<(Cycle, Message)>,
    busy_until: Cycle,
    pipeline_stages: u32,
    drain_scheduled: bool,
    stats: EngineStats,
}

impl ProtocolEngine {
    /// Creates an engine with the given pipeline depth.
    ///
    /// # Panics
    ///
    /// Panics if `pipeline_stages` is zero.
    pub fn new(pipeline_stages: u32) -> Self {
        assert!(pipeline_stages > 0, "pipeline needs at least one stage");
        ProtocolEngine {
            queue: VecDeque::new(),
            busy_until: Cycle::ZERO,
            pipeline_stages,
            drain_scheduled: false,
            stats: EngineStats::default(),
        }
    }

    /// Enqueues a message arriving at `now`. Returns `true` when the caller
    /// must schedule a drain (no drain event is outstanding); the drain
    /// should fire at [`ProtocolEngine::next_ready`].
    pub fn enqueue(&mut self, now: Cycle, msg: Message) -> bool {
        self.queue.push_back((now, msg));
        if self.drain_scheduled {
            false
        } else {
            self.drain_scheduled = true;
            true
        }
    }

    /// The earliest time a service may start, given the pipeline occupancy.
    pub fn next_ready(&self, now: Cycle) -> Cycle {
        now.max(self.busy_until)
    }

    /// Pops the next message for service at `now`, recording its queueing
    /// delay — which is also returned, so callers (the probe event stream)
    /// can observe per-message queueing without reaching into the engine's
    /// statistics. Returns `None` when the queue is empty (the drain event
    /// was stale); the caller must re-arm via [`ProtocolEngine::enqueue`]'s
    /// return value.
    pub fn dequeue(&mut self, now: Cycle) -> Option<(Message, Cycle)> {
        match self.queue.pop_front() {
            Some((arrival, msg)) => {
                debug_assert!(now >= arrival, "service before arrival");
                let queued = now - arrival;
                self.stats.queueing.record_cycles(queued);
                Some((msg, queued))
            }
            None => {
                self.drain_scheduled = false;
                None
            }
        }
    }

    /// Accounts one service starting at `now` lasting `service_time`;
    /// returns the completion time (when the service's messages depart).
    ///
    /// The engine becomes ready for the next message after one pipeline
    /// initiation interval (`service_time / stages`), not the full latency.
    pub fn begin_service(&mut self, now: Cycle, service_time: Cycle) -> Cycle {
        self.stats.service.record_cycles(service_time);
        let ii = Cycle::new((service_time.as_u64() / u64::from(self.pipeline_stages)).max(1));
        self.busy_until = now + ii;
        now + service_time
    }

    /// Whether another drain must be scheduled after a service; clears the
    /// flag when the queue is empty.
    pub fn arm_next_drain(&mut self) -> bool {
        if self.queue.is_empty() {
            self.drain_scheduled = false;
            false
        } else {
            self.drain_scheduled = true;
            true
        }
    }

    /// Messages waiting for service.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::MsgKind;
    use ltp_core::{BlockId, NodeId};

    fn m(i: u16) -> Message {
        Message::new(
            NodeId::new(i),
            NodeId::new(0),
            BlockId::new(0),
            MsgKind::GetS,
        )
    }

    #[test]
    fn first_enqueue_requests_drain_once() {
        let mut e = ProtocolEngine::new(2);
        assert!(e.enqueue(Cycle::new(0), m(1)));
        assert!(!e.enqueue(Cycle::new(1), m(2)), "drain already scheduled");
        assert_eq!(e.backlog(), 2);
    }

    #[test]
    fn queueing_delay_is_wait_time() {
        let mut e = ProtocolEngine::new(2);
        e.enqueue(Cycle::new(10), m(1));
        let (_, queued) = e.dequeue(Cycle::new(50)).unwrap();
        assert_eq!(queued, Cycle::new(40));
        assert_eq!(e.stats().queueing.mean(), Some(40.0));
    }

    #[test]
    fn pipeline_initiation_interval_is_half_service() {
        let mut e = ProtocolEngine::new(2);
        e.enqueue(Cycle::new(0), m(1));
        e.dequeue(Cycle::new(0));
        let done = e.begin_service(Cycle::new(0), Cycle::new(128));
        assert_eq!(done, Cycle::new(128));
        // Ready again after 64, not 128.
        assert_eq!(e.next_ready(Cycle::new(0)), Cycle::new(64));
        assert_eq!(e.next_ready(Cycle::new(100)), Cycle::new(100));
    }

    #[test]
    fn initiation_interval_clamps_to_one_cycle() {
        // When the service time is shorter than the pipeline depth, the
        // integer initiation interval `service / stages` would round to 0 —
        // letting the next service start in the same cycle and the engine
        // process unboundedly many messages per cycle. The engine must
        // clamp the interval to one cycle.
        for (stages, service) in [(2u32, 1u64), (4, 2), (4, 3), (8, 1)] {
            let mut e = ProtocolEngine::new(stages);
            e.enqueue(Cycle::new(0), m(1));
            e.dequeue(Cycle::new(0));
            let done = e.begin_service(Cycle::new(0), Cycle::new(service));
            assert_eq!(
                done,
                Cycle::new(service),
                "{stages} stages / {service} cycles"
            );
            assert_eq!(
                e.next_ready(Cycle::new(0)),
                Cycle::new(1),
                "{stages} stages / {service} cycles: interval clamps to 1"
            );
        }
        // At exactly service == stages the interval is also 1 — the clamp
        // and the division agree at the boundary.
        let mut e = ProtocolEngine::new(4);
        e.enqueue(Cycle::new(0), m(1));
        e.dequeue(Cycle::new(0));
        e.begin_service(Cycle::new(0), Cycle::new(4));
        assert_eq!(e.next_ready(Cycle::new(0)), Cycle::new(1));
    }

    #[test]
    fn unpipelined_engine_serializes_fully() {
        let mut e = ProtocolEngine::new(1);
        e.enqueue(Cycle::new(0), m(1));
        e.dequeue(Cycle::new(0));
        e.begin_service(Cycle::new(0), Cycle::new(100));
        assert_eq!(e.next_ready(Cycle::new(0)), Cycle::new(100));
    }

    #[test]
    fn drain_rearm_cycle() {
        let mut e = ProtocolEngine::new(2);
        e.enqueue(Cycle::new(0), m(1));
        e.enqueue(Cycle::new(0), m(2));
        e.dequeue(Cycle::new(0)).unwrap();
        e.begin_service(Cycle::new(0), Cycle::new(24));
        assert!(e.arm_next_drain(), "one message left");
        e.dequeue(Cycle::new(12)).unwrap();
        e.begin_service(Cycle::new(12), Cycle::new(24));
        assert!(!e.arm_next_drain(), "queue empty");
        // New arrival now requests a fresh drain.
        assert!(e.enqueue(Cycle::new(20), m(3)));
    }

    #[test]
    fn stale_drain_returns_none_and_resets() {
        let mut e = ProtocolEngine::new(2);
        assert!(e.dequeue(Cycle::new(0)).is_none());
        assert!(e.enqueue(Cycle::new(0), m(1)), "flag was cleared");
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_panics() {
        ProtocolEngine::new(0);
    }
}
