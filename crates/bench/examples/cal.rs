//! Calibration helper: one benchmark under the four interesting predictor
//! configurations, with the raw counters the figure benches summarize.
//!
//! ```sh
//! cargo run --release -p ltp-bench --example cal -- tomcatv
//! ```

use ltp_system::{ExperimentSpec, PolicyKind};
use ltp_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = match args.get(1).map(|s| s.as_str()) {
        Some("appbt") => Benchmark::Appbt,
        Some("barnes") => Benchmark::Barnes,
        Some("dsmc") => Benchmark::Dsmc,
        Some("em3d") => Benchmark::Em3d,
        Some("moldyn") => Benchmark::Moldyn,
        Some("ocean") => Benchmark::Ocean,
        Some("raytrace") => Benchmark::Raytrace,
        Some("tomcatv") => Benchmark::Tomcatv,
        _ => Benchmark::Unstructured,
    };
    println!("{bench} on the 32-node ISCA'00 machine:");
    for (name, policy) in [
        ("ltp13", PolicyKind::LtpPerBlock { bits: 13 }),
        ("ltp30", PolicyKind::LtpPerBlock { bits: 30 }),
        ("lastpc", PolicyKind::LastPc),
        ("dsi", PolicyKind::Dsi),
    ] {
        let r = ExperimentSpec::isca00(bench, policy).run();
        let m = &r.metrics;
        println!(
            "{name:>7}: pred {:5.1}% not {:5.1}% mis {:5.1}% | inv_events {} selfinv {} timely {:.0}%",
            m.predicted_pct(),
            m.not_predicted_pct(),
            m.mispredicted_pct(),
            m.invalidation_events(),
            m.self_invalidations_sent,
            m.timeliness_pct()
        );
    }
}
