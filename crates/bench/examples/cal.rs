//! Calibration helper: one benchmark under the four interesting predictor
//! configurations, with the raw counters the figure benches summarize.
//!
//! ```sh
//! cargo run --release -p ltp-bench --example cal -- tomcatv
//! ```

use ltp_core::PolicyRegistry;
use ltp_system::SweepSpec;
use ltp_workloads::Benchmark;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let bench = args
        .get(1)
        .and_then(|s| Benchmark::from_name(s))
        .unwrap_or(Benchmark::Unstructured);
    println!("{bench} on the 32-node ISCA'00 machine:");
    let registry = PolicyRegistry::with_builtins();
    let specs = ["ltp:bits=13", "ltp:bits=30", "last-pc", "dsi"];
    let reports = SweepSpec::new()
        .benchmark(bench)
        .policy_specs(&registry, &specs)
        .expect("builtin specs")
        .collect();
    for r in &reports {
        let m = &r.metrics;
        println!(
            "{:>24}: pred {:5.1}% not {:5.1}% mis {:5.1}% | inv_events {} selfinv {} timely {:.0}%",
            r.policy_spec,
            m.predicted_pct(),
            m.not_predicted_pct(),
            m.mispredicted_pct(),
            m.invalidation_events(),
            m.self_invalidations_sent,
            m.timeliness_pct()
        );
    }
}
