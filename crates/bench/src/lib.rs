//! # `ltp-bench` — support code for the figure/table harness
//!
//! Each bench target under `benches/` regenerates one table or figure of the
//! paper (run `cargo bench -p ltp-bench --bench fig6_accuracy` etc., or all
//! of them with `cargo bench`). This library holds the shared scaffolding:
//! the [`SuiteSweep`] wrapper over the parallel `SweepSpec` driver, report
//! formatting, the micro-benchmark timer, and the mean helper the paper's
//! summary numbers use.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::hint::black_box;
use std::time::Instant;

use ltp_core::{PolicyRegistry, PredictorConfig};
use ltp_system::{RunReport, SweepSpec};
use ltp_workloads::Benchmark;

/// One full-suite sweep: every Table 2 benchmark × the given policy specs
/// on the paper's 32-node machine, executed in parallel.
///
/// Reports are stored in run order (benchmark-major, then policy), so
/// [`SuiteSweep::report`] is a direct index.
#[derive(Debug)]
pub struct SuiteSweep {
    specs: Vec<String>,
    reports: Vec<RunReport>,
}

impl SuiteSweep {
    /// Sweeps the whole suite under each policy spec with default predictor
    /// tuning.
    ///
    /// # Panics
    ///
    /// Panics if a spec does not resolve against the built-in registry.
    pub fn run(specs: &[&str]) -> Self {
        SuiteSweep::with_predictor(specs, PredictorConfig::default())
    }

    /// Sweeps the whole suite under each policy spec with custom predictor
    /// tuning.
    ///
    /// # Panics
    ///
    /// Panics if a spec does not resolve against the built-in registry.
    pub fn with_predictor(specs: &[&str], predictor: PredictorConfig) -> Self {
        let registry = PolicyRegistry::with_builtins();
        let reports = SweepSpec::new()
            .all_benchmarks()
            .policy_specs(&registry, specs)
            .expect("bench policy specs resolve")
            .predictor(predictor)
            .collect();
        SuiteSweep {
            specs: specs.iter().map(|s| s.to_string()).collect(),
            reports,
        }
    }

    /// The policy specs this sweep ran, in column order.
    pub fn specs(&self) -> &[String] {
        &self.specs
    }

    /// All reports, benchmark-major.
    pub fn reports(&self) -> &[RunReport] {
        &self.reports
    }

    /// The report of one (benchmark, policy-column) cell.
    ///
    /// # Panics
    ///
    /// Panics if `spec_idx` is out of range.
    pub fn report(&self, benchmark: Benchmark, spec_idx: usize) -> &RunReport {
        assert!(spec_idx < self.specs.len(), "policy column out of range");
        let b_idx = Benchmark::ALL
            .iter()
            .position(|b| *b == benchmark)
            .expect("suite benchmark");
        &self.reports[b_idx * self.specs.len() + spec_idx]
    }
}

/// Runs one benchmark under one policy spec on the paper's 32-node machine.
///
/// # Panics
///
/// Panics if the spec does not resolve against the built-in registry.
pub fn run_suite_point(benchmark: Benchmark, spec: &str) -> RunReport {
    ltp_system::ExperimentSpec::builder(benchmark)
        .policy_spec(spec)
        .expect("bench policy spec resolves")
        .build()
        .run()
}

/// Arithmetic mean of a slice (the paper reports arithmetic averages for
/// accuracy percentages).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Prints the standard header naming the figure/table being regenerated.
pub fn print_header(what: &str, paper_ref: &str) {
    println!();
    println!("==============================================================================");
    println!("{what}");
    println!("reproduces: {paper_ref}");
    println!("machine: 32-node CC-NUMA, Table 1 configuration (scaled Table 2 inputs)");
    println!("==============================================================================");
}

/// Formats a percentage cell.
pub fn pct(v: f64) -> String {
    format!("{v:5.1}")
}

/// Times `f` with a calibrated repetition count and prints ns/iteration —
/// the in-tree replacement for the external micro-benchmark harness.
///
/// The loop doubles the iteration count until one timed batch exceeds
/// ~200 ms, then reports the per-iteration latency of the final batch.
pub fn microbench<F: FnMut()>(name: &str, mut f: F) {
    // Warm-up.
    for _ in 0..3 {
        black_box(&mut f)();
    }
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(&mut f)();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 200 || iters >= 1 << 30 {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<40} {ns:>14.1} ns/iter ({iters} iters)");
            return;
        }
        iters *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_handles_empty_and_values() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn pct_formats_width() {
        assert_eq!(pct(7.25), "  7.2");
    }

    #[test]
    fn microbench_reports_without_panicking() {
        let mut n = 0u64;
        microbench("noop", || n = n.wrapping_add(1));
        assert!(n > 0);
    }
}
