//! # `ltp-bench` — support code for the figure/table harness
//!
//! Each bench target under `benches/` regenerates one table or figure of the
//! paper (run `cargo bench -p ltp-bench --bench fig6_accuracy` etc., or all
//! of them with `cargo bench`). This library holds the shared scaffolding:
//! suite iteration, report formatting, and the geometric-mean/average
//! helpers the paper's summary numbers use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ltp_system::{ExperimentSpec, PolicyKind, RunReport};
use ltp_workloads::{Benchmark, WorkloadParams};

/// Runs one benchmark under one policy with the paper's 32-node machine.
pub fn run_suite_point(benchmark: Benchmark, policy: PolicyKind) -> RunReport {
    ExperimentSpec::isca00(benchmark, policy).run()
}

/// Runs one benchmark under one policy with custom workload parameters.
pub fn run_with_params(
    benchmark: Benchmark,
    policy: PolicyKind,
    workload: WorkloadParams,
) -> RunReport {
    let mut spec = ExperimentSpec::isca00(benchmark, policy);
    spec.workload = workload;
    spec.run()
}

/// Arithmetic mean of a slice (the paper reports arithmetic averages for
/// accuracy percentages).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Prints the standard header naming the figure/table being regenerated.
pub fn print_header(what: &str, paper_ref: &str) {
    println!();
    println!("==============================================================================");
    println!("{what}");
    println!("reproduces: {paper_ref}");
    println!("machine: 32-node CC-NUMA, Table 1 configuration (scaled Table 2 inputs)");
    println!("==============================================================================");
}

/// Formats a percentage cell.
pub fn pct(v: f64) -> String {
    format!("{v:5.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_handles_empty_and_values() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn pct_formats_width() {
        assert_eq!(pct(7.25), "  7.2");
    }
}
