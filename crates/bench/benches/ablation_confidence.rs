//! Confidence ablation (DESIGN.md §5.2–5.3): initial counter value,
//! premature penalty, and Shared-copy self-invalidation.
//!
//! The paper fires only on saturated two-bit counters (§4). This ablation
//! quantifies the selectivity/coverage trade-off: an eager predictor
//! (fresh entries already saturated) covers more but mispredicts more; a
//! conservative one (long training) misses coverage. The premature penalty
//! (weaken vs reset) controls how fast a misbehaving signature is silenced,
//! and `self_invalidate_shared = false` restricts speculation to dirty
//! copies only.

use ltp_bench::{mean, pct, print_header, SuiteSweep};
use ltp_core::{PredictorConfig, PrematurePenalty};

fn run_all(predictor: PredictorConfig) -> (f64, f64) {
    let sweep = SuiteSweep::with_predictor(&["ltp"], predictor);
    let pred: Vec<f64> = sweep
        .reports()
        .iter()
        .map(|r| r.metrics.predicted_pct())
        .collect();
    let mis: Vec<f64> = sweep
        .reports()
        .iter()
        .map(|r| r.metrics.mispredicted_pct())
        .collect();
    (mean(&pred), mean(&mis))
}

fn main() {
    print_header(
        "Ablation — confidence counters and speculation aggressiveness",
        "Lai & Falsafi, ISCA 2000, §4 (two-bit filtering)",
    );
    println!(
        "{:<34} {:>12} {:>10}",
        "configuration", "predicted%", "mispred%"
    );

    let base = PredictorConfig::default();
    let configs: [(&str, PredictorConfig); 5] = [
        ("default (init 2, reset, shared)", base),
        (
            "eager (init 3: no training)",
            PredictorConfig {
                initial_confidence: 3,
                ..base
            },
        ),
        (
            "conservative (init 0)",
            PredictorConfig {
                initial_confidence: 0,
                ..base
            },
        ),
        (
            "weaken on premature",
            PredictorConfig {
                premature_penalty: PrematurePenalty::Weaken,
                ..base
            },
        ),
        (
            "exclusive-only self-inv",
            PredictorConfig {
                self_invalidate_shared: false,
                ..base
            },
        ),
    ];

    for (name, cfg) in configs {
        let (p, m) = run_all(cfg);
        println!("{:<34} {:>12} {:>10}", name, pct(p), pct(m));
    }
    println!();
    println!("paper operating point: selective prediction — high coverage, ~3% premature");
}
