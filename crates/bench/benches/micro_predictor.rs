//! Microbenchmarks of the predictor hot paths: per-touch probe,
//! invalidation-time learning, and the DSI versioning hooks.
//!
//! The paper argues the LTP must be on-chip because every shared-memory
//! instruction consults it; these benches characterize the software model's
//! per-event cost (which bounds full-system simulation speed).

use ltp_bench::microbench;
use ltp_core::{
    BlockId, DsiPolicy, FillInfo, FillKind, LastPc, Pc, PerBlockLtp, PredictorConfig,
    SelfInvalidationPolicy, SignatureBits, Touch,
};
use std::hint::black_box;

fn fill_touch(block: u64, pc: u32) -> Touch {
    Touch {
        block: BlockId::new(block),
        pc: Pc::new(pc),
        is_write: false,
        exclusive: false,
        fill: Some(FillInfo {
            kind: FillKind::Demand,
            dir_version: 1,
            migratory_upgrade: false,
        }),
    }
}

fn hit_touch(block: u64, pc: u32) -> Touch {
    Touch {
        block: BlockId::new(block),
        pc: Pc::new(pc),
        is_write: false,
        exclusive: false,
        fill: None,
    }
}

/// One trained trace episode: fill + 3 hits + invalidation over 64 blocks.
fn episode<P: SelfInvalidationPolicy>(p: &mut P) {
    for b in 0..64u64 {
        p.on_touch(black_box(fill_touch(b, 0x4000)));
        for i in 0..3u32 {
            p.on_touch(black_box(hit_touch(b, 0x4010 + i * 8)));
        }
        p.on_invalidation(BlockId::new(b));
    }
}

fn main() {
    // Each episode closure necessarily constructs a fresh predictor (an
    // episode trains state, so reuse would change the measured path); the
    // ctor-only rows measure that per-iteration setup so the event cost is
    // episode − ctor for each predictor.
    println!("predictor construction only:");
    microbench("per_block_ltp_13b/ctor", || {
        black_box(PerBlockLtp::new(
            SignatureBits::PER_BLOCK_DEFAULT,
            16,
            PredictorConfig::default(),
        ));
    });
    microbench("last_pc/ctor", || {
        black_box(LastPc::with_config(16, PredictorConfig::default()));
    });
    microbench("dsi/ctor", || {
        black_box(DsiPolicy::new());
    });

    println!();
    println!("predictor episode (64 blocks × fill + 3 hits + invalidation):");
    microbench("per_block_ltp_13b/episode_64blocks", || {
        let mut p = PerBlockLtp::new(
            SignatureBits::PER_BLOCK_DEFAULT,
            16,
            PredictorConfig::default(),
        );
        episode(&mut p);
    });
    microbench("last_pc/episode_64blocks", || {
        let mut p = LastPc::with_config(16, PredictorConfig::default());
        episode(&mut p);
    });
    microbench("dsi/episode_64blocks", || {
        let mut p = DsiPolicy::new();
        episode(&mut p);
    });

    // A trained predictor processing hit touches (the common case the paper
    // wants filtered/buffered at L2).
    let mut p = PerBlockLtp::new(
        SignatureBits::PER_BLOCK_DEFAULT,
        16,
        PredictorConfig::default(),
    );
    for _ in 0..3 {
        episode(&mut p);
    }
    let mut i = 0u64;
    microbench("trained_ltp_touch", || {
        i += 1;
        black_box(p.on_touch(black_box(hit_touch(i % 64, 0x4010))));
    });
}
