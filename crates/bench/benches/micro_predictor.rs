//! Criterion microbenchmarks of the predictor hot paths: per-touch probe,
//! invalidation-time learning, and the DSI versioning hooks.
//!
//! The paper argues the LTP must be on-chip because every shared-memory
//! instruction consults it; these benches characterize the software model's
//! per-event cost (which bounds full-system simulation speed).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ltp_core::{
    BlockId, DsiPolicy, FillInfo, FillKind, LastPc, Pc, PerBlockLtp, PredictorConfig,
    SelfInvalidationPolicy, SignatureBits, Touch,
};
use std::hint::black_box;

fn fill_touch(block: u64, pc: u32) -> Touch {
    Touch {
        block: BlockId::new(block),
        pc: Pc::new(pc),
        is_write: false,
        exclusive: false,
        fill: Some(FillInfo {
            kind: FillKind::Demand,
            dir_version: 1,
            migratory_upgrade: false,
        }),
    }
}

fn hit_touch(block: u64, pc: u32) -> Touch {
    Touch {
        block: BlockId::new(block),
        pc: Pc::new(pc),
        is_write: false,
        exclusive: false,
        fill: None,
    }
}

/// One trained trace episode: fill + 3 hits + invalidation over 64 blocks.
fn episode<P: SelfInvalidationPolicy>(p: &mut P) {
    for b in 0..64u64 {
        p.on_touch(black_box(fill_touch(b, 0x4000)));
        for i in 0..3u32 {
            p.on_touch(black_box(hit_touch(b, 0x4010 + i * 8)));
        }
        p.on_invalidation(BlockId::new(b));
    }
}

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("predictor_episode_64blocks");
    group.bench_function("per_block_ltp_13b", |bench| {
        bench.iter_batched(
            || PerBlockLtp::new(SignatureBits::PER_BLOCK_DEFAULT, 16, PredictorConfig::default()),
            |mut p| episode(&mut p),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("last_pc", |bench| {
        bench.iter_batched(
            || LastPc::with_config(16, PredictorConfig::default()),
            |mut p| episode(&mut p),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("dsi", |bench| {
        bench.iter_batched(
            DsiPolicy::new,
            |mut p| episode(&mut p),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_steady_state_touches(c: &mut Criterion) {
    // A trained predictor processing hit touches (the common case the paper
    // wants filtered/buffered at L2).
    let mut p = PerBlockLtp::new(SignatureBits::PER_BLOCK_DEFAULT, 16, PredictorConfig::default());
    for _ in 0..3 {
        episode(&mut p);
    }
    c.bench_function("trained_ltp_touch", |bench| {
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            p.on_touch(black_box(hit_touch(i % 64, 0x4010)))
        })
    });
}

criterion_group!(benches, bench_predictors, bench_steady_state_touches);
criterion_main!(benches);
