//! Offline-predict throughput: what does skipping the machine buy?
//!
//! Three benchmarks are recorded to in-memory traces at the paper's
//! 32-node geometry, then each trace is drained twice through the paper's
//! LTP: once with the full cycle-accurate simulation (the `ltp run
//! --trace` path — directory protocol, network contention, protocol
//! engine occupancy) and once with the logical coherence replay (the
//! `ltp predict -t` path — same touches, fills, invalidations, and
//! verdicts, no cycles). Both paths execute the same recorded ops, so
//! ops/second is directly comparable and the wall-clock ratio is the
//! price of cycle accuracy.
//!
//! Results go to `BENCH_predict.json` at the repository root, one JSON
//! line per benchmark plus a meta line recording the best ratio against
//! the issue's ≥25× target. The measured number on this machine model is
//! well below that target and is recorded as-is: this repository's
//! simulator is itself a lightweight model (~1 µs/op — three orders of
//! magnitude faster than the cycle-accurate simulators of the paper's
//! era), so the headroom between "full simulation" and "pure table
//! updates" is structurally ~10×, not the ≥25× a slower simulator would
//! show. The differential tests (`tests/predict_equivalence.rs`) pin the
//! fast path's verdicts to the machine's regardless.
//!
//! ```sh
//! cargo bench -p ltp-bench --bench predict_throughput
//! ```

use std::time::Instant;

use std::fs::File;
use std::io::{BufWriter, Write as _};

use ltp_bench::print_header;
use ltp_core::{JsonObject, PolicyRegistry, PredictorConfig, SelfInvalidationPolicy};
use ltp_sim::{Cycle, StopReason};
use ltp_system::Machine;
use ltp_workloads::{replay, Benchmark, TraceWriter, WorkloadParams, WorkloadSource};

/// Baseline output at the repository root (cargo runs benches from the
/// package directory).
fn out_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_predict.json")
}

const NODES: u16 = 32;
const ACCEPTANCE: f64 = 25.0;

fn policies(n: u16) -> Vec<Box<dyn SelfInvalidationPolicy>> {
    let registry = PolicyRegistry::with_builtins();
    let factory = registry.parse("ltp").expect("builtin spec");
    (0..n)
        .map(|_| factory.build(PredictorConfig::default()))
        .collect()
}

fn main() {
    print_header(
        "Offline predict vs full simulation — the `ltp predict` fast path",
        "infrastructure benchmark (predict-path throughput; no paper analogue)",
    );
    println!("{NODES} nodes, ltp policy, recorded traces\n");
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>10} {:>12} {:>9}",
        "benchmark", "ops", "sim(s)", "sim-ops/s", "pred(s)", "pred-ops/s", "speedup"
    );

    let file = File::create(out_path()).expect("create BENCH_predict.json");
    let mut out = BufWriter::new(file);
    // Iterations sized so the *simulation* side runs for seconds — long
    // enough that setup noise is irrelevant on both paths.
    let suite = [
        (Benchmark::Em3d, 40u32),
        (Benchmark::Tomcatv, 60),
        (Benchmark::Ocean, 80),
    ];
    let mut best = 0.0f64;
    for (benchmark, iters) in suite {
        let params = WorkloadParams::quick(NODES, iters);

        // Record the benchmark to a trace — the object both paths drain.
        let mut writer = TraceWriter::new(benchmark.name(), params);
        let mut live = WorkloadSource::from(benchmark)
            .programs(&params)
            .expect("valid geometry");
        for (node, program) in live.iter_mut().enumerate() {
            writer.record_program(node as u16, program.as_mut());
        }
        let source = WorkloadSource::from(writer.finish());

        // Full simulation (`ltp run --trace`).
        let cfg = ltp_dsm::SystemConfig::builder()
            .nodes(NODES)
            .build()
            .expect("valid");
        let mut machine = Machine::new(
            cfg,
            policies(NODES),
            source.programs(&params).expect("valid geometry"),
        );
        machine.attach_core_metrics();
        let started = Instant::now();
        let summary = machine.run(Cycle::new(2_000_000_000));
        let sim_secs = started.elapsed().as_secs_f64();
        assert_ne!(summary.stop, StopReason::HorizonReached, "stuck");
        assert!(machine.all_finished());

        // Offline replay (`ltp predict -t`).
        let programs = source.programs(&params).expect("valid geometry");
        let mut offline = policies(NODES);
        let started = Instant::now();
        let report = replay(programs, &mut offline, false);
        let predict_secs = started.elapsed().as_secs_f64();

        let ops = report.ops;
        let sim_rate = ops as f64 / sim_secs;
        let predict_rate = ops as f64 / predict_secs;
        let speedup = sim_secs / predict_secs;
        best = best.max(speedup);
        println!(
            "{:<14} {:>10} {:>10.3} {:>12.0} {:>10.3} {:>12.0} {:>8.1}x",
            benchmark.name(),
            ops,
            sim_secs,
            sim_rate,
            predict_secs,
            predict_rate,
            speedup
        );
        let record = JsonObject::new()
            .field("benchmark", benchmark.name())
            .field("nodes", NODES)
            .field("iterations", u64::from(iters))
            .field("ops", ops)
            .field("sim_secs", sim_secs)
            .field("sim_ops_per_sec", sim_rate)
            .field("predict_secs", predict_secs)
            .field("predict_ops_per_sec", predict_rate)
            .field("speedup", speedup)
            .build();
        writeln!(out, "{}", record.render()).expect("write record");
    }
    let meta = JsonObject::new()
        .field("meta", "predict_throughput")
        .field("acceptance_speedup", ACCEPTANCE)
        .field("best_speedup", best)
        .field("pass", best >= ACCEPTANCE)
        .build();
    writeln!(out, "{}", meta.render()).expect("write meta");
    out.flush().expect("flush");

    println!();
    println!(
        "best speedup: {best:.1}x (target: >= {ACCEPTANCE:.0}x) -> {}",
        if best >= ACCEPTANCE {
            "PASS"
        } else {
            "BELOW TARGET"
        }
    );
    println!(
        "note: this repo's simulator is itself a lightweight model (~1 us/op);\n\
         the fast path is bounded by pure table-update cost, so the honest\n\
         ratio here is ~10x, not the >=25x a cycle-accurate simulator shows."
    );
    println!("baseline written to {}", out_path().display());
}
