//! Encoding ablation (DESIGN.md §5.1): the paper's truncated addition vs an
//! order-sensitive XOR-rotate mix.
//!
//! §3.2 argues truncated addition "randomizes the signature bits" well
//! enough; this ablation checks whether order sensitivity buys accuracy on
//! the suite. (Truncated addition is order-insensitive: `{a,b}` and `{b,a}`
//! collide. XOR-rotate distinguishes them at equal width.)

use ltp_bench::{mean, pct, print_header, SuiteSweep};
use ltp_workloads::Benchmark;

fn main() {
    print_header(
        "Ablation — signature encoding: truncated addition vs XOR-rotate",
        "Lai & Falsafi, ISCA 2000, §3.2 (encoding choice)",
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10}",
        "benchmark", "encoder", "predicted%", "mispred%"
    );

    let encoders = [("trunc-add", "ltp:bits=13"), ("xor-rot", "ltp-xor:bits=13")];
    let sweep = SuiteSweep::run(&[encoders[0].1, encoders[1].1]);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); encoders.len()];
    for benchmark in Benchmark::ALL {
        for (ei, (name, _)) in encoders.iter().enumerate() {
            let m = &sweep.report(benchmark, ei).metrics;
            println!(
                "{:<14} {:>10} {:>10} {:>10}",
                benchmark.name(),
                name,
                pct(m.predicted_pct()),
                pct(m.mispredicted_pct())
            );
            sums[ei].push(m.predicted_pct());
        }
    }
    println!();
    for (ei, (name, _)) in encoders.iter().enumerate() {
        println!("  {:<9} average predicted {}%", name, pct(mean(&sums[ei])));
    }
}
