//! Figure 9: execution-time speedup of DSI and LTP over the base DSM.
//!
//! Paper expectations: LTP averages +11% (best +30%), hurting at most one
//! application by <1%; DSI averages only +3% and *slows down* four of the
//! nine applications (bursty self-invalidation and prematures).

use ltp_bench::{print_header, SuiteSweep};
use ltp_workloads::Benchmark;

fn main() {
    print_header(
        "Figure 9 — speedup of speculative self-invalidation",
        "Lai & Falsafi, ISCA 2000, Figure 9",
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "benchmark", "base(cyc)", "dsi(cyc)", "ltp(cyc)", "dsi-spd", "ltp-spd"
    );

    let sweep = SuiteSweep::run(&["base", "dsi", "ltp"]);
    let mut dsi_speedups = Vec::new();
    let mut ltp_speedups = Vec::new();
    let mut dsi_slowdowns = 0u32;

    for benchmark in Benchmark::ALL {
        let base = &sweep.report(benchmark, 0).metrics;
        let dsi = &sweep.report(benchmark, 1).metrics;
        let ltp = &sweep.report(benchmark, 2).metrics;
        let s_dsi = dsi.speedup_vs(base);
        let s_ltp = ltp.speedup_vs(base);
        if s_dsi < 1.0 {
            dsi_slowdowns += 1;
        }
        dsi_speedups.push(s_dsi);
        ltp_speedups.push(s_ltp);
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>9.3} {:>9.3}",
            benchmark.name(),
            base.exec_cycles,
            dsi.exec_cycles,
            ltp.exec_cycles,
            s_dsi,
            s_ltp,
        );
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!(
        "averages: dsi {:.3} (paper 1.03), ltp {:.3} (paper 1.11)",
        avg(&dsi_speedups),
        avg(&ltp_speedups)
    );
    println!(
        "dsi slows down {dsi_slowdowns} of 9 applications (paper: 4 of 9); \
         ltp best {:.3} (paper 1.30)",
        ltp_speedups.iter().copied().fold(f64::MIN, f64::max)
    );
}
