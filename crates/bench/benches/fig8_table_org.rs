//! Figure 8: prediction accuracy of per-block vs global last-touch tables.
//!
//! The paper compares a 13-bit per-block organization (P) against a 30-bit
//! global organization (G): cross-block subtrace aliasing drops the global
//! table's average accuracy from 79% to 58% and raises mispredictions to as
//! much as 30% (tomcatv's outer/inner column traces being the canonical
//! aliasing pair). A geometry sweep is appended (the `ablation_global_geometry`
//! item of DESIGN.md §5): more sets/ways do not fix aliasing because the
//! interference is semantic (identical signatures), not capacity-driven.

use ltp_bench::{mean, pct, print_header, SuiteSweep};
use ltp_core::PolicyRegistry;
use ltp_system::SweepSpec;
use ltp_workloads::Benchmark;

fn main() {
    print_header(
        "Figure 8 — per-block (P, 13-bit) vs global (G, 30-bit) tables",
        "Lai & Falsafi, ISCA 2000, Figure 8 + Table 3 geometry ablation",
    );
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>10}",
        "benchmark", "org", "predicted%", "not-pred%", "mispred%"
    );

    let orgs = [("per-block", "ltp:bits=13"), ("global", "ltp-global")];
    let sweep = SuiteSweep::run(&[orgs[0].1, orgs[1].1]);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); orgs.len()];

    for benchmark in Benchmark::ALL {
        for (oi, (name, _)) in orgs.iter().enumerate() {
            let m = &sweep.report(benchmark, oi).metrics;
            println!(
                "{:<14} {:>10} {:>10} {:>10} {:>10}",
                benchmark.name(),
                name,
                pct(m.predicted_pct()),
                pct(m.not_predicted_pct()),
                pct(m.mispredicted_pct()),
            );
            sums[oi].push(m.predicted_pct());
        }
        println!();
    }
    println!("averages (paper: per-block 79%, global 58%):");
    for (oi, (name, _)) in orgs.iter().enumerate() {
        println!("  {:<9} predicted {}%", name, pct(mean(&sums[oi])));
    }

    // Geometry ablation: capacity does not cure cross-block aliasing.
    println!();
    println!("global-table geometry ablation (tomcatv, the §5.3 aliasing case):");
    println!(
        "{:>8} {:>5} {:>10} {:>10}",
        "sets", "ways", "predicted%", "mispred%"
    );
    let registry = PolicyRegistry::with_builtins();
    let geometries = [(512u32, 2u32), (2048, 4), (8192, 8)];
    let specs: Vec<String> = geometries
        .iter()
        .map(|(sets, ways)| format!("ltp-global:bits=30,sets={sets},ways={ways}"))
        .collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let reports = SweepSpec::new()
        .benchmark(Benchmark::Tomcatv)
        .policy_specs(&registry, &spec_refs)
        .expect("geometry specs resolve")
        .collect();
    for ((sets, ways), report) in geometries.iter().zip(&reports) {
        let m = &report.metrics;
        println!(
            "{:>8} {:>5} {:>10} {:>10}",
            sets,
            ways,
            pct(m.predicted_pct()),
            pct(m.mispredicted_pct())
        );
    }
}
