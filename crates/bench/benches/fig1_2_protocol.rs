//! Figures 1 & 2: protocol walkthroughs.
//!
//! * Figure 1 contrasts a remote read to an Exclusive block in the
//!   conventional DSM (4 network messages: invalidate + writeback before
//!   the reply) with the self-invalidating DSM (the block is already Idle
//!   at home: 2 messages).
//! * Figure 2 contrasts DSI's synchronization-boundary burst with LTP's
//!   per-block, last-touch-timed self-invalidation.
//!
//! This bench measures both effects with 3-node micro-scenarios: the
//! reader's observed miss latency with and without self-invalidation, and
//! the directory backlog produced by a bulk flush vs spread flushes.

use ltp_bench::print_header;
use ltp_core::{BlockId, NodeId, Pc};
use ltp_dsm::{Directory, Message, MsgKind, NetIface, ProtocolEngine, SystemConfig};
use ltp_sim::Cycle;

fn main() {
    print_header(
        "Figures 1 & 2 — protocol operations with and without self-invalidation",
        "Lai & Falsafi, ISCA 2000, Figures 1 and 2",
    );
    let cfg = SystemConfig::isca00();
    let home = NodeId::new(0);
    let writer = NodeId::new(3);
    let reader = NodeId::new(1);
    let block = BlockId::new(0);
    let _ = Pc::new(0); // PCs play no role at the protocol layer

    // --- Figure 1 left: conventional read to an Exclusive block ----------
    let mut dir = Directory::new(home);
    dir.process(Message::new(writer, home, block, MsgKind::GetX));
    let step = dir.process(Message::new(reader, home, block, MsgKind::GetS));
    let mut messages = step.sends.len(); // Inv to writer
    let step = dir.process(Message::new(
        writer,
        home,
        block,
        MsgKind::InvAck {
            had_copy: true,
            dirty_token: Some(1),
        },
    ));
    messages += step.sends.len() + 2; // + the GetS and the InvAck themselves
                                      // Latency: req hop + Inv hop + ack hop + reply hop + 2 directory visits.
    let four_hop = cfg.ni_occupancy() + cfg.net_latency() // GetS
        + cfg.dir_control() // lookup, Inv sent
        + cfg.ni_occupancy() + cfg.net_latency() // Inv
        + cfg.ni_occupancy() + cfg.net_latency() // writeback
        + cfg.dir_data_service() // collect + reply
        + cfg.ni_occupancy() + cfg.net_latency() // DataS
        + cfg.mem_access(); // fill
    println!("conventional read (Fig 1 left):  {messages} protocol messages, ≈{four_hop} latency");

    // --- Figure 1 right: the writer self-invalidated first ---------------
    let mut dir = Directory::new(home);
    dir.process(Message::new(writer, home, block, MsgKind::GetX));
    dir.process(Message::new(
        writer,
        home,
        block,
        MsgKind::SelfInvDirty { token: 1 },
    ));
    let step = dir.process(Message::new(reader, home, block, MsgKind::GetS));
    assert!(
        step.sends
            .iter()
            .any(|m| matches!(m.kind, MsgKind::DataS { token: 1, .. })),
        "the reader gets the written-back data directly"
    );
    let two_hop = cfg.remote_round_trip_estimate();
    println!("self-invalidated read (Fig 1 right): 2 protocol messages, ≈{two_hop} latency");
    println!(
        "invalidation removed from the critical path: ≈{} cycles saved per read",
        four_hop.saturating_sub(two_hop)
    );

    // --- Figure 2: burst vs spread self-invalidation ---------------------
    println!();
    let flushes = 24u64; // one DSI node flushing its candidate list
                         // DSI: all flushes hand over to the NI at the same instant.
    let mut ni = NetIface::new(cfg.ni_occupancy());
    let mut last = Cycle::ZERO;
    for _ in 0..flushes {
        last = ni.depart(Cycle::ZERO);
    }
    println!(
        "DSI burst  (Fig 2 left):  {flushes} self-invalidations at one sync point: \
         NI backlog {}, last departure {last}",
        ni.max_backlog()
    );
    // LTP: the same flushes spread across the computation.
    let mut ni = NetIface::new(cfg.ni_occupancy());
    let mut last = Cycle::ZERO;
    for i in 0..flushes {
        last = ni.depart(Cycle::new(i * 400));
    }
    println!(
        "LTP spread (Fig 2 right): {flushes} self-invalidations at last touches: \
         NI backlog {}, last departure {last}",
        ni.max_backlog()
    );

    // Engine-side view of the same burst.
    let mut engine = ProtocolEngine::new(cfg.pipeline_stages());
    for i in 0..flushes {
        let msg = Message::new(
            NodeId::new((i % 8) as u16 + 1),
            home,
            BlockId::new(i),
            MsgKind::SelfInvClean,
        );
        engine.enqueue(Cycle::ZERO, msg);
    }
    let mut now = Cycle::ZERO;
    loop {
        // `dequeue` returns the message's queueing delay, not the service
        // start — the start is the time the drain fires at.
        let at = engine.next_ready(now);
        if engine.dequeue(at).is_none() {
            break;
        }
        now = engine.begin_service(at, cfg.dir_control());
        if !engine.arm_next_drain() {
            break;
        }
    }
    println!(
        "directory engine after the burst: mean queueing {:.0} cycles over {} messages",
        engine.stats().queueing.mean_or_zero(),
        engine.stats().queueing.samples()
    );
}
