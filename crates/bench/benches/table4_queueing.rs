//! Table 4: average queueing and service time at the directory, and the
//! fraction of timely self-invalidations, for Base, DSI, and LTP.
//!
//! Paper expectations: DSI's bursty synchronization-triggered flushes raise
//! directory queueing by up to three orders of magnitude (em3d: 1 → 3283
//! cycles) while LTP's instruction-spread self-invalidations leave queueing
//! essentially unchanged; DSI self-invalidations arrive before the next
//! request ~79% of the time on average, LTP's >90% (except raytrace, whose
//! spinning contenders request almost immediately).

use ltp_bench::{print_header, SuiteSweep};
use ltp_workloads::Benchmark;

fn main() {
    print_header(
        "Table 4 — directory queueing/service time and self-invalidation timeliness",
        "Lai & Falsafi, ISCA 2000, Table 4",
    );
    println!(
        "{:<14} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "", "base", "base", "dsi", "dsi", "ltp", "ltp"
    );
    println!(
        "{:<14} {:>9} {:>9} | {:>9} {:>9} | {:>9} {:>9}",
        "benchmark", "queue", "service", "queue", "timely%", "queue", "timely%"
    );

    let sweep = SuiteSweep::run(&["base", "dsi", "ltp"]);
    for benchmark in Benchmark::ALL {
        let base = &sweep.report(benchmark, 0).metrics;
        let dsi = &sweep.report(benchmark, 1).metrics;
        let ltp = &sweep.report(benchmark, 2).metrics;
        println!(
            "{:<14} {:>9.0} {:>9.0} | {:>9.0} {:>8.0}% | {:>9.0} {:>8.0}%",
            benchmark.name(),
            base.dir_queueing.mean_or_zero(),
            base.dir_service.mean_or_zero(),
            dsi.dir_queueing.mean_or_zero(),
            dsi.timeliness_pct(),
            ltp.dir_queueing.mean_or_zero(),
            ltp.timeliness_pct(),
        );
    }
    println!();
    println!(
        "paper shape: DSI queueing ≫ base/LTP queueing (bursts at sync boundaries); \
         LTP timeliness >90% except raytrace (34%)"
    );
}
