//! Figure 6: fraction of invalidations accurately predicted, not predicted,
//! and mispredicted by DSI, Last-PC, and LTP (per-block, base signature).
//!
//! Paper expectations: DSI avg ≈ 47% predicted / 14% premature; Last-PC avg
//! ≈ 41% / 2%; LTP avg ≈ 79% (up to 98%) / 3%.

use ltp_bench::{mean, pct, print_header, SuiteSweep};
use ltp_workloads::Benchmark;

fn main() {
    print_header(
        "Figure 6 — prediction accuracy of DSI, Last-PC, and LTP",
        "Lai & Falsafi, ISCA 2000, Figure 6",
    );
    println!(
        "{:<14} {:>8} {:>10} {:>10} {:>10}",
        "benchmark", "policy", "predicted%", "not-pred%", "mispred%"
    );

    let specs = ["dsi", "last-pc", "ltp"];
    let sweep = SuiteSweep::run(&specs);
    let mut sums: Vec<Vec<f64>> = vec![Vec::new(); specs.len()];

    for benchmark in Benchmark::ALL {
        for (pi, sum) in sums.iter_mut().enumerate() {
            let report = sweep.report(benchmark, pi);
            let m = &report.metrics;
            println!(
                "{:<14} {:>8} {:>10} {:>10} {:>10}",
                benchmark.name(),
                report.policy,
                pct(m.predicted_pct()),
                pct(m.not_predicted_pct()),
                pct(m.mispredicted_pct()),
            );
            sum.push(m.predicted_pct());
        }
        println!();
    }

    println!("averages (paper: dsi 47%, last-pc 41%, ltp 79%):");
    for (pi, spec) in specs.iter().enumerate() {
        println!("  {:<8} predicted {}%", spec, pct(mean(&sums[pi])));
    }
}
