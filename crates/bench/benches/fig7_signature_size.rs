//! Figure 7: LTP prediction sensitivity to the signature size.
//!
//! The paper sweeps A=Base(30 bits), B=13, C=11, D=6 and finds 13 bits
//! sufficient for per-block tables, with accuracy degrading toward 6 bits
//! for the applications with large instruction footprints (appbt, dsmc,
//! ocean, unstructured) due to subtrace aliasing.

use ltp_bench::{mean, pct, print_header, SuiteSweep};
use ltp_workloads::Benchmark;

fn main() {
    print_header(
        "Figure 7 — LTP prediction sensitivity to signature size",
        "Lai & Falsafi, ISCA 2000, Figure 7 (A=30b 'Base', B=13b, C=11b, D=6b)",
    );
    println!(
        "{:<14} {:>5} {:>10} {:>10} {:>10}",
        "benchmark", "bits", "predicted%", "not-pred%", "mispred%"
    );

    let widths = [30u8, 13, 11, 6];
    let specs: Vec<String> = widths.iter().map(|b| format!("ltp:bits={b}")).collect();
    let spec_refs: Vec<&str> = specs.iter().map(String::as_str).collect();
    let sweep = SuiteSweep::run(&spec_refs);
    let mut per_width: Vec<Vec<f64>> = vec![Vec::new(); widths.len()];

    for benchmark in Benchmark::ALL {
        for (wi, &bits) in widths.iter().enumerate() {
            let m = &sweep.report(benchmark, wi).metrics;
            println!(
                "{:<14} {:>5} {:>10} {:>10} {:>10}",
                benchmark.name(),
                bits,
                pct(m.predicted_pct()),
                pct(m.not_predicted_pct()),
                pct(m.mispredicted_pct()),
            );
            per_width[wi].push(m.predicted_pct());
        }
        println!();
    }

    println!("average predicted by width (paper: 13 bits ≈ 30 bits, 6 bits degrades):");
    for (wi, &bits) in widths.iter().enumerate() {
        println!("  {:>2} bits: {}%", bits, pct(mean(&per_width[wi])));
    }
}
