//! Trace format v2 baseline: encoded density (v1 vs v2) and replay
//! throughput (buffered vs streaming) for all nine benchmarks at the
//! paper's 32-node geometry, written to `BENCH_trace_v2.json` as JSON
//! lines (one record per benchmark, then a `meta` record).
//!
//! This is the ROADMAP "trace compression" + "streaming replay"
//! measurement, and it enforces the acceptance target: v2 loop compression
//! must reach ≤ 0.5 B/op on at least 5 of the 9 benchmarks.
//!
//! ```sh
//! cargo bench -p ltp-bench --bench trace_v2
//! ```

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::sync::Arc;
use std::time::Instant;

use ltp_bench::print_header;
use ltp_workloads::trace::TRACE_VERSION_V1;
use ltp_workloads::{collect_ops, Benchmark, StreamingTrace, Trace, WorkloadParams};

/// The baseline lives at the repository root regardless of the bench
/// process's working directory (cargo runs benches from the package dir).
fn out_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_trace_v2.json")
}

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ltp-bench-v2-{}-{tag}.ltrace", std::process::id()))
}

/// Milliseconds to drain every node's program once.
fn drain_ms(mut programs: Vec<Box<dyn ltp_workloads::Program>>) -> (f64, u64) {
    let started = Instant::now();
    let mut ops = 0u64;
    for program in &mut programs {
        while program.next_op().is_some() {
            ops += 1;
        }
    }
    (started.elapsed().as_secs_f64() * 1e3, ops)
}

fn main() {
    print_header(
        "Trace format v2 — density and replay throughput, 32 nodes",
        "infrastructure benchmark (ROADMAP trace-compression/streaming items)",
    );

    let params = WorkloadParams::default(); // 32 nodes, scaled default iterations
    let started = Instant::now();
    let path = out_path();
    let file = File::create(&path).expect("create BENCH_trace_v2.json");
    let mut out = BufWriter::new(file);

    println!(
        "{:<13} {:>10} {:>9} {:>9} {:>7} {:>7} {:>7} {:>9} {:>10} {:>10} {:>10}",
        "benchmark",
        "ops",
        "v1 bytes",
        "v2 bytes",
        "v1 B/op",
        "v2 B/op",
        "ratio",
        "repeats",
        "synth(ms)",
        "buf(ms)",
        "stream(ms)"
    );

    let mut dense = 0usize;
    for benchmark in Benchmark::ALL {
        let trace = Arc::new(Trace::record(benchmark, &params));
        let ops = trace.total_ops();

        let mut v1 = Vec::new();
        trace
            .write_to_version(&mut v1, TRACE_VERSION_V1)
            .expect("v1 encodes");
        let mut v2 = Vec::new();
        trace.write_to(&mut v2).expect("v2 encodes");

        let file_path = scratch(benchmark.name());
        trace.save(&file_path).expect("saves");
        let streaming = Arc::new(StreamingTrace::open(&file_path).expect("opens"));

        // Fidelity gate before timing: streamed ops == recorded ops.
        {
            let mut programs = StreamingTrace::programs(&streaming).expect("programs");
            for (node, program) in programs.iter_mut().enumerate() {
                assert_eq!(
                    collect_ops(program.as_mut()),
                    trace.streams()[node],
                    "{benchmark} node {node}: streamed ops differ"
                );
            }
        }

        // Throughput: drain the op streams through each path (synthesis,
        // buffered decode cursors, incremental file decode). Warm once.
        let synth = |p: &WorkloadParams| benchmark.programs(p);
        drain_ms(synth(&params));
        let (synth_ms, n0) = drain_ms(synth(&params));
        let (buffered_ms, n1) = drain_ms(Trace::programs(&trace));
        let (stream_ms, n2) = drain_ms(StreamingTrace::programs(&streaming).expect("programs"));
        assert!(n0 == ops && n1 == ops && n2 == ops, "op counts diverge");
        std::fs::remove_file(&file_path).ok();

        let v1_bpo = v1.len() as f64 / ops as f64;
        let v2_bpo = v2.len() as f64 / ops as f64;
        if v2_bpo <= 0.5 {
            dense += 1;
        }
        println!(
            "{:<13} {:>10} {:>9} {:>9} {:>7.2} {:>7.2} {:>6.1}x {:>9} {:>10.2} {:>10.2} {:>10.2}",
            benchmark.name(),
            ops,
            v1.len(),
            v2.len(),
            v1_bpo,
            v2_bpo,
            v1.len() as f64 / v2.len() as f64,
            streaming.repeat_blocks(),
            synth_ms,
            buffered_ms,
            stream_ms
        );
        writeln!(
            out,
            "{{\"benchmark\":\"{}\",\"nodes\":{},\"ops\":{ops},\
             \"v1_bytes\":{},\"v2_bytes\":{},\
             \"v1_bytes_per_op\":{v1_bpo:.4},\"v2_bytes_per_op\":{v2_bpo:.4},\
             \"repeat_blocks\":{},\"max_window_ops\":{},\
             \"drain_synth_ms\":{synth_ms:.3},\"drain_buffered_ms\":{buffered_ms:.3},\
             \"drain_streaming_ms\":{stream_ms:.3}}}",
            benchmark.name(),
            params.nodes,
            v1.len(),
            v2.len(),
            streaming.repeat_blocks(),
            streaming.max_window(),
        )
        .expect("write record");
    }

    // Acceptance: ≤ 0.5 B/op on at least 5 of the 9 benchmarks.
    assert!(
        dense >= 5,
        "only {dense} of 9 benchmarks reached <= 0.5 B/op"
    );

    let elapsed = started.elapsed().as_secs_f64();
    writeln!(
        out,
        "{{\"meta\":\"trace_v2\",\"nodes\":{},\"dense_benchmarks\":{dense},\
         \"target_bytes_per_op\":0.5,\"seconds\":{elapsed:.3}}}",
        params.nodes
    )
    .expect("append meta record");
    out.flush().expect("flush BENCH_trace_v2.json");
    println!(
        "\n{dense}/9 benchmarks at <= 0.5 B/op; wrote {} in {elapsed:.2}s",
        path.display()
    );
}
