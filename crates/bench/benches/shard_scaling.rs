//! Shard-scaling baseline: what does `--shards` buy on one long run?
//!
//! The three longest benchmarks run at a 128-node geometry on 1, 2, 4, and
//! 8 shards. Each configuration is executed twice — once on worker threads
//! (the production path) and once single-threaded via
//! [`Machine::run_single_threaded`] (every shard's window unpreempted on
//! the calling thread) — asserting both produce metrics equal to the
//! serial run's (the bit-identity contract). Two speedups are recorded:
//!
//! * **wall** — serial wall-clock / threaded-run wall-clock. The
//!   end-to-end number, but it only measures the engine when the host has
//!   at least one free core per shard; below that, threads time-slice and
//!   wall speedup is bounded by 1 whatever the engine does.
//! * **critical-path** — serial busy time / max per-shard busy time, from
//!   [`Machine::shard_busy_ns`] of the *single-threaded* run, where
//!   per-shard busy time is exact. This is the speedup the partition
//!   supports once enough cores exist — Brent's bound measured, not
//!   modeled — and the number that diagnoses imbalance (one fat shard
//!   caps it).
//!
//! Results go to `BENCH_shard.json` at the repository root, one JSON line
//! per (benchmark, shard count) plus a meta line recording the host core
//! count and the acceptance verdict: **≥2× speedup at 4 shards on at least
//! one benchmark**, judged on wall clock when the host has ≥4 cores and on
//! the critical path otherwise (the committed baseline notes which).
//!
//! ```sh
//! cargo bench -p ltp-bench --bench shard_scaling
//! ```

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::time::Instant;

use ltp_bench::print_header;
use ltp_core::{JsonObject, PolicyRegistry, PredictorConfig};
use ltp_sim::{Cycle, StopReason};
use ltp_system::{Machine, Metrics};
use ltp_workloads::{Benchmark, WorkloadParams, WorkloadSource};

/// Baseline output at the repository root (cargo runs benches from the
/// package directory).
fn out_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_shard.json")
}

const NODES: u16 = 128;
const SHARDS: [usize; 4] = [1, 2, 4, 8];

fn build(benchmark: Benchmark, iters: u32, shards: usize) -> Machine {
    let registry = PolicyRegistry::with_builtins();
    let factory = registry.parse("ltp").expect("builtin spec");
    let params = WorkloadParams::quick(NODES, iters);
    let cfg = ltp_dsm::SystemConfig::builder()
        .nodes(NODES)
        .build()
        .expect("valid");
    let policies = (0..NODES)
        .map(|_| factory.build(PredictorConfig::default()))
        .collect();
    let programs = WorkloadSource::from(benchmark)
        .programs(&params)
        .expect("valid geometry");
    let mut machine = Machine::with_shards(cfg, policies, programs, shards);
    machine.attach_core_metrics();
    machine
}

/// One timed run: wall seconds, per-shard busy seconds, final metrics.
fn one_run(
    benchmark: Benchmark,
    iters: u32,
    shards: usize,
    single_threaded: bool,
) -> (f64, Vec<f64>, Metrics) {
    let mut machine = build(benchmark, iters, shards);
    let horizon = Cycle::new(2_000_000_000);
    let started = Instant::now();
    let summary = if single_threaded {
        machine.run_single_threaded(horizon)
    } else {
        machine.run(horizon)
    };
    let wall = started.elapsed().as_secs_f64();
    assert_ne!(summary.stop, StopReason::HorizonReached, "stuck");
    let busy = machine
        .shard_busy_ns()
        .into_iter()
        .map(|ns| ns as f64 / 1e9)
        .collect();
    let (metrics, _) = machine.finish();
    (wall, busy, metrics.expect("core metrics attached"))
}

fn main() {
    print_header(
        "Shard scaling — one machine split across worker threads",
        "infrastructure benchmark (sharded-engine acceptance; no paper analogue)",
    );
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("{NODES} nodes, ltp policy, host cores: {host_cores}\n");
    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "benchmark", "shards", "wall(s)", "busy-max", "busy-sum", "wall-spdup", "cp-spdup"
    );

    let file = File::create(out_path()).expect("create BENCH_shard.json");
    let mut out = BufWriter::new(file);
    // Iteration counts chosen so each serial run is seconds, not millis —
    // long enough that per-window barrier overhead is amortized the way a
    // real giant run amortizes it.
    let suite = [
        (Benchmark::Em3d, 60u32),
        (Benchmark::Tomcatv, 100),
        (Benchmark::Ocean, 160),
    ];
    // Best speedup observed at 4 shards, by each metric.
    let mut best_wall_at_4 = 0.0f64;
    let mut best_cp_at_4 = 0.0f64;
    for (benchmark, iters) in suite {
        let mut serial: Option<(f64, f64, Metrics)> = None;
        for shards in SHARDS {
            // Threaded run: end-to-end wall clock (the production path).
            let (wall, _, metrics) = one_run(benchmark, iters, shards, false);
            // Single-threaded run: exact per-shard work for the critical
            // path (and a second bit-identity check of the same partition).
            let (_, busy, st_metrics) = one_run(benchmark, iters, shards, true);
            assert_eq!(metrics, st_metrics, "threaded vs single-threaded");
            let busy_max = busy.iter().copied().fold(0.0, f64::max);
            let busy_sum: f64 = busy.iter().sum();
            let (serial_wall, serial_busy, baseline) =
                serial.get_or_insert_with(|| (wall, busy_sum, metrics.clone()));
            assert_eq!(
                metrics, *baseline,
                "{benchmark} at {shards} shards diverged from serial"
            );
            let wall_speedup = *serial_wall / wall;
            let cp_speedup = *serial_busy / busy_max;
            if shards == 4 {
                best_wall_at_4 = best_wall_at_4.max(wall_speedup);
                best_cp_at_4 = best_cp_at_4.max(cp_speedup);
            }
            println!(
                "{:<14} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>11.2}x {:>9.2}x",
                benchmark.name(),
                shards,
                wall,
                busy_max,
                busy_sum,
                wall_speedup,
                cp_speedup
            );
            let record = JsonObject::new()
                .field("benchmark", benchmark.name())
                .field("nodes", NODES)
                .field("iterations", u64::from(iters))
                .field("shards", shards as u64)
                .field("wall_secs", wall)
                .field("busy_secs_max", busy_max)
                .field("busy_secs_sum", busy_sum)
                .field("wall_speedup", wall_speedup)
                .field("critical_path_speedup", cp_speedup)
                .field("identical_to_serial", true)
                .build();
            writeln!(out, "{}", record.render()).expect("write record");
        }
    }
    // The acceptance verdict: wall clock is the metric when the host can
    // actually run 4 shards at once; on smaller hosts wall-clock measures
    // the scheduler, not the engine, so the critical path stands in.
    let (metric, best_at_4) = if host_cores >= 4 {
        ("wall", best_wall_at_4)
    } else {
        ("critical_path", best_cp_at_4)
    };
    let meta = JsonObject::new()
        .field("meta", "shard_scaling")
        .field("host_cores", host_cores as u64)
        .field("acceptance_speedup_at_4", 2.0)
        .field("speedup_metric", metric)
        .field("best_speedup_at_4", best_at_4)
        .field("best_wall_speedup_at_4", best_wall_at_4)
        .field("best_critical_path_speedup_at_4", best_cp_at_4)
        .field("pass", best_at_4 >= 2.0)
        .build();
    writeln!(out, "{}", meta.render()).expect("write meta");
    out.flush().expect("flush");

    println!();
    println!(
        "best speedup at 4 shards ({metric}): {best_at_4:.2}x (acceptance: >= 2x) -> {}",
        if best_at_4 >= 2.0 { "PASS" } else { "FAIL" }
    );
    println!("baseline written to {}", out_path().display());
}
