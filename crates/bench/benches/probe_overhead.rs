//! Probe-API overhead baseline: what does observing the event stream cost?
//!
//! Three configurations of the same machine run are timed:
//!
//! * **no-probe** — nothing attached; the machine runs the protocol and
//!   collects *no* metrics (the floor the event emission must not sink);
//! * **core** — the default stack: just the statically-dispatched
//!   [`CoreMetricsProbe`] every `ExperimentSpec` run attaches;
//! * **stack3** — core + `per-node` + `hist:self-inv-lead` through the
//!   dynamic probe list;
//! * **check** — core + the [`CoherenceChecker`] sanitizer, the `--check`
//!   configuration of a production run.
//!
//! Results go to `BENCH_probes.json` at the repository root. Two acceptance
//! bars are checked and printed: **< 2% suite-mean overhead for the default
//! stack** (core vs no-probe) and **< 5% suite-mean overhead for the
//! sanitizer** (check vs core — the cost `--check` adds on top of what a
//! normal run already pays). The sanitizer bar is the bar for the probe
//! *pipeline*, not for the checker's compute: dynamic probes run on an
//! observer thread that overlaps the simulation, so on a multi-core host
//! the simulation pays only the log handoff. On a **single-CPU host** the
//! sink falls back to inline replay (there is nothing to overlap with) and
//! the measured delta is the checker's full compute — the run records that
//! number honestly, tags it `check_mode:"inline"`, and reports the < 5%
//! bar as not exercised rather than failed. Each repetition times the four
//! configurations back-to-back and the overhead is the interquartile mean
//! of the per-repetition ratios, averaged across the suite — per-benchmark
//! numbers are printed with their ± spreads, which on a shared host
//! routinely exceed the bar itself (hence the suite-level acceptance).
//!
//! ```sh
//! cargo bench -p ltp-bench --bench probe_overhead
//! ```

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::time::Instant;

use ltp_bench::print_header;
use ltp_core::{JsonObject, PolicyRegistry, PredictorConfig};
use ltp_sim::{Cycle, StopReason};
use ltp_system::probes::{PerNodeProbe, SelfInvLeadProbe};
use ltp_system::{CoherenceChecker, Machine};
use ltp_workloads::{Benchmark, WorkloadParams, WorkloadSource};

/// Baseline output at the repository root (cargo runs benches from the
/// package directory).
fn out_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_probes.json")
}

/// One benchmark configuration heavy enough to time stably (tens of
/// milliseconds, millions of events) but quick enough for many repetitions.
const NODES: u16 = 32;
const ITERS: u32 = 32;
const REPS: usize = 31;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Attach {
    None,
    Core,
    Stack3,
    Check,
}

/// Builds and drains one machine, returning the wall-clock seconds.
fn one_run(benchmark: Benchmark, attach: Attach) -> f64 {
    let registry = PolicyRegistry::with_builtins();
    let factory = registry.parse("ltp").expect("builtin spec");
    let params = WorkloadParams::quick(NODES, ITERS);
    let cfg = ltp_dsm::SystemConfig::builder()
        .nodes(NODES)
        .build()
        .expect("valid");
    let policies = (0..NODES)
        .map(|_| factory.build(PredictorConfig::default()))
        .collect();
    let programs = WorkloadSource::from(benchmark)
        .programs(&params)
        .expect("valid geometry");
    let mut machine = Machine::new(cfg, policies, programs);
    match attach {
        Attach::None => {}
        Attach::Core => machine.attach_core_metrics(),
        Attach::Stack3 => {
            machine.attach_core_metrics();
            machine.attach_probe(Box::new(PerNodeProbe::new(NODES)));
            machine.attach_probe(Box::new(SelfInvLeadProbe::new()));
        }
        Attach::Check => {
            machine.attach_core_metrics();
            machine.attach_probe(Box::new(CoherenceChecker::new(
                NODES,
                ltp_dsm::DirectoryKind::Full,
                false,
            )));
        }
    }
    let started = Instant::now();
    let summary = machine.run(Cycle::new(2_000_000_000));
    assert_ne!(summary.stop, StopReason::HorizonReached, "stuck");
    let elapsed = started.elapsed().as_secs_f64();
    // Consume the probes so their work cannot be optimized away — and
    // sanity-check the core path is live when attached.
    let (metrics, sections) = machine.finish();
    match attach {
        Attach::None => assert!(metrics.is_none() && sections.is_empty()),
        Attach::Core => assert!(metrics.expect("core attached").exec_cycles > 0),
        Attach::Stack3 => assert_eq!(sections.len(), 2),
        Attach::Check => {
            let section = sections.iter().find(|s| s.name == "check").expect("check");
            assert!(section.data.render().contains("\"violations\":0"));
        }
    }
    elapsed
}

/// Paired measurement: each repetition times the three configurations
/// back-to-back (no-probe, core, stack3) so machine drift hits all of a
/// repetition's runs alike, the overhead estimate is the *interquartile
/// mean of the per-repetition ratios* (robust to interference outliers,
/// more sample-efficient than a plain median), and the spread of the
/// middle half is reported alongside so a noisy host is visible in the
/// baseline instead of hiding in a single number.
struct Paired {
    none: f64,
    core: f64,
    stack: f64,
    check: f64,
    core_overhead: f64,
    core_spread: f64,
    stack_overhead: f64,
    /// check vs *core* — what `--check` adds on top of the default stack.
    check_overhead: f64,
}

/// Interquartile mean and half-spread (Q3−Q1)/2 of `samples`.
fn iqm_spread(samples: &mut [f64]) -> (f64, f64) {
    samples.sort_by(f64::total_cmp);
    let n = samples.len();
    let (q1, q3) = (n / 4, n - n / 4);
    let mid = &samples[q1..q3];
    let iqm = mid.iter().sum::<f64>() / mid.len() as f64;
    (iqm, (samples[q3 - 1] - samples[q1]) / 2.0)
}

fn measure(benchmark: Benchmark) -> Paired {
    let mut none = f64::INFINITY;
    let mut core = f64::INFINITY;
    let mut stack = f64::INFINITY;
    let mut check = f64::INFINITY;
    let mut core_ratio = Vec::with_capacity(REPS);
    let mut stack_ratio = Vec::with_capacity(REPS);
    let mut check_ratio = Vec::with_capacity(REPS);
    // Warm-up: touch every configuration once before timing counts.
    for attach in [Attach::None, Attach::Core, Attach::Stack3, Attach::Check] {
        one_run(benchmark, attach);
    }
    for _ in 0..REPS {
        let n = one_run(benchmark, Attach::None);
        let c = one_run(benchmark, Attach::Core);
        let s = one_run(benchmark, Attach::Stack3);
        let k = one_run(benchmark, Attach::Check);
        none = none.min(n);
        core = core.min(c);
        stack = stack.min(s);
        check = check.min(k);
        core_ratio.push(c / n);
        stack_ratio.push(s / n);
        check_ratio.push(k / c);
    }
    let (core_iqm, core_spread) = iqm_spread(&mut core_ratio);
    let (stack_iqm, _) = iqm_spread(&mut stack_ratio);
    let (check_iqm, _) = iqm_spread(&mut check_ratio);
    Paired {
        none,
        core,
        stack,
        check,
        core_overhead: core_iqm - 1.0,
        core_spread,
        stack_overhead: stack_iqm - 1.0,
        check_overhead: check_iqm - 1.0,
    }
}

fn main() {
    print_header(
        "Probe-API overhead — no-probe vs core metrics vs 3-probe stack vs sanitizer",
        "infrastructure benchmark (probe redesign acceptance; no paper analogue)",
    );
    println!(
        "{NODES} nodes × {ITERS} iterations, ltp policy, paired medians of {REPS} repetitions\n"
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>10}",
        "benchmark",
        "no-probe(s)",
        "core(s)",
        "stack3(s)",
        "check(s)",
        "core ovh",
        "stack ovh",
        "check ovh"
    );

    let file = File::create(out_path()).expect("create BENCH_probes.json");
    let mut out = BufWriter::new(file);
    let suite = [Benchmark::Em3d, Benchmark::Tomcatv, Benchmark::Moldyn];
    let mut overheads = Vec::with_capacity(suite.len());
    let mut check_overheads = Vec::with_capacity(suite.len());
    for benchmark in suite {
        let paired = measure(benchmark);
        overheads.push(paired.core_overhead);
        check_overheads.push(paired.check_overhead);
        println!(
            "{:<14} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>6.2}%±{:<4.2} {:>9.2}% {:>9.2}%",
            benchmark.name(),
            paired.none,
            paired.core,
            paired.stack,
            paired.check,
            paired.core_overhead * 100.0,
            paired.core_spread * 100.0,
            paired.stack_overhead * 100.0,
            paired.check_overhead * 100.0
        );
        let record = JsonObject::new()
            .field("benchmark", benchmark.name())
            .field("nodes", NODES)
            .field("iterations", u64::from(ITERS))
            .field("reps", REPS as u64)
            .field("no_probe_secs", paired.none)
            .field("core_secs", paired.core)
            .field("stack3_secs", paired.stack)
            .field("check_secs", paired.check)
            .field("core_overhead_pct", paired.core_overhead * 100.0)
            .field("core_overhead_spread_pct", paired.core_spread * 100.0)
            .field("stack3_overhead_pct", paired.stack_overhead * 100.0)
            .field("check_overhead_pct", paired.check_overhead * 100.0)
            .build();
        writeln!(out, "{}", record.render()).expect("write record");
    }
    // The acceptance metric is the *suite mean*: per-benchmark ratios carry
    // the host's scheduling noise (the printed ± spreads routinely exceed
    // the 2% bar itself), while averaging the paired ratios across the
    // suite keeps the estimate honest and resolvable.
    let mean_core_overhead = overheads.iter().sum::<f64>() / overheads.len() as f64;
    let mean_check_overhead = check_overheads.iter().sum::<f64>() / check_overheads.len() as f64;
    // On a single-CPU host dynamic probes replay inline (no observer thread
    // to overlap with), so the check delta is the sanitizer's compute, not
    // the pipeline cost the < 5% bar is about. Record the mode so the
    // committed number is interpretable.
    let host_parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let observer_mode = host_parallelism > 1;
    let check_pass = mean_check_overhead < 0.05;
    let pass = mean_core_overhead < 0.02 && (check_pass || !observer_mode);
    let meta = JsonObject::new()
        .field("meta", "probe_overhead")
        .field("host_parallelism", host_parallelism as u64)
        .field(
            "check_mode",
            if observer_mode { "observer" } else { "inline" },
        )
        .field("acceptance_mean_core_overhead_pct", 2.0)
        .field("mean_core_overhead_pct", mean_core_overhead * 100.0)
        .field("acceptance_mean_check_overhead_pct", 5.0)
        .field("mean_check_overhead_pct", mean_check_overhead * 100.0)
        .field("check_bar_exercised", observer_mode)
        .field("pass", pass)
        .build();
    writeln!(out, "{}", meta.render()).expect("write meta");
    out.flush().expect("flush");

    println!();
    println!(
        "suite-mean core-metrics overhead: {:.2}% (acceptance: < 2%) -> {}",
        mean_core_overhead * 100.0,
        if mean_core_overhead < 0.02 {
            "PASS"
        } else {
            "FAIL"
        }
    );
    if observer_mode {
        println!(
            "suite-mean sanitizer overhead (check vs core, observer mode): {:.2}% \
             (acceptance: < 5%) -> {}",
            mean_check_overhead * 100.0,
            if check_pass { "PASS" } else { "FAIL" }
        );
    } else {
        println!(
            "suite-mean sanitizer overhead (check vs core, INLINE — host has 1 CPU): {:.2}%",
            mean_check_overhead * 100.0
        );
        println!(
            "  < 5% bar not exercised: it bounds the observer-thread pipeline, which needs \
             a second CPU; inline replay exposes the checker's full compute"
        );
    }
    println!("baseline written to {}", out_path().display());
}
