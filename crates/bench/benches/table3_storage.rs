//! Table 3: number of last-touch signature entries and per-block storage
//! overhead for the per-block and global organizations.
//!
//! Paper expectations: per-block tables average 2.8 entries/block ≈ 7 bytes
//! per actively-shared block (13-bit signatures + 2-bit counters + the
//! current-signature register); the global table drops entries to 0.8/block
//! but, needing 30-bit signatures, only reaches ≈6 bytes.

use ltp_bench::{print_header, SuiteSweep};
use ltp_workloads::Benchmark;

fn main() {
    print_header(
        "Table 3 — signature entries (ent) and overhead bytes (ovh) per block",
        "Lai & Falsafi, ISCA 2000, Table 3",
    );
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "perblk-ent", "perblk-ovh", "global-ent", "global-ovh"
    );

    let sweep = SuiteSweep::run(&["ltp:bits=13", "ltp-global"]);
    let mut pb_ent = Vec::new();
    let mut pb_ovh = Vec::new();
    let mut gl_ent = Vec::new();
    let mut gl_ovh = Vec::new();

    for benchmark in Benchmark::ALL {
        let pb = &sweep.report(benchmark, 0).metrics.storage;
        let gl = &sweep.report(benchmark, 1).metrics.storage;
        println!(
            "{:<14} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            benchmark.name(),
            pb.entries_per_block(),
            pb.overhead_bytes_per_block(),
            gl.entries_per_block(),
            gl.overhead_bytes_per_block(),
        );
        pb_ent.push(pb.entries_per_block());
        pb_ovh.push(pb.overhead_bytes_per_block());
        gl_ent.push(gl.entries_per_block());
        gl_ovh.push(gl.overhead_bytes_per_block());
    }

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!(
        "averages: per-block {:.1} ent / {:.1} B (paper 2.8 / 7); \
         global {:.1} ent / {:.1} B (paper 0.8 / 6)",
        avg(&pb_ent),
        avg(&pb_ovh),
        avg(&gl_ent),
        avg(&gl_ovh)
    );
}
