//! Directory-organization scaling baseline: every Table 2 benchmark at
//! 64/128/256 nodes under the three sharer representations (`full`,
//! `coarse:4`, `ptr:4`), written to `BENCH_directory.json` as JSON lines
//! (one record per run, then a `meta` record with the wall-clock).
//!
//! This is the ROADMAP "larger geometries" measurement: where does the
//! exact full map stop being free, and what do coarse vectors / limited
//! pointers pay in over-invalidation at each machine size?
//!
//! ```sh
//! cargo bench -p ltp-bench --bench dir_scaling
//! ```

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::time::Instant;

use ltp_bench::print_header;
use ltp_core::PolicyRegistry;
use ltp_dsm::DirectoryKind;
use ltp_system::{JsonLinesSink, SweepSpec};
use ltp_workloads::WorkloadParams;

/// The baseline lives at the repository root regardless of the bench
/// process's working directory (cargo runs benches from the package dir).
fn out_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_directory.json")
}

/// Iterations are pinned (rather than per-benchmark defaults) so the
/// baseline stays comparable across machine sizes and finishes in tens of
/// seconds; the sharing *patterns* per iteration are what scale with nodes.
const ITERS: u32 = 6;

fn main() {
    print_header(
        "Directory sharer-representation scaling — 64/128/256 nodes",
        "infrastructure benchmark (ROADMAP larger-geometries item; no paper analogue)",
    );

    let registry = PolicyRegistry::with_builtins();
    let dirs = [
        DirectoryKind::Full,
        DirectoryKind::Coarse { cluster: 4 },
        DirectoryKind::LimitedPtr { pointers: 4 },
    ];
    let sweep = SweepSpec::new()
        .all_benchmarks()
        .policy_specs(&registry, &["ltp:bits=13"])
        .expect("builtin spec")
        .geometry(WorkloadParams::quick(64, ITERS))
        .geometry(WorkloadParams::quick(128, ITERS))
        .geometry(WorkloadParams::quick(256, ITERS))
        .directories(dirs);
    let runs = sweep.len();

    let started = Instant::now();
    let path = out_path();
    let file = File::create(&path).expect("create BENCH_directory.json");
    let mut sink = JsonLinesSink::new(BufWriter::new(file));
    let reports = sweep.execute(&mut sink);
    let elapsed = started.elapsed().as_secs_f64();
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!("{runs} runs in {elapsed:.3}s ({workers} workers)\n");

    // Aggregate per (nodes, directory): execution time and over-invalidation
    // across the whole suite, full-map-relative.
    let mut agg: BTreeMap<(u16, String), (u64, u64, u64, u64)> = BTreeMap::new();
    for r in &reports {
        let key = (r.workload.nodes, r.directory.to_string());
        let e = agg.entry(key).or_default();
        e.0 += r.metrics.exec_cycles;
        e.1 += r.metrics.invalidations_sent;
        e.2 += r.metrics.extra_invalidations;
        e.3 += r.metrics.broadcast_overflows;
    }
    println!(
        "{:>6} {:<10} {:>14} {:>10} {:>11} {:>11} {:>10}",
        "nodes", "dir", "sum exec(cyc)", "vs full", "inv sent", "extra inv", "overflows"
    );
    for nodes in [64u16, 128, 256] {
        let full_exec = agg
            .get(&(nodes, "full".to_string()))
            .map_or(0, |e| e.0)
            .max(1);
        for d in &dirs {
            let (exec, inv, extra, bcast) = agg[&(nodes, d.to_string())];
            println!(
                "{:>6} {:<10} {:>14} {:>9.3}x {:>11} {:>11} {:>10}",
                nodes,
                d.to_string(),
                exec,
                exec as f64 / full_exec as f64,
                inv,
                extra,
                bcast
            );
        }
    }

    // Full map must never over-invalidate under these (policy-driven) runs'
    // invariants at suite level: extra invalidations come only from
    // self-invalidation crossings, a tiny fraction of invalidations sent.
    let (_, full_inv, full_extra, full_bcast) = agg[&(64, "full".to_string())];
    assert_eq!(full_bcast, 0, "full map never overflows");
    assert!(
        full_extra * 100 <= full_inv.max(1),
        "full-map extra invalidations are rare crossings only"
    );

    // Append the meta record (wall-clock) after the per-run lines.
    let mut out = sink.into_inner();
    writeln!(
        out,
        "{{\"meta\":\"dir_scaling\",\"runs\":{runs},\"iters\":{ITERS},\
         \"seconds\":{elapsed:.3},\"workers\":{workers}}}"
    )
    .expect("append meta record");
    out.flush().expect("flush BENCH_directory.json");
    println!(
        "\nwrote {} ({runs} per-run records + 1 meta record)",
        path.display()
    );
}
