//! Directory-organization scaling baseline, written to
//! `BENCH_directory.json` as JSON lines (one record per run, one `meta`
//! record per section with the wall-clock):
//!
//! * **suite section** — the seven deterministic Table 2 benchmarks at
//!   64/128/256 nodes under `full`, `coarse:4`, `ptr:4`, and `sparse:16`
//!   (an entry cache small enough to thrash at these widths, so the
//!   eviction counters are live in the baseline). The two seeded-random
//!   kernels (`barnes`, `raytrace`) are excluded: at several of these
//!   pinned-iteration wide geometries they hit a pre-existing,
//!   timing-dependent lock livelock (present before the width-generic
//!   sharer work — e.g. `raytrace -n 64 -i 6 --dir full` on the prior
//!   revision) that stops the run at the horizon; see the ROADMAP open
//!   item;
//! * **wide section** — `em3d` at 1024/2048/4096 nodes under `full`,
//!   `coarse:16`, `ptr:8`, and `sparse:64`, the scaling study the paper
//!   couldn't run in 2000. Per-home footprint shrinks as homes multiply
//!   (blocks stripe `block % nodes`), so `sparse:64` stops evicting out
//!   there — exactly the storage/over-invalidation crossover the table
//!   shows: at 4096 nodes one full-map entry is 4096 bits and the home's
//!   state is unbounded, while `sparse:64` caps every home below the
//!   storage of nine full-map entries with zero invalidation cost.
//!
//! ```sh
//! cargo bench -p ltp-bench --bench dir_scaling
//! ```

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::time::Instant;

use ltp_bench::print_header;
use ltp_core::PolicyRegistry;
use ltp_dsm::DirectoryKind;
use ltp_system::{JsonLinesSink, RunReport, SweepSpec};
use ltp_workloads::{Benchmark, WorkloadParams};

/// The baseline lives at the repository root regardless of the bench
/// process's working directory (cargo runs benches from the package dir).
fn out_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_directory.json")
}

/// Iterations are pinned (rather than per-benchmark defaults) so the
/// baseline stays comparable across machine sizes and finishes in minutes;
/// the sharing *patterns* per iteration are what scale with nodes.
const ITERS: u32 = 6;

/// Model bits of one directory entry at machine width `n`.
fn entry_bits(dir: DirectoryKind, n: u16) -> u64 {
    let n = u64::from(n);
    match dir {
        DirectoryKind::Full => n,
        DirectoryKind::Coarse { cluster } => n.div_ceil(u64::from(cluster)),
        DirectoryKind::LimitedPtr { pointers } => {
            u64::from(pointers) * u64::from(n.next_power_of_two().trailing_zeros().max(1))
        }
        // Sparse entries are full-map plus a block tag.
        DirectoryKind::Sparse { .. } => n + 16,
    }
}

/// Model cap on one home's directory state, in bits — `None` when the
/// state grows with the home's block footprint instead of being bounded.
fn home_cap_bits(dir: DirectoryKind, n: u16) -> Option<u64> {
    match dir {
        DirectoryKind::Sparse { entries } => Some(u64::from(entries) * entry_bits(dir, n)),
        _ => None,
    }
}

/// Runs one sweep section, streams its rows into `sink`, and prints the
/// per-(nodes, dir) aggregate table with the storage model alongside.
fn section<W: std::io::Write>(
    title: &str,
    benchmarks: &[Benchmark],
    widths: &[u16],
    dirs: &[DirectoryKind],
    sink: &mut JsonLinesSink<W>,
) -> (Vec<RunReport>, usize, f64) {
    let registry = PolicyRegistry::with_builtins();
    let mut sweep = SweepSpec::new()
        .benchmarks(benchmarks.iter().copied())
        .policy_specs(&registry, &["ltp:bits=13"])
        .expect("builtin spec")
        .directories(dirs.iter().copied());
    for &nodes in widths {
        sweep = sweep.geometry(WorkloadParams::quick(nodes, ITERS));
    }
    let runs = sweep.len();

    let started = Instant::now();
    let reports = sweep.execute(sink);
    let elapsed = started.elapsed().as_secs_f64();
    println!("\n{title}: {runs} runs in {elapsed:.3}s");

    // Aggregate per (nodes, directory): execution time, demand and
    // capacity invalidation across the section's benchmarks.
    let mut agg: BTreeMap<(u16, String), [u64; 5]> = BTreeMap::new();
    for r in &reports {
        let e = agg
            .entry((r.workload.nodes, r.directory.to_string()))
            .or_default();
        e[0] += r.metrics.exec_cycles;
        e[1] += r.metrics.invalidations_sent;
        e[2] += r.metrics.extra_invalidations;
        e[3] += r.metrics.broadcast_overflows;
        e[4] += r.metrics.dir_evictions;
    }
    println!(
        "{:>6} {:<10} {:>14} {:>8} {:>11} {:>10} {:>9} {:>9} {:>10} {:>12}",
        "nodes",
        "dir",
        "sum exec(cyc)",
        "vs full",
        "inv sent",
        "extra inv",
        "overflow",
        "evict",
        "entry(b)",
        "home-cap(b)"
    );
    for &nodes in widths {
        let full_exec = agg
            .get(&(nodes, "full".to_string()))
            .map_or(0, |e| e[0])
            .max(1);
        for &d in dirs {
            let [exec, inv, extra, bcast, evict] = agg[&(nodes, d.to_string())];
            println!(
                "{:>6} {:<10} {:>14} {:>7.3}x {:>11} {:>10} {:>9} {:>9} {:>10} {:>12}",
                nodes,
                d.to_string(),
                exec,
                exec as f64 / full_exec as f64,
                inv,
                extra,
                bcast,
                evict,
                entry_bits(d, nodes),
                home_cap_bits(d, nodes).map_or_else(|| "-".to_string(), |b| b.to_string()),
            );
        }
    }
    (reports, runs, elapsed)
}

fn main() {
    print_header(
        "Directory sharer-representation scaling — 64..4096 nodes",
        "infrastructure benchmark (ROADMAP scaling item; no paper analogue)",
    );

    let path = out_path();
    let file = File::create(&path).expect("create BENCH_directory.json");
    let mut sink = JsonLinesSink::new(BufWriter::new(file));
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // Suite section: the deterministic benchmarks at the classic widths
    // (barnes/raytrace excluded — see the module docs).
    let suite_benchmarks: Vec<Benchmark> = Benchmark::ALL
        .into_iter()
        .filter(|b| !matches!(b, Benchmark::Barnes | Benchmark::Raytrace))
        .collect();
    println!(
        "note: barnes/raytrace excluded (pre-existing lock livelock at pinned wide geometries)"
    );
    let suite_dirs = [
        DirectoryKind::Full,
        DirectoryKind::Coarse { cluster: 4 },
        DirectoryKind::LimitedPtr { pointers: 4 },
        DirectoryKind::Sparse { entries: 16 },
    ];
    let (suite, suite_runs, suite_secs) = section(
        "suite 64/128/256",
        &suite_benchmarks,
        &[64, 128, 256],
        &suite_dirs,
        &mut sink,
    );

    // Full map must never over-invalidate under these (policy-driven) runs'
    // invariants at suite level: extra invalidations come only from
    // self-invalidation crossings, a tiny fraction of invalidations sent.
    let full64: [u64; 2] = suite
        .iter()
        .filter(|r| r.workload.nodes == 64 && r.directory == DirectoryKind::Full)
        .fold([0, 0], |a, r| {
            [
                a[0] + r.metrics.invalidations_sent,
                a[1] + r.metrics.extra_invalidations,
            ]
        });
    assert!(
        full64[1] * 100 <= full64[0].max(1),
        "full-map extra invalidations are rare crossings only"
    );
    // The sparse entry cache must actually be under pressure at the suite
    // widths, or the eviction path is unmeasured.
    let suite_evictions: u64 = suite
        .iter()
        .filter(|r| matches!(r.directory, DirectoryKind::Sparse { .. }))
        .map(|r| r.metrics.dir_evictions)
        .sum();
    assert!(suite_evictions > 0, "sparse:16 must evict at 64-256 nodes");

    let mut out = sink.into_inner();
    writeln!(
        out,
        "{{\"meta\":\"dir_scaling\",\"runs\":{suite_runs},\"iters\":{ITERS},\
         \"seconds\":{suite_secs:.3},\"workers\":{workers}}}"
    )
    .expect("append suite meta record");
    let mut sink = JsonLinesSink::new(out);

    // Wide section: one benchmark, past the old 256-node ceiling.
    let wide_dirs = [
        DirectoryKind::Full,
        DirectoryKind::Coarse { cluster: 16 },
        DirectoryKind::LimitedPtr { pointers: 8 },
        DirectoryKind::Sparse { entries: 64 },
    ];
    let (wide, wide_runs, wide_secs) = section(
        "wide 1024/2048/4096 (em3d)",
        &[Benchmark::Em3d],
        &[1024, 2048, 4096],
        &wide_dirs,
        &mut sink,
    );
    // The directory stays exact inside its entries at any width.
    for r in &wide {
        if matches!(
            r.directory,
            DirectoryKind::Full | DirectoryKind::Sparse { .. }
        ) {
            assert!(
                r.metrics.extra_invalidations * 100 <= r.metrics.invalidations_sent.max(1),
                "{} nodes / {}: exact representations over-invalidated",
                r.workload.nodes,
                r.directory
            );
        }
    }

    let mut out = sink.into_inner();
    writeln!(
        out,
        "{{\"meta\":\"dir_scaling_wide\",\"runs\":{wide_runs},\"iters\":{ITERS},\
         \"seconds\":{wide_secs:.3},\"workers\":{workers}}}"
    )
    .expect("append wide meta record");
    out.flush().expect("flush BENCH_directory.json");
    println!(
        "\nwrote {} ({} per-run records + 2 meta records)",
        path.display(),
        suite_runs + wide_runs
    );
}
