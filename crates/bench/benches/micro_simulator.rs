//! Criterion microbenchmarks of the simulation substrate: event-queue
//! throughput and a small end-to-end machine run (events per second bound
//! the full-suite regeneration time).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ltp_sim::{Cycle, EventQueue};
use ltp_system::{ExperimentSpec, PolicyKind};
use ltp_workloads::Benchmark;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |bench| {
        bench.iter_batched(
            EventQueue::<u64>::new,
            |mut q| {
                for i in 0..1000u64 {
                    q.schedule(Cycle::new((i * 7919) % 1000), i);
                }
                while let Some(ev) = q.pop() {
                    black_box(ev);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_small_machine(c: &mut Criterion) {
    c.bench_function("em3d_8nodes_2iters_ltp", |bench| {
        bench.iter(|| {
            let report =
                ExperimentSpec::quick(Benchmark::Em3d, PolicyKind::LTP, 8, 2).run();
            black_box(report.metrics.exec_cycles)
        })
    });
}

criterion_group!(benches, bench_event_queue, bench_small_machine);
criterion_main!(benches);
