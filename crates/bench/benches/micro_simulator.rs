//! Microbenchmarks of the simulation substrate: event-queue throughput and
//! a small end-to-end machine run (events per second bound the full-suite
//! regeneration time).

use ltp_bench::microbench;
use ltp_sim::{Cycle, EventQueue};
use ltp_system::ExperimentSpec;
use ltp_workloads::Benchmark;
use std::hint::black_box;

fn main() {
    microbench("event_queue_push_pop_1k", || {
        let mut q = EventQueue::<u64>::new();
        for i in 0..1000u64 {
            q.schedule(Cycle::new((i * 7919) % 1000), i);
        }
        while let Some(ev) = q.pop() {
            black_box(ev);
        }
    });

    let spec = ExperimentSpec::builder(Benchmark::Em3d)
        .policy_spec("ltp")
        .expect("builtin spec")
        .nodes(8)
        .iterations(2)
        .build();
    microbench("em3d_8nodes_2iters_ltp", || {
        black_box(spec.run().metrics.exec_cycles);
    });
}
