//! Trace replay throughput baseline: end-to-end runs driven by recorded
//! `.ltrace` streams vs the synthetic kernels that produced them, plus the
//! raw encode/decode and stream-generation microbenchmarks.
//!
//! Replay must be at least competitive with synthesis — the whole point of
//! capture-once/replay-anywhere is to make sweeping recorded scenarios
//! cheap — and the two paths are asserted bit-identical before timing.
//!
//! ```sh
//! cargo bench -p ltp-bench --bench trace_replay
//! ```

use std::sync::Arc;
use std::time::Instant;

use ltp_bench::{microbench, print_header};
use ltp_system::ExperimentSpec;
use ltp_workloads::{collect_ops, Benchmark, Trace, WorkloadParams};

fn main() {
    print_header(
        "Trace replay vs synthetic generation — throughput baseline",
        "infrastructure benchmark (no paper analogue)",
    );

    let params = WorkloadParams::quick(8, 12);
    let benchmarks = [Benchmark::Em3d, Benchmark::Tomcatv, Benchmark::Raytrace];

    println!(
        "{:<12} {:>9} {:>9} {:>10} {:>12} {:>12}",
        "benchmark", "ops", "bytes", "B/op", "synth(ms)", "replay(ms)"
    );
    for benchmark in benchmarks {
        let trace = Arc::new(Trace::record(benchmark, &params));
        let mut encoded = Vec::new();
        trace.write_to(&mut encoded).expect("encodes");

        // Fidelity gate before timing anything.
        let direct = ExperimentSpec::builder(benchmark)
            .policy_spec("ltp")
            .expect("builtin spec")
            .workload(params)
            .build();
        let replay = ExperimentSpec::replay(Arc::clone(&trace))
            .policy_spec("ltp")
            .expect("builtin spec")
            .build();
        assert_eq!(replay.run(), direct.run(), "{benchmark}: replay differs");

        let time = |spec: &ExperimentSpec| {
            let started = Instant::now();
            let report = spec.run();
            (started.elapsed().as_secs_f64() * 1e3, report)
        };
        // Warm, then time one run of each path.
        let (synth_ms, _) = time(&direct);
        let (replay_ms, _) = time(&replay);

        println!(
            "{:<12} {:>9} {:>9} {:>10.2} {:>12.2} {:>12.2}",
            benchmark.name(),
            trace.total_ops(),
            encoded.len(),
            encoded.len() as f64 / trace.total_ops().max(1) as f64,
            synth_ms,
            replay_ms
        );
    }

    println!();
    let trace = Arc::new(Trace::record(Benchmark::Tomcatv, &params));
    let mut encoded = Vec::new();
    trace.write_to(&mut encoded).expect("encodes");

    microbench("trace encode (tomcatv, 8 nodes)", || {
        let mut out = Vec::with_capacity(encoded.len());
        trace.write_to(&mut out).expect("encodes");
    });
    microbench("trace decode (tomcatv, 8 nodes)", || {
        Trace::read_from(&encoded[..]).expect("decodes");
    });
    microbench("stream drain: synthetic programs", || {
        for mut p in Benchmark::Tomcatv.programs(&params) {
            collect_ops(p.as_mut());
        }
    });
    microbench("stream drain: trace replay", || {
        for mut p in Trace::programs(&trace) {
            collect_ops(p.as_mut());
        }
    });
}
