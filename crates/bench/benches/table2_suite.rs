//! Table 2: benchmarks and inputs — the paper's suite next to the scaled
//! synthetic inputs this reproduction runs (see DESIGN.md §2 for why the
//! kernels are synthetic and what each preserves).

use ltp_bench::print_header;
use ltp_workloads::{Benchmark, WorkloadParams};

fn main() {
    print_header(
        "Table 2 — benchmarks and inputs",
        "Lai & Falsafi, ISCA 2000, Table 2",
    );
    println!(
        "{:<14} {:<42} {:>12}",
        "benchmark", "paper input", "scaled iters"
    );
    for b in Benchmark::ALL {
        println!(
            "{:<14} {:<42} {:>12}",
            b.name(),
            b.paper_input(),
            b.default_iterations()
        );
    }
    println!();
    let params = WorkloadParams::default();
    println!(
        "default machine: {} nodes, seed {:#x}",
        params.nodes, params.seed
    );
    println!("per-kernel structure: see ltp-workloads rustdoc and DESIGN.md §3.4");
}
