//! Sweep-driver scaling baseline: the same cross product executed serially
//! and in parallel, verified identical, timed, and written to
//! `BENCH_sweep.json` as JSON lines (one record per run, then a `meta`
//! record with the wall-clocks).
//!
//! Later PRs compare against the committed baseline to track the sweep
//! driver's performance trajectory.
//!
//! ```sh
//! cargo bench -p ltp-bench --bench sweep_baseline
//! ```

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::time::Instant;

use ltp_bench::print_header;
use ltp_core::PolicyRegistry;
use ltp_system::{JsonLinesSink, NullSink, SweepSpec};
use ltp_workloads::{Benchmark, WorkloadParams};

/// The baseline lives at the repository root regardless of the bench
/// process's working directory (cargo runs benches from the package dir).
fn out_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_sweep.json")
}

fn main() {
    print_header(
        "Sweep-driver baseline — serial vs parallel wall-clock",
        "infrastructure benchmark (no paper analogue)",
    );

    // A representative mid-size cross product: 4 benchmarks × 4 policies ×
    // 2 machine sizes = 32 runs, sized to finish in seconds.
    let registry = PolicyRegistry::with_builtins();
    let sweep = SweepSpec::new()
        .benchmarks([
            Benchmark::Em3d,
            Benchmark::Tomcatv,
            Benchmark::Moldyn,
            Benchmark::Raytrace,
        ])
        .policy_specs(&registry, &["base", "dsi", "last-pc", "ltp:bits=13"])
        .expect("builtin specs")
        .geometry(WorkloadParams::quick(8, 8))
        .geometry(WorkloadParams::quick(16, 8));
    let runs = sweep.len();

    let started = Instant::now();
    let serial = sweep.clone().serial().execute(&mut NullSink);
    let serial_s = started.elapsed().as_secs_f64();
    println!("serial:   {runs} runs in {serial_s:.3}s");

    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let started = Instant::now();
    let path = out_path();
    let file = File::create(&path).expect("create BENCH_sweep.json");
    let mut sink = JsonLinesSink::new(BufWriter::new(file));
    let parallel = sweep.execute(&mut sink);
    let parallel_s = started.elapsed().as_secs_f64();
    println!("parallel: {runs} runs in {parallel_s:.3}s ({workers} workers)");
    println!("speedup:  {:.2}x", serial_s / parallel_s.max(1e-9));

    assert_eq!(serial, parallel, "parallel sweep must be bit-identical");

    // Append the meta record (wall-clocks) after the per-run lines.
    let mut out = sink.into_inner();
    writeln!(
        out,
        "{{\"meta\":\"sweep_baseline\",\"runs\":{runs},\"serial_seconds\":{serial_s:.3},\
         \"parallel_seconds\":{parallel_s:.3},\"workers\":{workers}}}"
    )
    .expect("append meta record");
    out.flush().expect("flush BENCH_sweep.json");
    println!(
        "wrote {} ({runs} per-run records + 1 meta record)",
        path.display()
    );
}
