//! Run metrics: everything the paper's tables and figures are built from.
//!
//! One [`Metrics`] value summarizes a full-machine run:
//!
//! * the **invalidation classification** of Figures 6/7/8 — every
//!   invalidation event at a node is either *predicted* (a verified-correct
//!   self-invalidation replaced it) or *not predicted* (a real invalidation
//!   arrived); *mispredicted* (verified-premature self-invalidations) are
//!   counted on top, which is why the paper's stacked bars exceed 100%;
//! * **timeliness** (Table 4): the fraction of correct self-invalidations
//!   that reached the directory before the conflicting request;
//! * **directory queueing/service** (Table 4) merged over all home engines;
//! * **execution cycles** (Figure 9's speedups);
//! * **predictor storage** (Table 3) merged over all nodes.

use ltp_core::StorageStats;
use ltp_sim::stats::MeanAccumulator;

/// Aggregated statistics of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Verified-correct self-invalidations (the "predicted" class).
    pub predicted: u64,
    /// Subset of `predicted` that reached the directory before the
    /// conflicting request.
    pub predicted_timely: u64,
    /// External invalidations that removed a cached copy ("not predicted").
    pub not_predicted: u64,
    /// Verified-premature self-invalidations ("mispredicted").
    pub mispredicted: u64,
    /// Execution time: the cycle at which the last CPU finished its program.
    pub exec_cycles: u64,
    /// Coherence misses (GetS/GetX/Upgrade issued).
    pub misses: u64,
    /// Cache hits to shared blocks.
    pub hits: u64,
    /// Self-invalidation messages actually sent.
    pub self_invalidations_sent: u64,
    /// Invalidation messages the directories sent on behalf of requests.
    pub invalidations_sent: u64,
    /// Invalidations acknowledged without a copy — the over-invalidation
    /// cost of an imprecise directory sharer representation (coarse
    /// clusters, limited-pointer broadcast). Always 0 for a full map except
    /// under self-invalidation crossing races.
    pub extra_invalidations: u64,
    /// Limited-pointer sharer arrays that overflowed into broadcast mode.
    pub broadcast_overflows: u64,
    /// Sparse-directory entry replacements (always 0 for unbounded
    /// organizations).
    pub dir_evictions: u64,
    /// Invalidations sent to live holders purely to reclaim a sparse
    /// directory entry — the over-invalidation cost of bounding the
    /// directory's capacity rather than its per-entry precision.
    pub eviction_invalidations: u64,
    /// Total protocol messages delivered.
    pub messages: u64,
    /// Directory-engine queueing delay per message (cycles).
    pub dir_queueing: MeanAccumulator,
    /// Directory-engine service time per message (cycles).
    pub dir_service: MeanAccumulator,
    /// Merged predictor storage accounting (Table 3).
    pub storage: StorageStats,
    /// Stale protocol messages ignored by directories (race bookkeeping).
    pub stale_ignored: u64,
}

impl Metrics {
    /// Total invalidation events: the denominator of the Figure 6 fractions.
    pub fn invalidation_events(&self) -> u64 {
        self.predicted + self.not_predicted
    }

    /// Percentage of invalidations correctly predicted.
    pub fn predicted_pct(&self) -> f64 {
        percent(self.predicted, self.invalidation_events())
    }

    /// Percentage of invalidations not predicted.
    pub fn not_predicted_pct(&self) -> f64 {
        percent(self.not_predicted, self.invalidation_events())
    }

    /// Premature self-invalidations as a percentage of invalidation events
    /// (plotted *on top of* the 100% bar, as in Figure 6).
    pub fn mispredicted_pct(&self) -> f64 {
        percent(self.mispredicted, self.invalidation_events())
    }

    /// Fraction of correct self-invalidations that were timely (Table 4).
    pub fn timeliness_pct(&self) -> f64 {
        percent(self.predicted_timely, self.predicted)
    }

    /// Speedup of this run relative to a baseline run's execution time.
    pub fn speedup_vs(&self, base: &Metrics) -> f64 {
        if self.exec_cycles == 0 {
            0.0
        } else {
            base.exec_cycles as f64 / self.exec_cycles as f64
        }
    }
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(predicted: u64, not_predicted: u64, mispredicted: u64) -> Metrics {
        Metrics {
            predicted,
            not_predicted,
            mispredicted,
            ..Metrics::default()
        }
    }

    #[test]
    fn percentages_partition_invalidations() {
        let m = metrics(79, 21, 3);
        assert!((m.predicted_pct() - 79.0).abs() < 1e-9);
        assert!((m.not_predicted_pct() - 21.0).abs() < 1e-9);
        assert!((m.mispredicted_pct() - 3.0).abs() < 1e-9);
        assert_eq!(m.invalidation_events(), 100);
    }

    #[test]
    fn empty_metrics_report_zero() {
        let m = Metrics::default();
        assert_eq!(m.predicted_pct(), 0.0);
        assert_eq!(m.timeliness_pct(), 0.0);
    }

    #[test]
    fn timeliness_is_fraction_of_predicted() {
        let m = Metrics {
            predicted: 10,
            predicted_timely: 9,
            ..Metrics::default()
        };
        assert!((m.timeliness_pct() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_compares_exec_cycles() {
        let base = Metrics {
            exec_cycles: 1100,
            ..Metrics::default()
        };
        let ltp = Metrics {
            exec_cycles: 1000,
            ..Metrics::default()
        };
        assert!((ltp.speedup_vs(&base) - 1.1).abs() < 1e-9);
        let broken = Metrics::default();
        assert_eq!(broken.speedup_vs(&base), 0.0);
    }
}
