//! The on-disk campaign store: checkpointed run results keyed by content
//! hash.
//!
//! Layout of a campaign directory `DIR`:
//!
//! ```text
//! DIR/manifest.jsonl    # header line + one line per checkpointed run
//! DIR/runs/<hash>.json  # the full run document (spec + report/diagnosis)
//! DIR/campaign.jsonl    # final aggregate, cross-product order (on finish)
//! ```
//!
//! **Durability.** Each run document is written and fsync'd *before* its
//! manifest line is appended and fsync'd, so the manifest never references
//! a missing or torn run file. A crash between the two writes leaves an
//! orphaned run file that the next resume simply overwrites — the manifest
//! is the source of truth for completion.
//!
//! **Determinism.** While a campaign executes, manifest lines append in
//! completion order (whatever the workers finish first). When the campaign
//! *finishes*, the manifest is rewritten in canonical cross-product order
//! and the aggregate is composed from the stored run documents — so the
//! final `manifest.jsonl` and `campaign.jsonl` are byte-identical whether
//! the campaign ran uninterrupted or was killed and resumed any number of
//! times.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use ltp_core::{parse_json, Fingerprint, JsonObject, JsonValue};

use crate::report::RunReport;
use crate::stuck::StuckReport;

use super::hash::STORE_FORMAT_VERSION;

/// A campaign-store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem trouble, with the path involved.
    Io(PathBuf, io::Error),
    /// A store document failed to parse or had the wrong shape.
    Malformed(PathBuf, String),
    /// The store was written by an incompatible format version.
    FormatMismatch {
        /// The directory whose manifest mismatched.
        dir: PathBuf,
        /// The version found in the manifest header.
        found: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(path, e) => write!(f, "{}: {e}", path.display()),
            StoreError::Malformed(path, why) => {
                write!(f, "{}: malformed store document: {why}", path.display())
            }
            StoreError::FormatMismatch { dir, found } => write!(
                f,
                "{}: campaign store format {found} (this build reads format {})",
                dir.display(),
                STORE_FORMAT_VERSION
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Completion status of one checkpointed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The run finished and its report is stored.
    Done,
    /// The run hit the cycle horizon; its stuck diagnosis is stored.
    Stuck,
}

impl RunStatus {
    fn as_str(self) -> &'static str {
        match self {
            RunStatus::Done => "done",
            RunStatus::Stuck => "stuck",
        }
    }

    fn parse(s: &str) -> Option<RunStatus> {
        match s {
            "done" => Some(RunStatus::Done),
            "stuck" => Some(RunStatus::Stuck),
            _ => None,
        }
    }
}

/// One run document loaded back from the store.
#[derive(Debug, Clone)]
pub struct StoredRun {
    /// The run's content hash.
    pub hash: Fingerprint,
    /// Whether the run finished or stalled.
    pub status: RunStatus,
    /// The canonical spec descriptor recorded with the run.
    pub spec: JsonValue,
    /// The result document: the full report (`Done`) or the stuck
    /// diagnosis (`Stuck`).
    pub body: JsonValue,
}

/// A campaign directory opened for reading and checkpointing.
#[derive(Debug)]
pub struct CampaignStore {
    dir: PathBuf,
}

impl CampaignStore {
    /// Opens (creating if necessary) the campaign store at `dir`.
    ///
    /// # Errors
    ///
    /// Fails on filesystem trouble, a corrupt manifest header, or a store
    /// written by an incompatible format version.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CampaignStore, StoreError> {
        let dir = dir.into();
        let runs_dir = dir.join("runs");
        fs::create_dir_all(&runs_dir).map_err(|e| StoreError::Io(runs_dir.clone(), e))?;
        let store = CampaignStore { dir };
        let manifest = store.manifest_path();
        if manifest.exists() {
            store.check_header()?;
        } else {
            store.write_manifest_atomic(&[])?;
        }
        Ok(store)
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.jsonl")
    }

    /// Path of the final aggregate.
    pub fn aggregate_path(&self) -> PathBuf {
        self.dir.join("campaign.jsonl")
    }

    fn run_path(&self, hash: Fingerprint) -> PathBuf {
        self.dir.join("runs").join(format!("{hash}.json"))
    }

    fn header_line() -> String {
        JsonObject::new()
            .field("campaign_format", u64::from(STORE_FORMAT_VERSION))
            .build()
            .render()
    }

    fn check_header(&self) -> Result<(), StoreError> {
        let path = self.manifest_path();
        let text = fs::read_to_string(&path).map_err(|e| StoreError::Io(path.clone(), e))?;
        let Some(first) = text.lines().next() else {
            return Err(StoreError::Malformed(path, "empty manifest".to_string()));
        };
        let header =
            parse_json(first).map_err(|e| StoreError::Malformed(path.clone(), e.to_string()))?;
        let found = header
            .get("campaign_format")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| {
                StoreError::Malformed(path.clone(), "manifest header lacks a version".to_string())
            })?;
        if found != u64::from(STORE_FORMAT_VERSION) {
            return Err(StoreError::FormatMismatch {
                dir: self.dir.clone(),
                found,
            });
        }
        Ok(())
    }

    /// Every checkpointed run in the manifest, keyed by content hash.
    ///
    /// A final line without its terminating newline is a torn append — the
    /// process died (or was killed) mid-checkpoint — and is ignored rather
    /// than rejected: the run it named simply re-executes on resume. Torn
    /// lines *inside* the file cannot happen (every append is
    /// newline-terminated), so those still fail as malformed.
    ///
    /// # Errors
    ///
    /// Fails on filesystem trouble or a malformed manifest line.
    pub fn completed(&self) -> Result<BTreeMap<Fingerprint, RunStatus>, StoreError> {
        let path = self.manifest_path();
        let text = fs::read_to_string(&path).map_err(|e| StoreError::Io(path.clone(), e))?;
        let complete = match text.rfind('\n') {
            Some(last_newline) => &text[..=last_newline],
            None => "",
        };
        let mut out = BTreeMap::new();
        for line in complete.lines().skip(1) {
            if line.is_empty() {
                continue;
            }
            let doc =
                parse_json(line).map_err(|e| StoreError::Malformed(path.clone(), e.to_string()))?;
            let hash: Fingerprint = doc
                .get("hash")
                .and_then(JsonValue::as_str)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    StoreError::Malformed(path.clone(), format!("bad hash in line: {line}"))
                })?;
            let status = doc
                .get("status")
                .and_then(JsonValue::as_str)
                .and_then(RunStatus::parse)
                .ok_or_else(|| {
                    StoreError::Malformed(path.clone(), format!("bad status in line: {line}"))
                })?;
            out.insert(hash, status);
        }
        Ok(out)
    }

    /// Checkpoints one finished run: writes and fsyncs the run document,
    /// then appends and fsyncs its manifest line.
    ///
    /// # Errors
    ///
    /// Fails on filesystem trouble.
    pub fn record_done(
        &self,
        hash: Fingerprint,
        spec: &JsonValue,
        report: &RunReport,
    ) -> Result<(), StoreError> {
        self.record(hash, RunStatus::Done, spec, &report.to_json())
    }

    /// Checkpoints one stuck run (see [`StuckReport`]).
    ///
    /// # Errors
    ///
    /// Fails on filesystem trouble.
    pub fn record_stuck(
        &self,
        hash: Fingerprint,
        spec: &JsonValue,
        stuck: &StuckReport,
    ) -> Result<(), StoreError> {
        self.record(hash, RunStatus::Stuck, spec, &stuck.to_json())
    }

    fn record(
        &self,
        hash: Fingerprint,
        status: RunStatus,
        spec: &JsonValue,
        body_json: &str,
    ) -> Result<(), StoreError> {
        // The body is rendered JSON already; splice it in verbatim rather
        // than re-parsing, so stored bytes are exactly what the producer
        // rendered.
        let doc = format!(
            "{{\"hash\":\"{hash}\",\"status\":\"{}\",\"spec\":{},\"{}\":{body_json}}}\n",
            status.as_str(),
            spec.render(),
            match status {
                RunStatus::Done => "report",
                RunStatus::Stuck => "stuck",
            },
        );
        let path = self.run_path(hash);
        write_sync(&path, doc.as_bytes()).map_err(|e| StoreError::Io(path, e))?;

        let line = JsonObject::new()
            .field("hash", hash.to_string())
            .field("status", status.as_str())
            .build()
            .render();
        let path = self.manifest_path();
        let mut file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| StoreError::Io(path.clone(), e))?;
        file.write_all(line.as_bytes())
            .and_then(|()| file.write_all(b"\n"))
            .and_then(|()| file.sync_data())
            .map_err(|e| StoreError::Io(path, e))
    }

    /// Loads one checkpointed run document.
    ///
    /// # Errors
    ///
    /// Fails on filesystem trouble or a malformed document.
    pub fn load_run(&self, hash: Fingerprint) -> Result<StoredRun, StoreError> {
        let path = self.run_path(hash);
        let text = fs::read_to_string(&path).map_err(|e| StoreError::Io(path.clone(), e))?;
        let doc = parse_json(text.trim_end())
            .map_err(|e| StoreError::Malformed(path.clone(), e.to_string()))?;
        let status = doc
            .get("status")
            .and_then(JsonValue::as_str)
            .and_then(RunStatus::parse)
            .ok_or_else(|| StoreError::Malformed(path.clone(), "bad status".to_string()))?;
        let body_key = match status {
            RunStatus::Done => "report",
            RunStatus::Stuck => "stuck",
        };
        let spec = doc
            .get("spec")
            .cloned()
            .ok_or_else(|| StoreError::Malformed(path.clone(), "missing spec".to_string()))?;
        let body = doc
            .get(body_key)
            .cloned()
            .ok_or_else(|| StoreError::Malformed(path.clone(), format!("missing {body_key}")))?;
        Ok(StoredRun {
            hash,
            status,
            spec,
            body,
        })
    }

    /// Finalizes a completed campaign: composes `campaign.jsonl` from the
    /// stored run documents in cross-product order, and rewrites the
    /// manifest canonically (this campaign's runs in cross-product order,
    /// then any other checkpointed runs sorted by hash).
    ///
    /// Composing the aggregate from the store — never from in-memory
    /// results — is what makes a resumed campaign's aggregate byte-identical
    /// to an uninterrupted one: both take exactly this path.
    ///
    /// # Errors
    ///
    /// Fails on filesystem trouble or a malformed run document.
    pub fn finalize(&self, order: &[Fingerprint]) -> Result<(), StoreError> {
        let mut aggregate = String::new();
        for (seq, &hash) in order.iter().enumerate() {
            let run = self.load_run(hash)?;
            let (body, status_field) = match run.status {
                RunStatus::Done => (run.body, None),
                RunStatus::Stuck => (run.body, Some("stuck")),
            };
            let rendered = body.render();
            let rest = rendered.strip_prefix('{').unwrap_or(&rendered);
            aggregate.push_str(&format!("{{\"run\":{seq},"));
            if let Some(status) = status_field {
                aggregate.push_str(&format!("\"status\":\"{status}\","));
            }
            aggregate.push_str(rest);
            aggregate.push('\n');
        }
        let path = self.aggregate_path();
        write_sync(&path, aggregate.as_bytes()).map_err(|e| StoreError::Io(path, e))?;

        // Canonical manifest: campaign order first (deduplicated), then
        // foreign entries sorted by hash.
        let all = self.completed()?;
        let mut lines: Vec<Fingerprint> = Vec::new();
        for &hash in order {
            if !lines.contains(&hash) {
                lines.push(hash);
            }
        }
        let foreign: Vec<Fingerprint> =
            all.keys().copied().filter(|h| !lines.contains(h)).collect();
        lines.extend(foreign);
        let entries: Vec<(Fingerprint, RunStatus)> = lines
            .into_iter()
            .map(|h| {
                all.get(&h).map(|&s| (h, s)).ok_or_else(|| {
                    StoreError::Malformed(
                        self.manifest_path(),
                        format!("finalize of unrecorded run {h}"),
                    )
                })
            })
            .collect::<Result<_, _>>()?;
        self.write_manifest_atomic(&entries)
    }

    fn write_manifest_atomic(
        &self,
        entries: &[(Fingerprint, RunStatus)],
    ) -> Result<(), StoreError> {
        let mut text = Self::header_line();
        text.push('\n');
        for &(hash, status) in entries {
            text.push_str(
                &JsonObject::new()
                    .field("hash", hash.to_string())
                    .field("status", status.as_str())
                    .build()
                    .render(),
            );
            text.push('\n');
        }
        let tmp = self.dir.join("manifest.jsonl.tmp");
        write_sync(&tmp, text.as_bytes()).map_err(|e| StoreError::Io(tmp.clone(), e))?;
        let path = self.manifest_path();
        fs::rename(&tmp, &path).map_err(|e| StoreError::Io(path, e))
    }
}

/// Writes a file and fsyncs it (create-or-truncate).
fn write_sync(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut file = File::create(path)?;
    file.write_all(bytes)?;
    file.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltp_dsm::DirectoryKind;
    use ltp_workloads::WorkloadParams;

    use crate::metrics::Metrics;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ltp-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_report() -> RunReport {
        RunReport {
            benchmark: "em3d".to_string(),
            policy: "ltp".to_string(),
            policy_spec: "ltp:bits=13".to_string(),
            directory: DirectoryKind::Full,
            workload: WorkloadParams::quick(4, 3),
            metrics: Metrics {
                predicted: 5,
                exec_cycles: 1000,
                ..Metrics::default()
            },
            sections: Vec::new(),
            events_handled: 9,
        }
    }

    #[test]
    fn a_torn_trailing_manifest_line_is_ignored_not_fatal() {
        let dir = tmp_dir("torn");
        let store = CampaignStore::open(&dir).unwrap();
        let hash = Fingerprint::of_str("run-1");
        let spec = JsonObject::new().field("benchmark", "em3d").build();
        store.record_done(hash, &spec, &sample_report()).unwrap();

        // Simulate a SIGKILL mid-append: half a manifest line, no newline.
        let manifest = store.manifest_path();
        let mut text = fs::read_to_string(&manifest).unwrap();
        text.push_str("{\"hash\":\"00000000000000000000");
        fs::write(&manifest, &text).unwrap();

        let completed = store.completed().unwrap();
        assert_eq!(completed.len(), 1, "the torn line names no completed run");
        assert_eq!(completed.get(&hash), Some(&RunStatus::Done));
    }

    #[test]
    fn checkpoint_and_read_back_round_trips() {
        let dir = tmp_dir("roundtrip");
        let store = CampaignStore::open(&dir).unwrap();
        let hash = Fingerprint::of_str("run-1");
        let spec = JsonObject::new().field("benchmark", "em3d").build();
        store.record_done(hash, &spec, &sample_report()).unwrap();

        let completed = store.completed().unwrap();
        assert_eq!(completed.get(&hash), Some(&RunStatus::Done));

        let run = store.load_run(hash).unwrap();
        assert_eq!(run.status, RunStatus::Done);
        assert_eq!(
            run.body.get("benchmark").and_then(JsonValue::as_str),
            Some("em3d")
        );
        assert_eq!(
            run.body
                .get("metrics")
                .and_then(|m| m.get("exec_cycles"))
                .and_then(JsonValue::as_u64),
            Some(1000)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_preserves_existing_checkpoints() {
        let dir = tmp_dir("reopen");
        let hash = Fingerprint::of_str("run-2");
        {
            let store = CampaignStore::open(&dir).unwrap();
            let spec = JsonObject::new().build();
            store.record_done(hash, &spec, &sample_report()).unwrap();
        }
        let store = CampaignStore::open(&dir).unwrap();
        assert_eq!(store.completed().unwrap().len(), 1);
        assert!(store.completed().unwrap().contains_key(&hash));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn format_mismatch_is_rejected() {
        let dir = tmp_dir("format");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("manifest.jsonl"), "{\"campaign_format\":999}\n").unwrap();
        match CampaignStore::open(&dir) {
            Err(StoreError::FormatMismatch { found, .. }) => assert_eq!(found, 999),
            other => panic!("expected format mismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn finalize_composes_aggregate_in_given_order() {
        let dir = tmp_dir("finalize");
        let store = CampaignStore::open(&dir).unwrap();
        let spec = JsonObject::new().build();
        let a = Fingerprint::of_str("a");
        let b = Fingerprint::of_str("b");
        let mut report_b = sample_report();
        report_b.benchmark = "moldyn".to_string();
        // Checkpoint out of order; the aggregate follows `order`.
        store.record_done(b, &spec, &report_b).unwrap();
        store.record_done(a, &spec, &sample_report()).unwrap();
        store.finalize(&[a, b]).unwrap();

        let text = fs::read_to_string(store.aggregate_path()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(
            lines[0].starts_with("{\"run\":0,\"benchmark\":\"em3d\""),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("{\"run\":1,\"benchmark\":\"moldyn\""),
            "{}",
            lines[1]
        );

        // The canonical manifest lists campaign order, not completion order.
        let manifest = fs::read_to_string(store.manifest_path()).unwrap();
        let mlines: Vec<&str> = manifest.lines().collect();
        assert_eq!(mlines.len(), 3);
        assert!(mlines[1].contains(&a.to_string()));
        assert!(mlines[2].contains(&b.to_string()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stuck_runs_checkpoint_with_their_diagnosis() {
        let dir = tmp_dir("stuck");
        let store = CampaignStore::open(&dir).unwrap();
        let hash = Fingerprint::of_str("stuck-run");
        let stuck = StuckReport {
            benchmark: "raytrace".to_string(),
            policy: "ltp".to_string(),
            policy_spec: "ltp:bits=13".to_string(),
            directory: DirectoryKind::Full,
            workload: WorkloadParams::quick(64, 6),
            horizon_cycles: 2_000_000_000,
            nodes_finished: 62,
            stuck_nodes: Vec::new(),
            events_handled: 1,
        };
        let spec = JsonObject::new().build();
        store.record_stuck(hash, &spec, &stuck).unwrap();
        assert_eq!(
            store.completed().unwrap().get(&hash),
            Some(&RunStatus::Stuck)
        );
        let run = store.load_run(hash).unwrap();
        assert_eq!(run.status, RunStatus::Stuck);
        assert_eq!(
            run.body.get("horizon_cycles").and_then(JsonValue::as_u64),
            Some(2_000_000_000)
        );

        store.finalize(&[hash]).unwrap();
        let text = fs::read_to_string(store.aggregate_path()).unwrap();
        assert!(
            text.starts_with("{\"run\":0,\"status\":\"stuck\",\"benchmark\":\"raytrace\""),
            "{text}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
