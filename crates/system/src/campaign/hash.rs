//! Canonical content hashes for experiment runs.
//!
//! Every run in a campaign is keyed by a [`Fingerprint`] of its complete
//! configuration: everything that can change the run's report (policy spec,
//! workload identity, geometry, directory organization, predictor tuning,
//! probes) plus the execution shape (shard count) and the store format
//! version. The hash is the resume key — a restarted campaign skips every
//! run whose fingerprint already appears in the store manifest — so the
//! canonicalization below is part of the on-disk format: changing what goes
//! into the hash (or how) orphans existing stores and MUST be accompanied
//! by a [`STORE_FORMAT_VERSION`] bump.
//!
//! Trace workloads hash at header level: name, recorded geometry, and total
//! op count. Two traces that collide on all three are treated as the same
//! workload (in-tree recordings are deterministic functions of those, so
//! this is exact for them; externally produced traces should use distinct
//! names).

use ltp_core::{Fingerprint, FingerprintHasher, JsonObject, JsonValue, PrematurePenalty};
use ltp_workloads::WorkloadSource;

use crate::experiment::ExperimentSpec;

/// Version of the campaign store on-disk format (manifest layout, run
/// document shape, and the run-fingerprint canonicalization).
pub const STORE_FORMAT_VERSION: u32 = 1;

/// Computes the canonical content hash of one run.
pub fn run_fingerprint(spec: &ExperimentSpec) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.update_str("ltp-campaign-run");
    h.update_u64(u64::from(STORE_FORMAT_VERSION));

    // Workload identity. The effective parameters (trace geometry pinning
    // applied) are what the run will actually use.
    let workload = spec.source.effective_params(spec.workload);
    match &spec.source {
        WorkloadSource::Synthetic(benchmark) => {
            h.update_str("bench");
            h.update_str(benchmark.name());
        }
        // Both trace kinds replay bit-identically, so they hash alike: a
        // campaign resumed with `--stream` skips runs done buffered.
        WorkloadSource::Trace(trace) => {
            h.update_str("trace");
            h.update_str(trace.name());
            h.update_u64(trace.total_ops());
        }
        WorkloadSource::StreamingTrace(trace) => {
            h.update_str("trace");
            h.update_str(trace.name());
            h.update_u64(trace.total_ops());
        }
    }
    h.update_u64(u64::from(workload.nodes));
    h.update_u64(workload.seed);
    match workload.iterations {
        Some(iters) => {
            h.update_str("iters");
            h.update_u64(u64::from(iters));
        }
        None => h.update_str("natural"),
    }

    // Policy + predictor tuning.
    h.update_str(&spec.policy.spec());
    h.update_u64(u64::from(spec.predictor.initial_confidence));
    h.update_str(match spec.predictor.premature_penalty {
        PrematurePenalty::Weaken => "weaken",
        PrematurePenalty::Reset => "reset",
    });
    h.update_u64(u64::from(spec.predictor.self_invalidate_shared));

    // Machine shape.
    h.update_str(&spec.directory.to_string());
    h.update_u64(u64::from(spec.barrier_fanin));
    h.update_u64(spec.shards.max(1) as u64);

    // Probes change the report's sections, so they are part of the key.
    h.update_u64(spec.probes.len() as u64);
    for probe in &spec.probes {
        h.update_str(&probe.spec());
    }
    h.finish()
}

/// The human-readable spec descriptor stored alongside each run — the same
/// facts the fingerprint canonicalizes, as JSON, so a store is
/// self-describing without this build of the tool.
pub fn run_descriptor(spec: &ExperimentSpec) -> JsonValue {
    let workload = spec.source.effective_params(spec.workload);
    let kind = match &spec.source {
        WorkloadSource::Synthetic(_) => "bench",
        WorkloadSource::Trace(_) | WorkloadSource::StreamingTrace(_) => "trace",
    };
    JsonObject::new()
        .field("format", u64::from(STORE_FORMAT_VERSION))
        .field("source_kind", kind)
        .field("source", spec.source.name())
        .field("nodes", workload.nodes)
        .field("seed", workload.seed)
        .field(
            "iterations",
            workload.iterations.map_or(JsonValue::Null, JsonValue::from),
        )
        .field("policy_spec", spec.policy.spec())
        .field("directory", spec.directory.to_string())
        .field("barrier_fanin", spec.barrier_fanin)
        .field("shards", spec.shards.max(1) as u64)
        .field(
            "probes",
            JsonValue::Array(
                spec.probes
                    .iter()
                    .map(|p| JsonValue::from(p.spec()))
                    .collect(),
            ),
        )
        .build()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ltp_workloads::{Benchmark, Trace, WorkloadParams};

    use super::*;

    fn base_spec() -> ExperimentSpec {
        ExperimentSpec::builder(Benchmark::Em3d)
            .policy_spec("ltp:bits=13")
            .unwrap()
            .nodes(4)
            .iterations(3)
            .build()
    }

    #[test]
    fn identical_specs_hash_identically() {
        assert_eq!(run_fingerprint(&base_spec()), run_fingerprint(&base_spec()));
    }

    #[test]
    fn every_axis_perturbs_the_hash() {
        let base = run_fingerprint(&base_spec());
        let variants = [
            ExperimentSpec::builder(Benchmark::Moldyn)
                .policy_spec("ltp:bits=13")
                .unwrap()
                .nodes(4)
                .iterations(3)
                .build(),
            ExperimentSpec::builder(Benchmark::Em3d)
                .policy_spec("base")
                .unwrap()
                .nodes(4)
                .iterations(3)
                .build(),
            ExperimentSpec::builder(Benchmark::Em3d)
                .policy_spec("ltp:bits=13")
                .unwrap()
                .nodes(8)
                .iterations(3)
                .build(),
            ExperimentSpec::builder(Benchmark::Em3d)
                .policy_spec("ltp:bits=13")
                .unwrap()
                .nodes(4)
                .iterations(4)
                .build(),
            ExperimentSpec::builder(Benchmark::Em3d)
                .policy_spec("ltp:bits=13")
                .unwrap()
                .nodes(4)
                .iterations(3)
                .seed(99)
                .build(),
            ExperimentSpec::builder(Benchmark::Em3d)
                .policy_spec("ltp:bits=13")
                .unwrap()
                .nodes(4)
                .iterations(3)
                .directory(ltp_dsm::DirectoryKind::Coarse { cluster: 2 })
                .build(),
            ExperimentSpec::builder(Benchmark::Em3d)
                .policy_spec("ltp:bits=13")
                .unwrap()
                .nodes(4)
                .iterations(3)
                .shards(2)
                .build(),
            ExperimentSpec::builder(Benchmark::Em3d)
                .policy_spec("ltp:bits=13")
                .unwrap()
                .nodes(4)
                .iterations(3)
                .probe_spec("per-node")
                .unwrap()
                .build(),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base, run_fingerprint(v), "variant {i} collided");
        }
    }

    #[test]
    fn iteration_pinning_is_distinct_from_natural_length() {
        // `iterations: None` must not collide with any pinned count.
        let natural = ExperimentSpec::builder(Benchmark::Em3d)
            .policy_spec("ltp")
            .unwrap()
            .nodes(4)
            .build();
        let pinned = ExperimentSpec::builder(Benchmark::Em3d)
            .policy_spec("ltp")
            .unwrap()
            .nodes(4)
            .iterations(0)
            .build();
        assert_ne!(run_fingerprint(&natural), run_fingerprint(&pinned));
    }

    #[test]
    fn trace_replay_hashes_like_its_recording_geometry() {
        let params = WorkloadParams::quick(4, 3);
        let trace = Arc::new(Trace::record(Benchmark::Em3d, &params));
        let a = ExperimentSpec::replay(Arc::clone(&trace))
            .policy_spec("ltp:bits=13")
            .unwrap()
            .build();
        let b = ExperimentSpec::replay(trace)
            .policy_spec("ltp:bits=13")
            .unwrap()
            .nodes(64) // ignored: traces pin their geometry
            .build();
        assert_eq!(run_fingerprint(&a), run_fingerprint(&b));
    }
}
