//! The reporter: folds a campaign store into the paper's artifacts.
//!
//! `ltp report DIR` reads the checkpointed run documents (never re-running
//! anything) and regenerates the headline figures and tables of Lai &
//! Falsafi (ISCA 2000) as markdown + machine-readable JSON:
//!
//! | artifact | paper analog | contents |
//! |---|---|---|
//! | `fig1`  | Fig. 1 | protocol traffic per policy, messages normalized to base |
//! | `fig2`  | Fig. 2 | self-invalidation behavior (sent/verified/timely/premature) |
//! | `fig6`  | Fig. 6 | prediction accuracy/coverage breakdown per benchmark |
//! | `fig7`  | Fig. 7 | execution time normalized to base MSI |
//! | `fig9`  | Fig. 9 | speedup over base MSI, with per-policy averages |
//! | `t2`    | Table 2 | workload characterization under the base protocol |
//! | `t3`    | Table 3 | predictor storage (blocks tracked, live entries, bits) |
//! | `t4`    | Table 4 | timeliness and directory occupancy |
//!
//! Every artifact is a deterministic function of the store: rows sort by
//! (benchmark, policy, nodes, directory), floats render at fixed
//! precision, and nothing timestamps itself — regenerating from the same
//! store is byte-identical, which is what lets CI `cmp` committed
//! artifacts. Stuck runs are excluded from tables and footnoted.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use ltp_core::{JsonObject, JsonValue};

use super::store::{CampaignStore, RunStatus, StoreError};

/// One of the report artifacts (`--fig` values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FigureId {
    /// Protocol traffic (Fig. 1 analog).
    Fig1,
    /// Self-invalidation behavior (Fig. 2 analog).
    Fig2,
    /// Prediction breakdown (Fig. 6 analog).
    Fig6,
    /// Normalized execution time (Fig. 7 analog).
    Fig7,
    /// Speedups (Fig. 9 analog).
    Fig9,
    /// Workload characterization (Table 2 analog).
    T2,
    /// Predictor storage (Table 3 analog).
    T3,
    /// Timeliness and directory occupancy (Table 4 analog).
    T4,
}

impl FigureId {
    /// Every artifact, in catalog order.
    pub const ALL: [FigureId; 8] = [
        FigureId::Fig1,
        FigureId::Fig2,
        FigureId::Fig6,
        FigureId::Fig7,
        FigureId::Fig9,
        FigureId::T2,
        FigureId::T3,
        FigureId::T4,
    ];

    /// Parses a `--fig` selector (`1`, `fig6`, `t3`, …).
    pub fn parse(s: &str) -> Option<FigureId> {
        match s.trim_start_matches("fig") {
            "1" => Some(FigureId::Fig1),
            "2" => Some(FigureId::Fig2),
            "6" => Some(FigureId::Fig6),
            "7" => Some(FigureId::Fig7),
            "9" => Some(FigureId::Fig9),
            "t2" => Some(FigureId::T2),
            "t3" => Some(FigureId::T3),
            "t4" => Some(FigureId::T4),
            _ => None,
        }
    }

    /// The artifact's file stem (`fig6` → `fig6.md` + `fig6.json`).
    pub fn stem(self) -> &'static str {
        match self {
            FigureId::Fig1 => "fig1",
            FigureId::Fig2 => "fig2",
            FigureId::Fig6 => "fig6",
            FigureId::Fig7 => "fig7",
            FigureId::Fig9 => "fig9",
            FigureId::T2 => "t2",
            FigureId::T3 => "t3",
            FigureId::T4 => "t4",
        }
    }

    fn title(self) -> &'static str {
        match self {
            FigureId::Fig1 => "Protocol traffic (Fig. 1 analog)",
            FigureId::Fig2 => "Self-invalidation behavior (Fig. 2 analog)",
            FigureId::Fig6 => "Prediction breakdown (Fig. 6 analog)",
            FigureId::Fig7 => "Execution time normalized to base MSI (Fig. 7 analog)",
            FigureId::Fig9 => "Speedup over base MSI (Fig. 9 analog)",
            FigureId::T2 => "Workload characterization under base MSI (Table 2 analog)",
            FigureId::T3 => "Predictor storage (Table 3 analog)",
            FigureId::T4 => "Timeliness and directory occupancy (Table 4 analog)",
        }
    }
}

/// One generated artifact pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    /// Which figure/table.
    pub figure: FigureId,
    /// The rendered markdown file.
    pub markdown: PathBuf,
    /// The machine-readable JSON file.
    pub json: PathBuf,
}

/// One completed run, flattened for aggregation.
#[derive(Debug, Clone)]
struct Row {
    benchmark: String,
    policy: String,
    policy_spec: String,
    directory: String,
    nodes: u64,
    seed: u64,
    iterations: Option<u64>,
    predicted: u64,
    predicted_timely: u64,
    not_predicted: u64,
    mispredicted: u64,
    exec_cycles: u64,
    misses: u64,
    hits: u64,
    self_invalidations_sent: u64,
    invalidations_sent: u64,
    extra_invalidations: u64,
    broadcast_overflows: u64,
    messages: u64,
    stale_ignored: u64,
    dir_queueing_mean: f64,
    dir_service_mean: f64,
    storage_blocks: u64,
    storage_entries: u64,
    storage_bits: u64,
}

impl Row {
    fn invalidation_events(&self) -> u64 {
        self.predicted + self.not_predicted
    }

    /// The geometry key a policy row and its base row must share for
    /// normalization to be meaningful.
    fn geometry_key(&self) -> (String, u64, u64, Option<u64>, String) {
        (
            self.benchmark.clone(),
            self.nodes,
            self.seed,
            self.iterations,
            self.directory.clone(),
        )
    }
}

/// One stuck run, for footnotes.
#[derive(Debug, Clone)]
struct StuckRow {
    benchmark: String,
    policy_spec: String,
    directory: String,
    nodes: u64,
    unfinished: u64,
}

fn u(doc: &JsonValue, key: &str) -> u64 {
    doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0)
}

fn parse_row(body: &JsonValue) -> Option<Row> {
    let metrics = body.get("metrics")?;
    let workload = body.get("workload")?;
    Some(Row {
        benchmark: body.get("benchmark")?.as_str()?.to_string(),
        policy: body.get("policy")?.as_str()?.to_string(),
        policy_spec: body.get("policy_spec")?.as_str()?.to_string(),
        directory: body.get("directory")?.as_str()?.to_string(),
        nodes: u(workload, "nodes"),
        seed: u(workload, "seed"),
        iterations: workload.get("iterations").and_then(JsonValue::as_u64),
        predicted: u(metrics, "predicted"),
        predicted_timely: u(metrics, "predicted_timely"),
        not_predicted: u(metrics, "not_predicted"),
        mispredicted: u(metrics, "mispredicted"),
        exec_cycles: u(metrics, "exec_cycles"),
        misses: u(metrics, "misses"),
        hits: u(metrics, "hits"),
        self_invalidations_sent: u(metrics, "self_invalidations_sent"),
        invalidations_sent: u(metrics, "invalidations_sent"),
        extra_invalidations: u(metrics, "extra_invalidations"),
        broadcast_overflows: u(metrics, "broadcast_overflows"),
        messages: u(metrics, "messages"),
        stale_ignored: u(metrics, "stale_ignored"),
        dir_queueing_mean: metrics
            .get("dir_queueing")
            .and_then(|q| q.get("mean"))
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0),
        dir_service_mean: metrics
            .get("dir_service")
            .and_then(|q| q.get("mean"))
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0),
        storage_blocks: metrics.get("storage").map_or(0, |s| u(s, "blocks_tracked")),
        storage_entries: metrics.get("storage").map_or(0, |s| u(s, "live_entries")),
        storage_bits: metrics.get("storage").map_or(0, |s| u(s, "signature_bits")),
    })
}

fn parse_stuck(body: &JsonValue) -> Option<StuckRow> {
    let workload = body.get("workload")?;
    Some(StuckRow {
        benchmark: body.get("benchmark")?.as_str()?.to_string(),
        policy_spec: body.get("policy_spec")?.as_str()?.to_string(),
        directory: body.get("directory")?.as_str()?.to_string(),
        nodes: u(workload, "nodes"),
        unfinished: body
            .get("stuck_nodes")
            .and_then(JsonValue::as_array)
            .map_or(0, |a| a.len() as u64),
    })
}

/// Well-known policy families render in this order (the paper's
/// base-then-strawmen-then-LTP narrative); unknown families follow
/// alphabetically.
fn policy_rank(policy: &str) -> (usize, &str) {
    const ORDER: [&str; 6] = ["base", "dsi", "last-pc", "ltp", "ltp-global", "ltp-xor"];
    (
        ORDER
            .iter()
            .position(|p| *p == policy)
            .unwrap_or(ORDER.len()),
        policy,
    )
}

fn sort_rows(rows: &mut [Row]) {
    rows.sort_by(|a, b| {
        (
            &a.benchmark,
            policy_rank(&a.policy),
            &a.policy_spec,
            a.nodes,
            &a.directory,
            a.seed,
            a.iterations,
        )
            .cmp(&(
                &b.benchmark,
                policy_rank(&b.policy),
                &b.policy_spec,
                b.nodes,
                &b.directory,
                b.seed,
                b.iterations,
            ))
    });
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// Generates the selected artifacts from the store at `store_dir` into
/// `out_dir` (created if missing).
///
/// # Errors
///
/// Fails on store trouble or malformed stored documents.
pub fn generate_reports(
    store_dir: &Path,
    out_dir: &Path,
    figures: &[FigureId],
) -> Result<Vec<Artifact>, StoreError> {
    let store = CampaignStore::open(store_dir)?;
    let mut rows = Vec::new();
    let mut stuck = Vec::new();
    for (&hash, &status) in &store.completed()? {
        let run = store.load_run(hash)?;
        let malformed = || {
            StoreError::Malformed(
                store.dir().join("runs").join(format!("{hash}.json")),
                "unrecognized run document shape".to_string(),
            )
        };
        match status {
            RunStatus::Done => rows.push(parse_row(&run.body).ok_or_else(malformed)?),
            RunStatus::Stuck => stuck.push(parse_stuck(&run.body).ok_or_else(malformed)?),
        }
    }
    sort_rows(&mut rows);
    stuck.sort_by(|a, b| {
        (&a.benchmark, &a.policy_spec, a.nodes, &a.directory).cmp(&(
            &b.benchmark,
            &b.policy_spec,
            b.nodes,
            &b.directory,
        ))
    });

    fs::create_dir_all(out_dir).map_err(|e| StoreError::Io(out_dir.to_path_buf(), e))?;
    let mut artifacts = Vec::new();
    for &figure in figures {
        let (markdown, json) = render(figure, &rows, &stuck);
        let md_path = out_dir.join(format!("{}.md", figure.stem()));
        let json_path = out_dir.join(format!("{}.json", figure.stem()));
        fs::write(&md_path, markdown).map_err(|e| StoreError::Io(md_path.clone(), e))?;
        fs::write(&json_path, json).map_err(|e| StoreError::Io(json_path.clone(), e))?;
        artifacts.push(Artifact {
            figure,
            markdown: md_path,
            json: json_path,
        });
    }
    Ok(artifacts)
}

/// Renders one artifact: `(markdown, json)`.
fn render(figure: FigureId, rows: &[Row], stuck: &[StuckRow]) -> (String, String) {
    let mut md = format!("# {}\n\nGenerated by `ltp report`.\n\n", figure.title());
    let mut json_rows: Vec<JsonValue> = Vec::new();

    // Base-policy lookup for normalized figures.
    let base_exec = |row: &Row| -> Option<u64> {
        rows.iter()
            .find(|b| b.policy == "base" && b.geometry_key() == row.geometry_key())
            .map(|b| b.exec_cycles)
    };

    match figure {
        FigureId::Fig1 => {
            md.push_str("| benchmark | policy | nodes | dir | messages | msgs vs base | invalidations | self-inv | over-inv | bcast overflows |\n");
            md.push_str("|---|---|---:|---|---:|---:|---:|---:|---:|---:|\n");
            for r in rows {
                let norm = base_exec(r).map_or(0.0, |_| {
                    let base_msgs = rows
                        .iter()
                        .find(|b| b.policy == "base" && b.geometry_key() == r.geometry_key())
                        .map_or(0, |b| b.messages);
                    if base_msgs == 0 {
                        0.0
                    } else {
                        r.messages as f64 / base_msgs as f64
                    }
                });
                let _ = writeln!(
                    md,
                    "| {} | `{}` | {} | {} | {} | {:.3} | {} | {} | {} | {} |",
                    r.benchmark,
                    r.policy_spec,
                    r.nodes,
                    r.directory,
                    r.messages,
                    norm,
                    r.invalidations_sent,
                    r.self_invalidations_sent,
                    r.extra_invalidations,
                    r.broadcast_overflows,
                );
                json_rows.push(
                    row_key(r)
                        .field("messages", r.messages)
                        .field("messages_vs_base", fixed(norm, 3))
                        .field("invalidations_sent", r.invalidations_sent)
                        .field("self_invalidations_sent", r.self_invalidations_sent)
                        .field("extra_invalidations", r.extra_invalidations)
                        .field("broadcast_overflows", r.broadcast_overflows)
                        .build(),
                );
            }
        }
        FigureId::Fig2 => {
            md.push_str("| benchmark | policy | nodes | dir | self-inv sent | verified correct | timely | premature | stale ignored |\n");
            md.push_str("|---|---|---:|---|---:|---:|---:|---:|---:|\n");
            for r in rows.iter().filter(|r| r.policy != "base") {
                let _ = writeln!(
                    md,
                    "| {} | `{}` | {} | {} | {} | {} | {} | {} | {} |",
                    r.benchmark,
                    r.policy_spec,
                    r.nodes,
                    r.directory,
                    r.self_invalidations_sent,
                    r.predicted,
                    r.predicted_timely,
                    r.mispredicted,
                    r.stale_ignored,
                );
                json_rows.push(
                    row_key(r)
                        .field("self_invalidations_sent", r.self_invalidations_sent)
                        .field("predicted", r.predicted)
                        .field("predicted_timely", r.predicted_timely)
                        .field("mispredicted", r.mispredicted)
                        .field("stale_ignored", r.stale_ignored)
                        .build(),
                );
            }
        }
        FigureId::Fig6 => {
            md.push_str("| benchmark | policy | nodes | dir | predicted % | not predicted % | mispredicted % | timely % |\n");
            md.push_str("|---|---|---:|---:|---:|---:|---:|---:|\n");
            for r in rows.iter().filter(|r| r.policy != "base") {
                let events = r.invalidation_events();
                let _ = writeln!(
                    md,
                    "| {} | `{}` | {} | {} | {:.1} | {:.1} | {:.1} | {:.1} |",
                    r.benchmark,
                    r.policy_spec,
                    r.nodes,
                    r.directory,
                    percent(r.predicted, events),
                    percent(r.not_predicted, events),
                    percent(r.mispredicted, events),
                    percent(r.predicted_timely, r.predicted),
                );
                json_rows.push(
                    row_key(r)
                        .field("predicted_pct", fixed(percent(r.predicted, events), 1))
                        .field(
                            "not_predicted_pct",
                            fixed(percent(r.not_predicted, events), 1),
                        )
                        .field(
                            "mispredicted_pct",
                            fixed(percent(r.mispredicted, events), 1),
                        )
                        .field(
                            "timeliness_pct",
                            fixed(percent(r.predicted_timely, r.predicted), 1),
                        )
                        .build(),
                );
            }
            // Per-policy averages over benchmarks (the paper's headline
            // "LTP predicts 79% on average" numbers).
            append_policy_averages(&mut md, &mut json_rows, rows, |r| {
                percent(r.predicted, r.invalidation_events())
            });
        }
        FigureId::Fig7 | FigureId::Fig9 => {
            let speedup = figure == FigureId::Fig9;
            if speedup {
                md.push_str("| benchmark | policy | nodes | dir | speedup vs base |\n");
            } else {
                md.push_str("| benchmark | policy | nodes | dir | normalized time |\n");
            }
            md.push_str("|---|---|---:|---|---:|\n");
            for r in rows.iter().filter(|r| r.policy != "base") {
                let Some(base) = base_exec(r) else { continue };
                if base == 0 || r.exec_cycles == 0 {
                    continue;
                }
                let value = if speedup {
                    base as f64 / r.exec_cycles as f64
                } else {
                    r.exec_cycles as f64 / base as f64
                };
                let _ = writeln!(
                    md,
                    "| {} | `{}` | {} | {} | {:.3} |",
                    r.benchmark, r.policy_spec, r.nodes, r.directory, value,
                );
                json_rows.push(
                    row_key(r)
                        .field("exec_cycles", r.exec_cycles)
                        .field("base_exec_cycles", base)
                        .field(
                            if speedup {
                                "speedup"
                            } else {
                                "normalized_time"
                            },
                            fixed(value, 3),
                        )
                        .build(),
                );
            }
            if speedup {
                append_policy_averages(&mut md, &mut json_rows, rows, |r| {
                    base_exec(r).map_or(0.0, |base| {
                        if r.exec_cycles == 0 {
                            0.0
                        } else {
                            base as f64 / r.exec_cycles as f64
                        }
                    })
                });
            }
        }
        FigureId::T2 => {
            md.push_str("| benchmark | nodes | dir | exec cycles | misses | hits | miss % | invalidations | messages |\n");
            md.push_str("|---|---:|---|---:|---:|---:|---:|---:|---:|\n");
            for r in rows.iter().filter(|r| r.policy == "base") {
                let _ = writeln!(
                    md,
                    "| {} | {} | {} | {} | {} | {} | {:.2} | {} | {} |",
                    r.benchmark,
                    r.nodes,
                    r.directory,
                    r.exec_cycles,
                    r.misses,
                    r.hits,
                    percent(r.misses, r.misses + r.hits),
                    r.invalidations_sent,
                    r.messages,
                );
                json_rows.push(
                    row_key(r)
                        .field("exec_cycles", r.exec_cycles)
                        .field("misses", r.misses)
                        .field("hits", r.hits)
                        .field("miss_pct", fixed(percent(r.misses, r.misses + r.hits), 2))
                        .field("invalidations_sent", r.invalidations_sent)
                        .field("messages", r.messages)
                        .build(),
                );
            }
        }
        FigureId::T3 => {
            md.push_str("| benchmark | policy | nodes | dir | blocks tracked | live entries | signature bits |\n");
            md.push_str("|---|---|---:|---|---:|---:|---:|\n");
            for r in rows
                .iter()
                .filter(|r| r.storage_blocks > 0 || r.storage_entries > 0)
            {
                let _ = writeln!(
                    md,
                    "| {} | `{}` | {} | {} | {} | {} | {} |",
                    r.benchmark,
                    r.policy_spec,
                    r.nodes,
                    r.directory,
                    r.storage_blocks,
                    r.storage_entries,
                    r.storage_bits,
                );
                json_rows.push(
                    row_key(r)
                        .field("blocks_tracked", r.storage_blocks)
                        .field("live_entries", r.storage_entries)
                        .field("signature_bits", r.storage_bits)
                        .build(),
                );
            }
        }
        FigureId::T4 => {
            md.push_str(
                "| benchmark | policy | nodes | dir | timely % | dir queueing | dir service |\n",
            );
            md.push_str("|---|---|---:|---|---:|---:|---:|\n");
            for r in rows {
                let _ = writeln!(
                    md,
                    "| {} | `{}` | {} | {} | {:.1} | {:.2} | {:.2} |",
                    r.benchmark,
                    r.policy_spec,
                    r.nodes,
                    r.directory,
                    percent(r.predicted_timely, r.predicted),
                    r.dir_queueing_mean,
                    r.dir_service_mean,
                );
                json_rows.push(
                    row_key(r)
                        .field(
                            "timeliness_pct",
                            fixed(percent(r.predicted_timely, r.predicted), 1),
                        )
                        .field("dir_queueing_mean", fixed(r.dir_queueing_mean, 2))
                        .field("dir_service_mean", fixed(r.dir_service_mean, 2))
                        .build(),
                );
            }
        }
    }

    if !stuck.is_empty() {
        let _ = writeln!(
            md,
            "\n> **Stuck runs ({}), excluded from the table:**",
            stuck.len()
        );
        for s in stuck {
            let _ = writeln!(
                md,
                "> {} under `{}` at {} nodes ({}): {} nodes unfinished at the horizon.",
                s.benchmark, s.policy_spec, s.nodes, s.directory, s.unfinished
            );
        }
    }

    let json = JsonObject::new()
        .field("figure", figure.stem())
        .field("rows", JsonValue::Array(json_rows))
        .field(
            "stuck",
            JsonValue::Array(
                stuck
                    .iter()
                    .map(|s| {
                        JsonObject::new()
                            .field("benchmark", s.benchmark.as_str())
                            .field("policy_spec", s.policy_spec.as_str())
                            .field("nodes", s.nodes)
                            .field("directory", s.directory.as_str())
                            .field("unfinished_nodes", s.unfinished)
                            .build()
                    })
                    .collect(),
            ),
        )
        .build()
        .render();
    (md, format!("{json}\n"))
}

/// The identifying prefix fields every JSON row starts with.
fn row_key(r: &Row) -> JsonObject {
    JsonObject::new()
        .field("benchmark", r.benchmark.as_str())
        .field("policy_spec", r.policy_spec.as_str())
        .field("nodes", r.nodes)
        .field("directory", r.directory.as_str())
}

/// Rounds to `prec` decimal places so JSON artifacts carry the same
/// precision as the markdown tables (and stay platform-independent).
fn fixed(x: f64, prec: u32) -> f64 {
    let scale = 10f64.powi(prec as i32);
    (x * scale).round() / scale
}

/// Appends a per-policy arithmetic-mean block (over the non-base rows'
/// `value`) to both renderings.
fn append_policy_averages(
    md: &mut String,
    json_rows: &mut Vec<JsonValue>,
    rows: &[Row],
    value: impl Fn(&Row) -> f64,
) {
    let mut specs: Vec<&str> = rows
        .iter()
        .filter(|r| r.policy != "base")
        .map(|r| r.policy_spec.as_str())
        .collect();
    specs.dedup();
    specs.sort_unstable();
    specs.dedup();
    if specs.is_empty() {
        return;
    }
    md.push_str("\n**Per-policy averages (arithmetic mean over rows):**\n\n");
    for spec in specs {
        let values: Vec<f64> = rows
            .iter()
            .filter(|r| r.policy_spec == spec)
            .map(&value)
            .collect();
        if values.is_empty() {
            continue;
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let _ = writeln!(md, "- `{spec}`: {mean:.2}");
        json_rows.push(
            JsonObject::new()
                .field("policy_spec", spec)
                .field("average", fixed(mean, 2))
                .build(),
        );
    }
}

#[cfg(test)]
mod tests {
    use std::fs;

    use ltp_core::PolicyRegistry;
    use ltp_workloads::Benchmark;

    use super::super::Campaign;
    use crate::sweep::SweepSpec;

    use super::*;

    fn reported_campaign(tag: &str) -> (PathBuf, PathBuf) {
        let registry = PolicyRegistry::with_builtins();
        let sweep = SweepSpec::new()
            .benchmarks([Benchmark::Em3d, Benchmark::Tomcatv])
            .policy_specs(&registry, &["base", "dsi", "ltp:bits=13"])
            .unwrap()
            .quick_geometry(4, 3);
        let store =
            std::env::temp_dir().join(format!("ltp-aggregate-{tag}-store-{}", std::process::id()));
        let out =
            std::env::temp_dir().join(format!("ltp-aggregate-{tag}-out-{}", std::process::id()));
        let _ = fs::remove_dir_all(&store);
        let _ = fs::remove_dir_all(&out);
        Campaign::new(sweep, &store).run().unwrap();
        (store, out)
    }

    #[test]
    fn figure_selectors_parse() {
        assert_eq!(FigureId::parse("6"), Some(FigureId::Fig6));
        assert_eq!(FigureId::parse("fig9"), Some(FigureId::Fig9));
        assert_eq!(FigureId::parse("t4"), Some(FigureId::T4));
        assert_eq!(FigureId::parse("bogus"), None);
        for figure in FigureId::ALL {
            assert_eq!(FigureId::parse(figure.stem()), Some(figure));
        }
    }

    #[test]
    fn reports_generate_and_are_deterministic() {
        let (store, out) = reported_campaign("determinism");
        let artifacts = generate_reports(&store, &out, &FigureId::ALL).unwrap();
        assert_eq!(artifacts.len(), FigureId::ALL.len());

        let fig6 = fs::read_to_string(out.join("fig6.md")).unwrap();
        assert!(fig6.contains("| em3d |"), "{fig6}");
        assert!(fig6.contains("`ltp:bits=13,capacity=16`"), "{fig6}");
        assert!(!fig6.contains("`base`"), "fig6 excludes the base rows");

        let fig9 = fs::read_to_string(out.join("fig9.md")).unwrap();
        assert!(fig9.contains("speedup"), "{fig9}");
        assert!(fig9.contains("Per-policy averages"), "{fig9}");

        let t2 = fs::read_to_string(out.join("t2.md")).unwrap();
        assert!(t2.contains("| em3d |"), "{t2}");

        // Regeneration is byte-identical.
        let first: Vec<(String, Vec<u8>)> = artifacts
            .iter()
            .flat_map(|a| [a.markdown.clone(), a.json.clone()])
            .map(|p| (p.display().to_string(), fs::read(&p).unwrap()))
            .collect();
        generate_reports(&store, &out, &FigureId::ALL).unwrap();
        for (path, bytes) in &first {
            assert_eq!(
                &fs::read(path).unwrap(),
                bytes,
                "{path} drifted on regeneration"
            );
        }
        fs::remove_dir_all(&store).unwrap();
        fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn json_artifacts_parse_and_carry_rows() {
        let (store, out) = reported_campaign("json");
        generate_reports(&store, &out, &[FigureId::Fig6]).unwrap();
        let doc =
            ltp_core::parse_json(&fs::read_to_string(out.join("fig6.json")).unwrap()).unwrap();
        assert_eq!(doc.get("figure").and_then(JsonValue::as_str), Some("fig6"));
        let rows = doc.get("rows").and_then(JsonValue::as_array).unwrap();
        // 2 benchmarks × 2 non-base policies + 2 per-policy average rows.
        assert_eq!(rows.len(), 6);
        assert!(rows[0].get("predicted_pct").is_some());
        fs::remove_dir_all(&store).unwrap();
        fs::remove_dir_all(&out).unwrap();
    }
}
