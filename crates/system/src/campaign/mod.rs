//! Resumable, checkpointed campaign execution over a [`SweepSpec`].
//!
//! A *campaign* is a sweep with a durable store: every run is keyed by a
//! canonical content hash of its complete configuration
//! ([`run_fingerprint`]), and each finished run is checkpointed (fsync'd)
//! into a [`CampaignStore`] the moment it completes. Restarting the same
//! campaign — after Ctrl-C, OOM, a CI timeout, or a panic — skips every
//! checkpointed run and produces a final manifest and aggregate that are
//! **byte-identical** to an uninterrupted execution, because both are
//! composed from the stored documents in canonical cross-product order.
//!
//! Runs that hit the cycle horizon (the known seeded-kernel lock livelock
//! at wide pinned geometries) are recorded as `stuck` with a structured
//! per-node diagnosis ([`crate::StuckReport`]) instead of killing the
//! campaign; the reporter footnotes them.
//!
//! # Examples
//!
//! ```
//! use ltp_core::PolicyRegistry;
//! use ltp_system::campaign::Campaign;
//! use ltp_system::SweepSpec;
//! use ltp_workloads::Benchmark;
//!
//! let registry = PolicyRegistry::with_builtins();
//! let sweep = SweepSpec::new()
//!     .benchmark(Benchmark::Em3d)
//!     .policy_specs(&registry, &["base", "ltp"])
//!     .unwrap()
//!     .quick_geometry(4, 2);
//! let dir = std::env::temp_dir().join(format!("ltp-doc-campaign-{}", std::process::id()));
//! let summary = Campaign::new(sweep, &dir).run().unwrap();
//! assert_eq!(summary.executed, 2);
//!
//! // Running again skips everything: the store already has both runs.
//! let registry = PolicyRegistry::with_builtins();
//! let sweep = SweepSpec::new()
//!     .benchmark(Benchmark::Em3d)
//!     .policy_specs(&registry, &["base", "ltp"])
//!     .unwrap()
//!     .quick_geometry(4, 2);
//! let again = Campaign::new(sweep, &dir).run().unwrap();
//! assert_eq!(again.executed, 0);
//! assert_eq!(again.skipped, 2);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

mod aggregate;
mod hash;
mod store;

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;

use ltp_core::Fingerprint;

use crate::experiment::ExperimentSpec;
use crate::stuck::RunOutcome;
use crate::sweep::SweepSpec;

pub use aggregate::{generate_reports, Artifact, FigureId};
pub use hash::{run_descriptor, run_fingerprint, STORE_FORMAT_VERSION};
pub use store::{CampaignStore, RunStatus, StoreError, StoredRun};

/// Pending/done breakdown of a campaign against its store (`--dry-run`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignStatus {
    /// Runs in the cross product.
    pub total: usize,
    /// Runs already checkpointed as finished.
    pub done: usize,
    /// Runs already checkpointed as stuck.
    pub stuck: usize,
    /// Runs still to execute.
    pub pending: usize,
}

/// What a finished campaign did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSummary {
    /// Runs in the cross product.
    pub total: usize,
    /// Runs executed by *this* invocation.
    pub executed: usize,
    /// Runs skipped because the store already had them (plus duplicate
    /// design points within the cross product, which execute once).
    pub skipped: usize,
    /// Runs recorded as stuck, across the whole campaign.
    pub stuck: usize,
}

/// One run just checkpointed (progress callback payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunFinished {
    /// The run's cross-product index.
    pub seq: usize,
    /// The run's content hash.
    pub hash: Fingerprint,
    /// How it ended.
    pub status: RunStatus,
    /// Runs checkpointed by this invocation so far (including this one).
    pub finished: usize,
    /// Runs this invocation set out to execute.
    pub to_execute: usize,
}

/// A sweep bound to a campaign store directory.
#[derive(Debug)]
pub struct Campaign {
    sweep: SweepSpec,
    dir: PathBuf,
}

impl Campaign {
    /// Binds a sweep to a store directory (created on first run).
    pub fn new(sweep: SweepSpec, dir: impl Into<PathBuf>) -> Self {
        Campaign {
            sweep,
            dir: dir.into(),
        }
    }

    /// The pending/done breakdown without executing anything. Creates the
    /// store directory if it does not exist.
    ///
    /// # Errors
    ///
    /// Fails on store trouble (see [`StoreError`]).
    pub fn status(&self) -> Result<CampaignStatus, StoreError> {
        let runs = self.sweep.runs();
        let store = CampaignStore::open(&self.dir)?;
        let completed = store.completed()?;
        let mut status = CampaignStatus {
            total: runs.len(),
            done: 0,
            stuck: 0,
            pending: 0,
        };
        for run in &runs {
            match completed.get(&run_fingerprint(run)) {
                Some(RunStatus::Done) => status.done += 1,
                Some(RunStatus::Stuck) => status.stuck += 1,
                None => status.pending += 1,
            }
        }
        Ok(status)
    }

    /// Runs every pending run and finalizes the store.
    ///
    /// # Errors
    ///
    /// Fails on store trouble; simulation panics propagate (completed runs
    /// stay checkpointed, so a rerun resumes).
    pub fn run(&self) -> Result<CampaignSummary, StoreError> {
        self.run_with(&mut |_| {})
    }

    /// [`Campaign::run`] with a progress callback, invoked (on the calling
    /// thread) as each run is checkpointed, in completion order.
    ///
    /// # Errors
    ///
    /// Fails on store trouble.
    pub fn run_with(
        &self,
        progress: &mut dyn FnMut(RunFinished),
    ) -> Result<CampaignSummary, StoreError> {
        let runs = self.sweep.runs();
        let fingerprints: Vec<Fingerprint> = runs.iter().map(run_fingerprint).collect();
        let store = CampaignStore::open(&self.dir)?;
        let completed = store.completed()?;

        // Pending = first occurrence of each not-yet-stored hash. Duplicate
        // design points (e.g. a geometry-pinned trace repeated across the
        // geometry axis) execute once and alias in the aggregate.
        let mut claimed: BTreeSet<Fingerprint> = BTreeSet::new();
        let pending: Vec<usize> = (0..runs.len())
            .filter(|&seq| {
                !completed.contains_key(&fingerprints[seq]) && claimed.insert(fingerprints[seq])
            })
            .collect();
        let skipped = runs.len() - pending.len();

        self.execute_pending(&runs, &fingerprints, &pending, &store, progress)?;

        store.finalize(&fingerprints)?;
        let final_statuses = store.completed()?;
        let stuck = fingerprints
            .iter()
            .filter(|fp| final_statuses.get(fp) == Some(&RunStatus::Stuck))
            .count();
        Ok(CampaignSummary {
            total: runs.len(),
            executed: pending.len(),
            skipped,
            stuck,
        })
    }

    /// Executes the pending runs (longest-estimated-first across workers),
    /// checkpointing each into the store as it completes.
    fn execute_pending(
        &self,
        runs: &[ExperimentSpec],
        fingerprints: &[Fingerprint],
        pending: &[usize],
        store: &CampaignStore,
        progress: &mut dyn FnMut(RunFinished),
    ) -> Result<(), StoreError> {
        if pending.is_empty() {
            return Ok(());
        }
        let pending_set: BTreeSet<usize> = pending.iter().copied().collect();
        let order: Vec<usize> = SweepSpec::schedule_for(runs)
            .into_iter()
            .map(|(seq, _)| seq)
            .filter(|seq| pending_set.contains(seq))
            .collect();
        let workers = self
            .sweep
            .threads_cap()
            .unwrap_or_else(|| {
                thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            })
            .clamp(1, order.len());

        let mut record = |seq: usize, outcome: RunOutcome, finished: usize| {
            let hash = fingerprints[seq];
            let spec = run_descriptor(&runs[seq]);
            let status = match &outcome {
                RunOutcome::Completed(report) => {
                    store.record_done(hash, &spec, report)?;
                    RunStatus::Done
                }
                RunOutcome::Stuck(stuck) => {
                    store.record_stuck(hash, &spec, stuck)?;
                    RunStatus::Stuck
                }
            };
            progress(RunFinished {
                seq,
                hash,
                status,
                finished,
                to_execute: order.len(),
            });
            Ok::<(), StoreError>(())
        };

        if workers <= 1 {
            // Serial: cross-product order (no tail to cut), checkpointing
            // as each run finishes.
            for (finished, &seq) in pending.iter().enumerate() {
                record(seq, runs[seq].try_run(), finished + 1)?;
            }
            return Ok(());
        }

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, RunOutcome)>();
        let mut result = Ok(());
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let order = &order;
                scope.spawn(move || loop {
                    let slot = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&seq) = order.get(slot) else { break };
                    let outcome = runs[seq].try_run();
                    if tx.send((seq, outcome)).is_err() {
                        break;
                    }
                });
            }
            drop(tx);
            // Checkpoints happen here, on the coordinating thread, in
            // completion order — each one fsync'd before the next run's
            // result is taken, so a kill at any point loses at most the
            // in-flight runs.
            let mut finished = 0usize;
            for (seq, outcome) in rx {
                finished += 1;
                if let Err(e) = record(seq, outcome, finished) {
                    result = Err(e);
                    break;
                }
            }
        });
        result
    }
}

#[cfg(test)]
mod tests {
    use std::fs;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use ltp_core::PolicyRegistry;
    use ltp_workloads::Benchmark;

    use crate::probe::{MetricsSection, Probe, ProbeCtx, ProbeFactory, RunInfo, SimEvent};

    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ltp-campaign-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_sweep() -> SweepSpec {
        let registry = PolicyRegistry::with_builtins();
        SweepSpec::new()
            .benchmarks([Benchmark::Em3d, Benchmark::Moldyn])
            .policy_specs(&registry, &["base", "ltp:bits=13"])
            .unwrap()
            .quick_geometry(4, 2)
    }

    #[test]
    fn campaign_completes_and_resume_skips_everything() {
        let dir = tmp_dir("complete");
        let summary = Campaign::new(small_sweep(), &dir).run().unwrap();
        assert_eq!(summary.total, 4);
        assert_eq!(summary.executed, 4);
        assert_eq!(summary.skipped, 0);
        assert_eq!(summary.stuck, 0);

        let status = Campaign::new(small_sweep(), &dir).status().unwrap();
        assert_eq!(status.done, 4);
        assert_eq!(status.pending, 0);

        let again = Campaign::new(small_sweep(), &dir).run().unwrap();
        assert_eq!(again.executed, 0);
        assert_eq!(again.skipped, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aggregate_matches_sweep_report_stream_exactly() {
        // The campaign aggregate is the same JSON-lines document a sweep
        // would stream: `{"run":N,...}` per run, cross-product order.
        let dir = tmp_dir("aggregate");
        Campaign::new(small_sweep(), &dir).run().unwrap();
        let aggregate =
            fs::read_to_string(CampaignStore::open(&dir).unwrap().aggregate_path()).unwrap();

        let mut sink = crate::report::JsonLinesSink::new(Vec::new());
        use crate::report::ReportSink as _;
        for (seq, run) in small_sweep().runs().iter().enumerate() {
            sink.record(seq, &run.run());
        }
        sink.finish();
        let streamed = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(aggregate, streamed, "aggregate == streamed sweep output");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn differing_cross_products_resume_their_intersection() {
        let registry = PolicyRegistry::with_builtins();
        let narrow = SweepSpec::new()
            .benchmark(Benchmark::Em3d)
            .policy_specs(&registry, &["base", "ltp:bits=13"])
            .unwrap()
            .quick_geometry(4, 2);
        let dir = tmp_dir("intersect");
        Campaign::new(narrow, &dir).run().unwrap();

        // The wider campaign shares em3d×{base,ltp}: only moldyn runs.
        let summary = Campaign::new(small_sweep(), &dir).run().unwrap();
        assert_eq!(summary.total, 4);
        assert_eq!(summary.executed, 2);
        assert_eq!(summary.skipped, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A probe that panics at build time while armed — the test's stand-in
    /// for Ctrl-C/OOM mid-campaign. Its spec is constant, so armed and
    /// disarmed campaigns hash identically.
    #[derive(Debug)]
    struct Bomb(Arc<AtomicBool>);

    #[derive(Debug)]
    struct InertProbe;

    impl Probe for InertProbe {
        fn on_event(&mut self, _ctx: &ProbeCtx, _event: &SimEvent) {}
        fn finish(self: Box<Self>) -> Option<MetricsSection> {
            None
        }
    }

    impl ProbeFactory for Bomb {
        fn name(&self) -> &str {
            "test-bomb"
        }
        fn build(&self, info: &RunInfo) -> Box<dyn Probe> {
            if self.0.load(Ordering::SeqCst) && info.workload_name == "moldyn" {
                panic!("simulated mid-campaign abort");
            }
            Box::new(InertProbe)
        }
    }

    fn bombed_sweep(armed: &Arc<AtomicBool>) -> SweepSpec {
        small_sweep()
            .serial()
            .probe(Arc::new(Bomb(Arc::clone(armed))))
    }

    #[test]
    fn aborted_campaign_resumes_to_a_byte_identical_store() {
        let armed = Arc::new(AtomicBool::new(true));
        let dir = tmp_dir("abort");

        // First attempt dies on the third run (serial order: em3d×base,
        // em3d×ltp, moldyn×base 💥).
        let aborted = catch_unwind(AssertUnwindSafe(|| {
            Campaign::new(bombed_sweep(&armed), &dir).run()
        }));
        assert!(aborted.is_err(), "the bomb must abort the campaign");

        // The two completed runs were checkpointed before the abort.
        let status = Campaign::new(bombed_sweep(&armed), &dir).status().unwrap();
        assert_eq!(status.done, 2);
        assert_eq!(status.pending, 2);

        // Resume executes only the remainder.
        armed.store(false, Ordering::SeqCst);
        let summary = Campaign::new(bombed_sweep(&armed), &dir).run().unwrap();
        assert_eq!(summary.executed, 2);
        assert_eq!(summary.skipped, 2);

        // Byte-identical to a never-interrupted campaign.
        let clean_dir = tmp_dir("abort-clean");
        Campaign::new(bombed_sweep(&armed), &clean_dir)
            .run()
            .unwrap();
        for file in ["manifest.jsonl", "campaign.jsonl"] {
            let resumed = fs::read(dir.join(file)).unwrap();
            let clean = fs::read(clean_dir.join(file)).unwrap();
            assert_eq!(resumed, clean, "{file} differs after resume");
        }
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&clean_dir).unwrap();
    }

    #[test]
    fn progress_callback_sees_every_executed_run() {
        let dir = tmp_dir("progress");
        let mut events = Vec::new();
        Campaign::new(small_sweep().serial(), &dir)
            .run_with(&mut |e| events.push(e))
            .unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events.last().unwrap().finished, 4);
        assert_eq!(events.last().unwrap().to_execute, 4);
        assert!(events.iter().all(|e| e.status == RunStatus::Done));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_campaign_aggregate_matches_serial() {
        let dir_serial = tmp_dir("par-s");
        let dir_parallel = tmp_dir("par-p");
        Campaign::new(small_sweep().serial(), &dir_serial)
            .run()
            .unwrap();
        Campaign::new(small_sweep().threads(4), &dir_parallel)
            .run()
            .unwrap();
        for file in ["manifest.jsonl", "campaign.jsonl"] {
            let serial = fs::read(dir_serial.join(file)).unwrap();
            let parallel = fs::read(dir_parallel.join(file)).unwrap();
            assert_eq!(serial, parallel, "{file} differs under parallelism");
        }
        fs::remove_dir_all(&dir_serial).unwrap();
        fs::remove_dir_all(&dir_parallel).unwrap();
    }
}
